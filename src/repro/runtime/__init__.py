"""NumPy execution backend: kernels, executor, operand instantiation, timing.

This package substitutes for the MKL-backed Julia testbed of the paper's
evaluation: generated kernel programs are interpreted on NumPy arrays that
honour the declared operand properties, validated against a direct reference
evaluation, and timed.
"""

from .executor import ExecutionError, Executor, execute_program
from .operands import (
    chain_operands,
    instantiate_expression,
    instantiate_matrix,
    instantiate_operands,
    random_environment,
)
from .reference import ReferenceEvaluationError, allclose, evaluate
from .timing import TimingResult, estimate_time, time_callable, time_program

__all__ = [
    "Executor",
    "ExecutionError",
    "execute_program",
    "instantiate_matrix",
    "instantiate_operands",
    "instantiate_expression",
    "chain_operands",
    "random_environment",
    "evaluate",
    "allclose",
    "ReferenceEvaluationError",
    "TimingResult",
    "time_program",
    "time_callable",
    "estimate_time",
]

"""Random instantiation of operands that honour their declared properties.

The experiments execute generated programs on concrete data; this module
produces NumPy arrays matching a symbolic operand's shape and structural
properties (diagonal, triangular, symmetric, SPD, ...).  Inverted operands
are made safely non-singular by diagonal dominance so that solves and
explicit inversions are well-conditioned.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional

import numpy as np

from ..algebra.expression import Expression, Matrix
from ..algebra.properties import Property


def instantiate_matrix(
    operand: Matrix, rng: Optional[np.random.Generator] = None
) -> np.ndarray:
    """Create a random NumPy array with the operand's shape and properties."""
    rng = rng or np.random.default_rng()
    rows, columns = operand.rows, operand.columns
    properties = operand.properties
    if Property.ZERO in properties:
        return np.zeros((rows, columns))
    if Property.IDENTITY in properties:
        return np.eye(rows)
    base = rng.standard_normal((rows, columns))
    if Property.DIAGONAL in properties:
        diagonal = rng.standard_normal(rows)
        # Keep diagonal entries away from zero so the operand stays invertible.
        diagonal = np.sign(diagonal) * (np.abs(diagonal) + 1.0)
        return np.diag(diagonal)
    if Property.SPD in properties:
        spd = base @ base.T
        return spd + rows * np.eye(rows)
    if Property.SYMMETRIC in properties:
        symmetric = (base + base.T) / 2.0
        return symmetric + rows * np.eye(rows)
    if Property.LOWER_TRIANGULAR in properties:
        lower = np.tril(base)
        np.fill_diagonal(lower, np.abs(np.diag(lower)) + 1.0)
        if Property.UNIT_DIAGONAL in properties:
            np.fill_diagonal(lower, 1.0)
        return lower
    if Property.UPPER_TRIANGULAR in properties:
        upper = np.triu(base)
        np.fill_diagonal(upper, np.abs(np.diag(upper)) + 1.0)
        if Property.UNIT_DIAGONAL in properties:
            np.fill_diagonal(upper, 1.0)
        return upper
    if Property.ORTHOGONAL in properties:
        q, _ = np.linalg.qr(rng.standard_normal((rows, rows)))
        return q
    if rows == columns and Property.NON_SINGULAR in properties:
        return base + rows * np.eye(rows)
    return base


def instantiate_operands(
    operands: Iterable[Matrix], rng: Optional[np.random.Generator] = None, seed: Optional[int] = None
) -> Dict[str, np.ndarray]:
    """Instantiate a collection of operands into a name -> array environment."""
    if rng is None:
        rng = np.random.default_rng(seed)
    environment: Dict[str, np.ndarray] = {}
    for operand in operands:
        if operand.name not in environment:
            environment[operand.name] = instantiate_matrix(operand, rng)
    return environment


def chain_operands(expression: Expression) -> Dict[str, Matrix]:
    """Collect the distinct leaf operands of an expression by name."""
    operands: Dict[str, Matrix] = {}
    for leaf in expression.leaves():
        if isinstance(leaf, Matrix) and leaf.name not in operands:
            operands[leaf.name] = leaf
    return operands


def instantiate_expression(
    expression: Expression, seed: Optional[int] = None
) -> Dict[str, np.ndarray]:
    """Instantiate every leaf operand of an expression."""
    rng = np.random.default_rng(seed)
    return instantiate_operands(chain_operands(expression).values(), rng=rng)


def _collect_operands(program) -> Dict[str, Matrix]:
    """Name -> operand for whatever carries operands (see
    :func:`random_environment`)."""
    if isinstance(program, Expression):
        return chain_operands(program)
    declared = getattr(program, "operands", None)
    if isinstance(declared, Mapping):
        return {name: operand for name, operand in declared.items()}
    if isinstance(program, Mapping):
        return dict(program)
    try:
        return {
            operand.name: operand
            for operand in program
            if isinstance(operand, Matrix)
        }
    except TypeError:
        raise TypeError(
            f"cannot collect operands from {program!r}; expected an "
            f"Expression, a parsed/compiled program, a name->Matrix mapping "
            f"or an iterable of Matrix operands"
        ) from None


def random_environment(
    program,
    seed: Optional[int] = 0,
    rng: Optional[np.random.Generator] = None,
    overrides: Optional[Mapping[str, np.ndarray]] = None,
) -> Dict[str, np.ndarray]:
    """Seeded, property-respecting random operand values for *program*.

    The reproducible operand source of the execution tier: ``POST
    /execute`` (without explicit payloads), the CLI's ``--execute``, the
    tests and the benchmarks all draw operands through this helper, so one
    ``seed`` pins the numerics everywhere.

    *program* may be anything that carries operands: a parsed DSL program
    or a :class:`~repro.frontend.compiler.CompilationResult` (their
    ``operands`` mapping), a bare :class:`~repro.algebra.expression.Expression`
    (its leaves), a name -> :class:`Matrix` mapping, or an iterable of
    operands.  Draws happen in sorted-name order from one generator seeded
    with *seed*, so the environment is deterministic regardless of how the
    operands were collected.  *overrides* supplies explicit values for a
    subset of operands (shape-checked against the declaration).
    """
    operands = _collect_operands(program)
    if rng is None:
        rng = np.random.default_rng(seed)
    environment: Dict[str, np.ndarray] = {}
    for name in sorted(operands):
        environment[name] = instantiate_matrix(operands[name], rng)
    for name, value in (overrides or {}).items():
        if name not in operands:
            known = ", ".join(sorted(operands)) or "<none>"
            raise ValueError(
                f"override for undeclared operand {name!r}; declared: {known}"
            )
        array = np.asarray(value, dtype=float)
        operand = operands[name]
        if array.shape != (operand.rows, operand.columns):
            raise ValueError(
                f"operand {name!r}: payload shape {array.shape} does not "
                f"match the declared {operand.rows} x {operand.columns}"
            )
        environment[name] = array
    return environment


def scale_environment(
    environment: Mapping[str, np.ndarray], factor: float
) -> Dict[str, np.ndarray]:
    """Uniformly scale every operand (useful for conditioning experiments)."""
    return {name: value * factor for name, value in environment.items()}

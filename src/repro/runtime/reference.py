"""Reference (direct) numerical evaluation of symbolic expressions.

Used by the tests and the experiment harness as the ground truth against
which generated programs are validated: an expression tree is evaluated
recursively with plain NumPy operations (explicit inverses, explicit
transposes, left-to-right products), with no regard for efficiency.
"""

from __future__ import annotations

from functools import reduce
from typing import Mapping

import numpy as np

from ..algebra.expression import Expression, Matrix
from ..algebra.operators import Inverse, InverseTranspose, Plus, Times, Transpose


class ReferenceEvaluationError(RuntimeError):
    """Raised when an expression cannot be evaluated against the environment."""


def evaluate(expression: Expression, environment: Mapping[str, np.ndarray]) -> np.ndarray:
    """Evaluate *expression* directly with NumPy."""
    if isinstance(expression, Matrix):
        try:
            return np.asarray(environment[expression.name], dtype=float)
        except KeyError as exc:
            raise ReferenceEvaluationError(
                f"no value bound for operand {expression.name!r}"
            ) from exc
    if isinstance(expression, Transpose):
        return evaluate(expression.operand, environment).T
    if isinstance(expression, Inverse):
        return np.linalg.inv(evaluate(expression.operand, environment))
    if isinstance(expression, InverseTranspose):
        return np.linalg.inv(evaluate(expression.operand, environment)).T
    if isinstance(expression, Times):
        values = [evaluate(child, environment) for child in expression.children]
        return reduce(lambda left, right: left @ right, values)
    if isinstance(expression, Plus):
        values = [evaluate(child, environment) for child in expression.children]
        return reduce(lambda left, right: left + right, values)
    raise ReferenceEvaluationError(f"cannot evaluate expression node {expression!r}")


def allclose(
    expression: Expression,
    environment: Mapping[str, np.ndarray],
    candidate: np.ndarray,
    rtol: float = 1e-8,
    atol: float = 1e-8,
) -> bool:
    """Check a candidate result against the reference evaluation."""
    reference = evaluate(expression, environment)
    candidate = np.asarray(candidate, dtype=float)
    if reference.shape != candidate.shape:
        reference = reference.reshape(candidate.shape)
    scale = max(1.0, float(np.max(np.abs(reference))))
    return bool(np.allclose(reference, candidate, rtol=rtol, atol=atol * scale))

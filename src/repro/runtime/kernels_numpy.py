"""NumPy/SciPy implementations of every kernel in the catalog.

This module is the numerical runtime substituting for the MKL-backed BLAS
and LAPACK libraries used in the paper's evaluation.  Each helper implements
one kernel family; the :class:`~repro.runtime.executor.Executor` dispatches
kernel calls onto these helpers, and the NumPy code generator emits source
that calls them directly -- so the interpreter and generated code share one
implementation.

The helpers accept a ``side`` argument mirroring BLAS (``'L'``: the
structured/inverted operand is on the left of the product; ``'R'``: on the
right) and a ``transposed`` flag for solves against a transposed coefficient
matrix.
"""

from __future__ import annotations

import numpy as np
from scipy import linalg as scipy_linalg


def _is_lower(matrix: np.ndarray) -> bool:
    return bool(np.allclose(matrix, np.tril(matrix)))


def _as_matrix(array: np.ndarray) -> np.ndarray:
    if array.ndim == 1:
        return array.reshape(-1, 1)
    return array


def product(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """General product; used for GEMM/TRMM/SYMM/DIAGMM/GEMV/GER/DOT/SCAL."""
    return _as_matrix(left) @ _as_matrix(right)


def syrk(operand: np.ndarray, trans: str = "T") -> np.ndarray:
    """Gram matrix ``A^T A`` (``trans='T'``) or ``A A^T`` (``trans='N'``)."""
    operand = _as_matrix(operand)
    if trans == "T":
        return operand.T @ operand
    return operand @ operand.T


def solve_triangular(
    coefficient: np.ndarray,
    rhs: np.ndarray,
    transposed: bool = False,
    side: str = "L",
) -> np.ndarray:
    """TRSM/TRSV: solve a triangular system from the left or the right."""
    coefficient = _as_matrix(coefficient)
    rhs = _as_matrix(rhs)
    lower = _is_lower(coefficient)
    if side == "L":
        return scipy_linalg.solve_triangular(
            coefficient, rhs, lower=lower, trans="T" if transposed else "N"
        )
    # X * T^-1  <=>  solve T^T Z^T = X^T and transpose back.
    solution = scipy_linalg.solve_triangular(
        coefficient, rhs.T, lower=lower, trans="N" if transposed else "T"
    )
    return solution.T


def cholesky_solve(
    coefficient: np.ndarray,
    rhs: np.ndarray,
    transposed: bool = False,
    side: str = "L",
) -> np.ndarray:
    """POSV: Cholesky-based solve with an SPD coefficient matrix."""
    coefficient = _as_matrix(coefficient)
    rhs = _as_matrix(rhs)
    factor = scipy_linalg.cho_factor(coefficient, lower=True)
    if side == "L":
        return scipy_linalg.cho_solve(factor, rhs)
    return scipy_linalg.cho_solve(factor, rhs.T).T


def symmetric_solve(
    coefficient: np.ndarray,
    rhs: np.ndarray,
    transposed: bool = False,
    side: str = "L",
) -> np.ndarray:
    """SYSV: solve with a symmetric (possibly indefinite) coefficient matrix."""
    coefficient = _as_matrix(coefficient)
    rhs = _as_matrix(rhs)
    if side == "L":
        return scipy_linalg.solve(coefficient, rhs, assume_a="sym")
    return scipy_linalg.solve(coefficient, rhs.T, assume_a="sym").T


def lu_solve(
    coefficient: np.ndarray,
    rhs: np.ndarray,
    transposed: bool = False,
    side: str = "L",
) -> np.ndarray:
    """GESV: LU-based solve with a general coefficient matrix."""
    coefficient = _as_matrix(coefficient)
    rhs = _as_matrix(rhs)
    system = coefficient.T if transposed else coefficient
    if side == "L":
        return np.linalg.solve(system, rhs)
    return np.linalg.solve(system.T, rhs.T).T


def diagonal_solve(
    coefficient: np.ndarray,
    rhs: np.ndarray,
    transposed: bool = False,
    side: str = "L",
) -> np.ndarray:
    """DIAGSV: solve with a diagonal coefficient matrix (element-wise divide)."""
    coefficient = _as_matrix(coefficient)
    rhs = _as_matrix(rhs)
    diag = np.diag(coefficient)
    if side == "L":
        return rhs / diag[:, None]
    return rhs / diag[None, :]


def invert(matrix: np.ndarray) -> np.ndarray:
    """GETRI: explicit inversion of a general matrix."""
    return np.linalg.inv(_as_matrix(matrix))


def invert_spd(matrix: np.ndarray) -> np.ndarray:
    """POTRI: explicit inversion of an SPD matrix via Cholesky."""
    matrix = _as_matrix(matrix)
    factor = scipy_linalg.cho_factor(matrix, lower=True)
    return scipy_linalg.cho_solve(factor, np.eye(matrix.shape[0]))


def invert_triangular(matrix: np.ndarray) -> np.ndarray:
    """TRTRI: explicit inversion of a triangular matrix."""
    matrix = _as_matrix(matrix)
    return scipy_linalg.solve_triangular(
        matrix, np.eye(matrix.shape[0]), lower=_is_lower(matrix)
    )


def invert_diagonal(matrix: np.ndarray) -> np.ndarray:
    """DIAGINV: explicit inversion of a diagonal matrix."""
    matrix = _as_matrix(matrix)
    return np.diag(1.0 / np.diag(matrix))


def transpose(matrix: np.ndarray) -> np.ndarray:
    """TRANS: explicit out-of-place transposition."""
    return _as_matrix(matrix).T.copy()

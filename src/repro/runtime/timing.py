"""Wall-clock measurement of generated programs.

The paper's evaluation reports execution times of the generated Julia code
and of the competing libraries, taking the best out of repeated runs (for the
Section 3.3 example) or averaging repetitions (Section 4).  This module
provides the equivalent measurement utilities for programs executed through
the NumPy runtime.

Clock policy (uniform across the repository): every *elapsed-duration*
measurement -- here, the solver/compiler ``generation_time`` stamps, the
service latency timings and the bench scripts -- uses
:func:`time.perf_counter` (monotonic, highest available resolution).
Wall-clock reads (``time.time``) are reserved for log timestamps, where
cross-process comparability matters more than monotonicity, and
``time.monotonic`` for deadline bookkeeping (:class:`DeadlineChecker`),
where resolution is traded for a cheaper strided read.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Mapping, Optional

import numpy as np

from ..kernels.kernel import Program
from .executor import Executor


@dataclass(frozen=True)
class TimingResult:
    """Timing statistics of repeated program executions (seconds)."""

    best: float
    mean: float
    worst: float
    repetitions: int

    def __str__(self) -> str:
        return (
            f"best {self.best * 1e3:.3f} ms, mean {self.mean * 1e3:.3f} ms over "
            f"{self.repetitions} repetitions"
        )


def time_program(
    program: Program,
    environment: Mapping[str, np.ndarray],
    repetitions: int = 3,
    warmup: int = 1,
) -> TimingResult:
    """Execute *program* repeatedly and report timing statistics."""
    if repetitions < 1:
        raise ValueError("repetitions must be at least 1")
    executor = Executor()
    for _ in range(max(0, warmup)):
        executor.execute(program, environment)
    samples = []
    for _ in range(repetitions):
        executor = Executor()
        start = time.perf_counter()
        executor.execute(program, environment)
        samples.append(time.perf_counter() - start)
    return TimingResult(
        best=min(samples),
        mean=sum(samples) / len(samples),
        worst=max(samples),
        repetitions=repetitions,
    )


def time_callable(function, repetitions: int = 3, warmup: int = 1) -> TimingResult:
    """Time an arbitrary zero-argument callable (used for generation time)."""
    for _ in range(max(0, warmup)):
        function()
    samples = []
    for _ in range(repetitions):
        start = time.perf_counter()
        function()
        samples.append(time.perf_counter() - start)
    return TimingResult(
        best=min(samples),
        mean=sum(samples) / len(samples),
        worst=max(samples),
        repetitions=repetitions,
    )


def estimate_time(program: Program, metric: Optional[object] = None) -> float:
    """Modelled (not measured) execution time of a program.

    Uses the performance cost metric to sum per-kernel time estimates; this
    is the size-independent counterpart to :func:`time_program` used when the
    paper-scale operand sizes would make measurement too slow.
    """
    from ..cost.metrics import PerformanceMetric

    model = metric if metric is not None else PerformanceMetric()
    return sum(model.kernel_cost(call.kernel, call.substitution) for call in program.calls)

"""Reproduction of "The Generalized Matrix Chain Algorithm" (CGO 2018).

The package implements, from scratch, the Generalized Matrix Chain (GMC)
algorithm of Barthels, Copik and Bientinesi together with every substrate it
depends on: a symbolic expression language with property inference, a
many-to-one pattern matcher, a BLAS/LAPACK-style kernel catalog, a flexible
cost-metric framework, code generation, a NumPy execution backend, the
baseline evaluation strategies the paper compares against and the experiment
harness that regenerates the paper's tables and figures.

Quick start
-----------

>>> from repro import Matrix, Property, generate_program
>>> A = Matrix("A", 1000, 1000, {Property.SPD})
>>> B = Matrix("B", 1000, 500)
>>> C = Matrix("C", 500, 500, {Property.LOWER_TRIANGULAR})
>>> program = generate_program(A.I * B * C.T)
>>> len(program.calls) >= 2
True
"""

from .algebra import (
    Expression,
    IdentityMatrix,
    Inverse,
    InverseTranspose,
    Matrix,
    Plus,
    Property,
    ShapeError,
    Times,
    Transpose,
    Vector,
    ZeroMatrix,
    infer_properties,
    normalize,
    parse_program,
)
from .codegen import available_emitters, register_emitter
from .core import GMCAlgorithm, GMCSolution, MatrixChainDP, generate_program, solve_chain
from .cost import CostMetric, FlopCount, PerformanceMetric
from .frontend import CompilationResult, Compiler, compile_source
from .kernels import Kernel, KernelCatalog, default_catalog
from .options import CompileOptions

__version__ = "1.0.0"

__all__ = [
    "Expression",
    "Matrix",
    "Vector",
    "IdentityMatrix",
    "ZeroMatrix",
    "Times",
    "Plus",
    "Transpose",
    "Inverse",
    "InverseTranspose",
    "Property",
    "ShapeError",
    "infer_properties",
    "normalize",
    "parse_program",
    "GMCAlgorithm",
    "GMCSolution",
    "MatrixChainDP",
    "solve_chain",
    "generate_program",
    "CompileOptions",
    "Compiler",
    "CompilationResult",
    "compile_source",
    "register_emitter",
    "available_emitters",
    "CostMetric",
    "FlopCount",
    "PerformanceMetric",
    "Kernel",
    "KernelCatalog",
    "default_catalog",
    "__version__",
]

"""Cost-metric framework (Section 3.3 of the paper).

Metrics quantify the quality of a candidate solution; the GMC algorithm
minimizes whichever metric it is given.  Provided metrics: FLOP count,
roofline-based execution-time estimate, memory traffic, a numerical-accuracy
penalty, kernel count, weighted sums and lexicographic vector metrics.
"""

from .machine import DEFAULT_MACHINE, MachineModel
from .metrics import (
    AccuracyMetric,
    CostMetric,
    CustomMetric,
    FlopCount,
    KernelCountMetric,
    MemoryMetric,
    PerformanceMetric,
    VectorMetric,
    WeightedSumMetric,
    resolve_metric,
)

__all__ = [
    "CostMetric",
    "FlopCount",
    "PerformanceMetric",
    "MemoryMetric",
    "AccuracyMetric",
    "KernelCountMetric",
    "WeightedSumMetric",
    "VectorMetric",
    "CustomMetric",
    "resolve_metric",
    "MachineModel",
    "DEFAULT_MACHINE",
]

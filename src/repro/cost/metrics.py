"""Cost metrics: the pluggable objective functions of the GMC algorithm.

The classic matrix chain algorithm minimizes the number of scalar operations.
Section 3.3 of the paper generalizes this: the GMC algorithm accepts an
arbitrary cost function -- FLOPs, estimated execution time (taking per-kernel
efficiency into account), memory traffic, a measure of numerical accuracy, or
a vector of several of these combined under a total order.

A metric assigns a cost to one *kernel application* (a kernel together with
the substitution binding its operands); the DP accumulates these costs over
the kernel calls of a candidate solution.  All metrics return plain floats
(or tuples of floats for vector metrics) so that comparison and addition are
cheap inside the ``O(n^3)`` loop.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from typing import Callable, Optional, Sequence, Tuple

from ..kernels.kernel import Kernel
from ..matching.patterns import Substitution
from .machine import DEFAULT_MACHINE, MachineModel


class CostMetric:
    """Base class for cost metrics.

    Subclasses implement :meth:`kernel_cost`.  The ``zero`` and ``infinity``
    values and the ``combine`` operation define the monoid the DP accumulates
    over; the defaults (0.0, ``inf``, addition) are correct for every scalar
    metric, and :class:`VectorMetric` overrides them for tuple-valued costs.
    """

    name = "abstract"

    #: Cost of computing nothing (a single operand).
    zero: object = 0.0
    #: Cost of an impossible computation (no kernel matches).
    infinity: object = math.inf
    #: Whether :meth:`kernel_cost` is a pure function of (kernel,
    #: substitution).  Metrics with mutable state must set this to ``False``
    #: so :meth:`kernel_cost_cached` never serves stale values.
    cacheable: bool = True
    #: Whether :meth:`kernel_cost` depends only on what the operands'
    #: shape/property signature captures -- dimensions, declared properties
    #: and the leaf-equality pattern -- never on operand *names* or object
    #: identity.  True for every built-in metric (they price kernels from
    #: shapes); the parallel tier's signature-keyed decision memo
    #: (:class:`repro.core.parallel.KernelDecisionMemo`) requires it.
    #: Metrics that inspect names must set this to ``False``.
    signature_pure: bool = True
    #: Whether every kernel cost is guaranteed to be >= :attr:`zero` under
    #: :meth:`combine`.  True for all built-in metrics (FLOPs, time, traffic,
    #: penalties are non-negative); metrics that cannot promise it set this
    #: to ``False``, which disables :meth:`lower_bound` (and with it the DP
    #: split pruning, which is only sound for non-negative kernel costs).
    nonnegative: bool = True
    #: Bound on the :meth:`kernel_cost_cached` memo; the least recently used
    #: entry is evicted when a new one would exceed it.
    cost_cache_size: int = 100_000

    # Class-level defaults for the memo counters, so metric instances stay
    # cheap to construct (subclasses define no ``__init__``) and the first
    # increment creates the instance attribute.
    _cost_hits: int = 0
    _cost_misses: int = 0
    _cost_evictions: int = 0

    def kernel_cost(self, kernel: Kernel, substitution: Substitution) -> object:
        """Cost of applying *kernel* to the matched operands."""
        raise NotImplementedError

    def kernel_cost_cached(self, kernel: Kernel, substitution: Substitution) -> object:
        """Memoized :meth:`kernel_cost`, keyed by ``(kernel, substitution)``.

        Kernel costs are pure functions of the matched operand shapes, so the
        DP loops (which re-encounter the same leaf-level substitutions across
        splits and across repeated solves on a shared metric instance) can
        look them up instead of re-evaluating the cost formula.  The kernel
        object itself is part of the key (kernels hash by identity), so
        same-id kernels from different catalogs never collide.  Substitution
        hashing is O(1) amortized thanks to the cached expression hashes.
        Metrics that are not pure set :attr:`cacheable` to ``False`` and are
        never cached.

        The memo is a bounded LRU (:attr:`cost_cache_size` entries): overflow
        evicts only the coldest entry, so a long-running service keeps its
        working set warm instead of periodically re-deriving every cost from
        scratch, as the previous wholesale ``clear()``-at-capacity reset did.
        """
        if not self.cacheable:
            return self.kernel_cost(kernel, substitution)
        try:
            cache = self._cost_cache
        except AttributeError:
            cache = OrderedDict()
            self._cost_cache = cache
        key = (kernel, substitution)
        cost = cache.get(key)
        if cost is None:
            self._cost_misses += 1
            cost = self.kernel_cost(kernel, substitution)
            if len(cache) >= self.cost_cache_size:
                try:
                    cache.popitem(last=False)
                    self._cost_evictions += 1
                except KeyError:  # emptied by a concurrent solver thread
                    pass
            cache[key] = cost
        else:
            self._cost_hits += 1
            try:
                cache.move_to_end(key)
            except KeyError:
                # The intra-solve thread pool shares this memo; a concurrent
                # eviction can drop *key* between the get and the LRU touch.
                # The cached cost is still valid -- losing one recency bump
                # is harmless.
                pass
        return cost

    @property
    def cost_cache_hit_rate(self) -> float:
        total = self._cost_hits + self._cost_misses
        return self._cost_hits / total if total else 0.0

    def stats(self) -> dict:
        """Plain-dict counters for the kernel-cost memo (uniform cache-stats
        protocol shared with the interner, inference memo and match cache)."""
        cache = getattr(self, "_cost_cache", None)
        return {
            "layer": "kernel_cost",
            "metric": self.name,
            "size": len(cache) if cache is not None else 0,
            "max_entries": self.cost_cache_size,
            "hits": self._cost_hits,
            "misses": self._cost_misses,
            "hit_rate": self.cost_cache_hit_rate,
            "evictions": self._cost_evictions,
        }

    def reset_stats(self) -> None:
        self._cost_hits = 0
        self._cost_misses = 0
        self._cost_evictions = 0

    def combine(self, left: object, right: object) -> object:
        """Accumulate two costs (defaults to addition)."""
        return left + right  # type: ignore[operator]

    def lower_bound(self, left_cost: object, right_cost: object) -> Optional[object]:
        """Lower bound on the cost of any split with these sub-chain costs.

        Before matching a candidate split ``(M[i..k], M[k+1..j])`` against
        the catalog, its accumulated cost is already at least
        ``combine(left_cost, right_cost)`` -- whatever kernel matches can
        only add a non-negative amount.  The DP solvers compare this bound
        against the cell's best-so-far and skip the (expensive) matching and
        kernel-cost evaluation for splits that provably cannot win.

        Returns ``None`` when no bound is available (the metric does not
        guarantee non-negative kernel costs); callers must then evaluate the
        split fully.
        """
        if not self.nonnegative:
            return None
        return self.combine(left_cost, right_cost)

    def is_infinite(self, cost: object) -> bool:
        return cost == self.infinity or (
            isinstance(cost, float) and math.isinf(cost)
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class FlopCount(CostMetric):
    """The classic metric: number of floating-point operations.

    This is the metric used by the standard matrix chain algorithm and by the
    paper's evaluation (Section 4: "As a cost metric, FLOPs are used").
    """

    name = "flops"

    def kernel_cost(self, kernel: Kernel, substitution: Substitution) -> float:
        return kernel.flops(substitution)


class PerformanceMetric(CostMetric):
    """Estimated execution time from a roofline-flavoured performance model.

    Each kernel carries an *efficiency* figure -- the fraction of machine
    peak it typically reaches.  The estimated time of a kernel application is
    the maximum of its compute time (FLOPs at that efficiency) and its memory
    time (operand plus result traffic at the machine bandwidth).  This captures
    the two effects Section 3.3 discusses: not all FLOPs are equally fast
    (GEMM vs. GEMV), and data movement can dominate for skinny operands.
    """

    name = "time"

    def __init__(self, machine: MachineModel = DEFAULT_MACHINE) -> None:
        self.machine = machine

    def kernel_cost(self, kernel: Kernel, substitution: Substitution) -> float:
        flops = kernel.flops(substitution)
        words = kernel.memory_traffic(substitution)
        compute = self.machine.compute_time(flops, kernel.efficiency)
        transfer = self.machine.transfer_time(words)
        return max(compute, transfer)


class MemoryMetric(CostMetric):
    """Number of matrix elements moved (reads of operands plus the write of
    the result) -- a proxy for memory traffic / bytes moved (Section 5)."""

    name = "memory"

    def kernel_cost(self, kernel: Kernel, substitution: Substitution) -> float:
        return kernel.memory_traffic(substitution)


class AccuracyMetric(CostMetric):
    """A crude numerical-accuracy metric.

    Explicit inversion amplifies rounding errors compared to solving a linear
    system, and LU-based solves are less stable than Cholesky on SPD systems.
    The metric charges each kernel a structure-dependent penalty (scaled by
    the problem size) so that, when used inside a vector metric, it breaks
    ties in favour of the numerically preferable formulation -- the behaviour
    Section 3.3 describes for inversion vs. linear systems.
    """

    name = "accuracy"

    #: Relative penalty per kernel family (higher is numerically worse).
    PENALTIES = {
        "GETRI": 10.0,
        "POTRI": 6.0,
        "TRTRI": 4.0,
        "GESV2": 8.0,
        "GESV": 2.0,
        "SYSV": 1.5,
        "POSV": 1.0,
        "TRSM": 1.0,
        "DIAGSV": 0.5,
    }

    def kernel_cost(self, kernel: Kernel, substitution: Substitution) -> float:
        penalty = self.PENALTIES.get(kernel.display_name, 0.1)
        sizes = [
            max(expr.rows or 1, expr.columns or 1) for expr in substitution.values()
        ]
        scale = float(max(sizes)) if sizes else 1.0
        return penalty * scale


class KernelCountMetric(CostMetric):
    """Number of kernel invocations -- useful for tests and for studying how
    metrics change the chosen solution."""

    name = "kernel-count"

    def kernel_cost(self, kernel: Kernel, substitution: Substitution) -> float:
        return 1.0


class WeightedSumMetric(CostMetric):
    """A weighted combination of other scalar metrics."""

    name = "weighted-sum"

    def __init__(self, components: Sequence[Tuple[CostMetric, float]]) -> None:
        if not components:
            raise ValueError("WeightedSumMetric requires at least one component")
        self.components = tuple(components)
        self.cacheable = all(metric.cacheable for metric, _ in self.components)
        self.signature_pure = all(
            metric.signature_pure for metric, _ in self.components
        )
        self.nonnegative = all(
            metric.nonnegative and weight >= 0 for metric, weight in self.components
        )

    def kernel_cost(self, kernel: Kernel, substitution: Substitution) -> float:
        return sum(
            weight * float(metric.kernel_cost(kernel, substitution))
            for metric, weight in self.components
        )


class VectorMetric(CostMetric):
    """A vector-valued metric compared lexicographically.

    Section 5 of the paper notes that the metric "can be a vector, as long as
    addition and a total ordering is defined on the vector space".  Tuples of
    floats with component-wise addition and lexicographic comparison satisfy
    exactly that; a typical instantiation is ``(FLOPs, accuracy penalty)`` --
    minimize FLOPs first and break ties by numerical quality.
    """

    name = "vector"

    def __init__(self, components: Sequence[CostMetric]) -> None:
        if not components:
            raise ValueError("VectorMetric requires at least one component")
        self.components = tuple(components)
        self.zero = tuple(0.0 for _ in self.components)
        self.infinity = tuple(math.inf for _ in self.components)
        self.cacheable = all(metric.cacheable for metric in self.components)
        self.signature_pure = all(metric.signature_pure for metric in self.components)
        # Componentwise non-negativity implies the lexicographic bound of
        # ``lower_bound`` is sound: adding a componentwise >= 0 kernel cost
        # never makes a tuple lexicographically smaller.
        self.nonnegative = all(metric.nonnegative for metric in self.components)

    def kernel_cost(self, kernel: Kernel, substitution: Substitution) -> Tuple[float, ...]:
        return tuple(
            float(metric.kernel_cost(kernel, substitution)) for metric in self.components
        )

    def combine(self, left: object, right: object) -> Tuple[float, ...]:
        return tuple(a + b for a, b in zip(left, right))  # type: ignore[arg-type]

    def is_infinite(self, cost: object) -> bool:
        return any(math.isinf(component) for component in cost)  # type: ignore[union-attr]


class CustomMetric(CostMetric):
    """Wrap an arbitrary ``f(kernel, substitution) -> float`` as a metric.

    User functions may close over mutable state, so custom metrics are
    conservatively excluded from kernel-cost caching; pass
    ``cacheable=True`` when the function is pure.  Likewise they may return
    negative costs, so DP split pruning is off unless ``nonnegative=True``
    promises that the function never does; and they may inspect operand
    names, so the signature-keyed decision memo of the parallel tier is off
    unless ``signature_pure=True`` promises shape/property-only pricing.
    """

    def __init__(
        self,
        function: Callable[[Kernel, Substitution], float],
        name: str = "custom",
        cacheable: bool = False,
        nonnegative: bool = False,
        signature_pure: bool = False,
    ) -> None:
        self._function = function
        self.name = name
        self.cacheable = cacheable
        self.nonnegative = nonnegative
        self.signature_pure = signature_pure

    def kernel_cost(self, kernel: Kernel, substitution: Substitution) -> float:
        return float(self._function(kernel, substitution))


def resolve_metric(metric: Optional[object]) -> CostMetric:
    """Coerce a metric specification into a :class:`CostMetric` instance.

    Accepts ``None`` (FLOPs), a :class:`CostMetric`, or one of the strings
    ``"flops"``, ``"time"``, ``"memory"``, ``"accuracy"``, ``"kernels"``.
    """
    if metric is None:
        return FlopCount()
    if isinstance(metric, CostMetric):
        return metric
    if isinstance(metric, str):
        lowered = metric.lower()
        if lowered in ("flops", "flop", "flop-count"):
            return FlopCount()
        if lowered in ("time", "performance", "roofline"):
            return PerformanceMetric()
        if lowered in ("memory", "traffic", "bytes"):
            return MemoryMetric()
        if lowered in ("accuracy", "stability"):
            return AccuracyMetric()
        if lowered in ("kernels", "kernel-count", "count"):
            return KernelCountMetric()
        raise ValueError(f"unknown cost metric name: {metric!r}")
    raise TypeError(f"cannot interpret {metric!r} as a cost metric")

"""A simple machine model used by the performance cost metric.

Section 3.3 of the paper argues that the FLOP count is not always an accurate
predictor of execution time and that the GMC algorithm should accept an
arbitrary cost metric; the most useful alternative is an estimate of
execution time that accounts for how "efficient" each kernel is.  The machine
model here captures the two numbers such an estimate needs: the peak
floating-point rate and the sustained memory bandwidth.  The default values
are in the ballpark of the paper's evaluation machine (an Intel Xeon
E5-2680 v3 at 2.5 GHz); the absolute values only set the time scale -- the
*relative* comparison between solution candidates, which is what the
algorithm uses, depends only on their ratio.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MachineModel:
    """Peak compute rate and memory bandwidth of the execution target.

    Attributes
    ----------
    peak_flops:
        Peak double-precision floating-point operations per second.
    bandwidth_bytes:
        Sustained main-memory bandwidth in bytes per second.
    word_bytes:
        Size of one matrix element in bytes (8 for double precision).
    """

    peak_flops: float = 4.0e10
    bandwidth_bytes: float = 6.0e10
    word_bytes: float = 8.0

    @property
    def machine_balance(self) -> float:
        """FLOPs per transferred element at the roofline ridge point."""
        return self.peak_flops * self.word_bytes / self.bandwidth_bytes

    def compute_time(self, flops: float, efficiency: float) -> float:
        """Time to execute *flops* at the given fraction of peak."""
        if flops <= 0.0:
            return 0.0
        return flops / (self.peak_flops * efficiency)

    def transfer_time(self, words: float) -> float:
        """Time to move *words* matrix elements to/from memory."""
        if words <= 0.0:
            return 0.0
        return words * self.word_bytes / self.bandwidth_bytes


#: The default machine model (roughly one socket of the paper's test machine).
DEFAULT_MACHINE = MachineModel()

"""Unified cache telemetry: snapshot, reset and aggregate every cache layer.

The compilation pipeline owns five caches plus the solver work counters,
each of which exposes the uniform ``stats()`` / ``reset_stats()`` protocol
(plain dicts with ``size``, ``max_entries``, ``hits``, ``misses``,
``hit_rate`` and ``evictions`` for the caches):

* the **plan cache** of a compiler session
  (:class:`repro.persist.plan_cache.PlanCache`) -- signature-keyed whole
  solved plans, consulted before the dynamic program runs;
* the **match cache** of a kernel catalog
  (:class:`repro.matching.match_cache.MatchCache`) -- signature-keyed
  kernel-match results;
* the **expression interner**
  (:class:`repro.algebra.interning.ExpressionInterner`) -- hash-consing
  table occupancy;
* the **inference memo**
  (:class:`repro.algebra.inference.PropertyInference`) -- memoized property
  sets;
* the **kernel-cost LRU** (:meth:`repro.cost.metrics.CostMetric.stats`) --
  memoized per-kernel cost evaluations, one memo per live metric instance;
* the **solver work counters**
  (:class:`repro.core.parallel.SolverWorkTelemetry`) -- DP cells
  evaluated, split candidates pruned and anti-diagonals entered, summed
  over every solve the process ran (serial or parallel);
* the **segment counters**
  (:class:`repro.core.segments.SegmentTelemetry`) -- DAG programs
  decomposed, chain segments produced, synthetic segments, CSE reuses and
  the per-segment plan-cache hits/misses recorded by the compiler loop;
* the **execution counters**
  (:class:`repro.exec.loader.ExecutionTelemetry`) -- emitted-module cache
  occupancy/hits of the execution tier plus the runs, run errors and
  numerical-validation failures recorded by ``POST /execute``;
* the **workload analytics** layer
  (:class:`repro.obs.analytics.WorkloadAnalytics`) -- mergeable streaming
  sketches over served traffic: Space-Saving heavy hitters over request
  signatures, latency quantile sketches and time-series counter rings.
  Unlike the counter layers this one aggregates by *sketch merging*
  (:func:`repro.obs.analytics.merge_analytics_states`), not by summing,
  so pool workers ship their sketch state through the same ``stats``
  message and ``GET /analytics`` sees fleet-wide top-k and quantiles.

This module never mutates pipeline state beyond ``reset_stats``; it only
*reads* the counters the layers maintain themselves, so the service layer
stays import-light and the cache layers stay service-agnostic.

:func:`snapshot` collects one process's view; :func:`aggregate` pools the
snapshots of many workers into fleet-wide counters with recomputed hit
rates (rates are recomputed from pooled hits/misses, never averaged, so a
busy worker weighs proportionally to its traffic).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from .algebra.inference import inference_engine
from .algebra.interning import default_interner
from .core.parallel import solver_work_telemetry
from .core.segments import segment_telemetry
from .cost.metrics import CostMetric
from .kernels.catalog import KernelCatalog, default_catalog

__all__ = ["CACHE_LAYERS", "snapshot", "reset", "aggregate"]

#: The telemetry layers every snapshot reports, in display order.
CACHE_LAYERS = (
    "plan_cache",
    "match_cache",
    "interner",
    "inference",
    "kernel_cost",
    "solver",
    "segments",
    "execution",
    "analytics",
)

#: Counter keys that add up across workers / metric instances.
_SUMMED_KEYS = (
    "size",
    "max_entries",
    "hits",
    "misses",
    "evictions",
    "bypasses",
    "stores",
    "restored",
    "solves",
    "cells_evaluated",
    "cells_pruned",
    "diagonals",
    "programs",
    "segments",
    "synthetic",
    "cse_reuses",
    "runs",
    "run_errors",
    "validation_failures",
)


def _combine(stats: Sequence[Mapping], layer: str) -> Dict[str, object]:
    """Pool several same-layer counter dicts into one (summing counters)."""
    combined: Dict[str, object] = {"layer": layer}
    for key in _SUMMED_KEYS:
        values = [entry[key] for entry in stats if key in entry]
        if values:
            combined[key] = sum(values)
    hits = combined.get("hits", 0)
    misses = combined.get("misses", 0)
    total = hits + misses  # type: ignore[operator]
    combined["hit_rate"] = hits / total if total else 0.0  # type: ignore[operator]
    return combined


def snapshot(
    catalog: Optional[KernelCatalog] = None,
    metrics: Optional[Mapping[str, CostMetric]] = None,
    plan_cache=None,
) -> Dict[str, dict]:
    """One process's cache counters, keyed by layer name.

    *catalog* defaults to :func:`default_catalog`; *metrics* is the
    executor's cache of live metric instances (their kernel-cost memos are
    combined into one ``kernel_cost`` entry, with a per-metric breakdown
    under ``per_metric``); *plan_cache* is the session's whole-plan cache
    (the layer reports zeros when the caller has none -- the plan cache is
    per-session state, unlike the process-global interner/inference memos).
    """
    # Imported lazily: repro.exec pulls in the codegen registry, and the
    # registry's own bootstrap imports repro.exec -- deferring here keeps
    # telemetry importable from any point of that cycle.
    from .exec.loader import execution_telemetry
    from .obs.analytics import workload_analytics

    catalog = catalog if catalog is not None else default_catalog()
    plan_stats = (
        plan_cache.stats()
        if plan_cache is not None
        else {
            "layer": "plan_cache",
            "size": 0,
            "max_entries": 0,
            "hits": 0,
            "misses": 0,
            "hit_rate": 0.0,
            "evictions": 0,
            "bypasses": 0,
        }
    )
    metric_items = list((metrics or {}).items())
    metric_stats: List[dict] = [metric.stats() for _, metric in metric_items]
    kernel_cost = _combine(metric_stats, "kernel_cost")
    # Keyed by the executor's cache key (stringified), not by the metric's
    # display name: two live instances of one metric (e.g. the same name
    # under different cost_cache_size settings) must not overwrite each
    # other in the breakdown.
    kernel_cost["per_metric"] = {
        str(cache_key): {
            key: value for key, value in entry.items() if key != "metric"
        }
        for (cache_key, _), entry in zip(metric_items, metric_stats)
    }
    return {
        "plan_cache": plan_stats,
        "match_cache": catalog.match_cache.stats(),
        "interner": default_interner().stats(),
        "inference": inference_engine().stats(),
        "kernel_cost": kernel_cost,
        "solver": solver_work_telemetry().stats(),
        "segments": segment_telemetry().stats(),
        "execution": execution_telemetry().stats(),
        "analytics": workload_analytics().state(),
    }


def reset(
    catalog: Optional[KernelCatalog] = None,
    metrics: Optional[Mapping[str, CostMetric]] = None,
    plan_cache=None,
) -> None:
    """Zero the stats counters of every layer (entries stay warm)."""
    from .exec.loader import execution_telemetry
    from .obs.analytics import workload_analytics

    catalog = catalog if catalog is not None else default_catalog()
    if plan_cache is not None:
        plan_cache.reset_stats()
    catalog.match_cache.reset_stats()
    default_interner().reset_stats()
    inference_engine().reset_stats()
    solver_work_telemetry().reset_stats()
    segment_telemetry().reset_stats()
    execution_telemetry().reset_stats()
    workload_analytics().reset()
    for metric in (metrics or {}).values():
        metric.reset_stats()


def aggregate(snapshots: Iterable[Mapping[str, Mapping]]) -> Dict[str, dict]:
    """Pool per-worker snapshots into fleet-wide counters per layer.

    Counter layers sum; the ``analytics`` layer merges sketch-wise
    (heavy-hitter counters unite, quantile buckets add, time-series slots
    align by absolute index) -- summing a sketch state key-by-key would be
    meaningless.
    """
    from .obs.analytics import merge_analytics_states

    snapshots = list(snapshots)
    pooled: Dict[str, dict] = {}
    for layer in CACHE_LAYERS:
        entries = [snap[layer] for snap in snapshots if layer in snap]
        if layer == "analytics":
            pooled[layer] = merge_analytics_states(entries)
        else:
            pooled[layer] = _combine(entries, layer)
    pooled["workers"] = len(snapshots)
    return pooled

"""LAPACK-style kernels: linear-system solves and explicit inversion.

The GMC algorithm never needs to invert a matrix explicitly: an inverted
operand inside a chain is always consumed by a *solve* kernel
(``A^-1 B`` -> TRSM / POSV / SYSV / GESV depending on the structure of
``A``), which is both cheaper and numerically preferable (paper Section 3.3).
Explicit inversion kernels (GETRI, POTRI, TRTRI, DIAGINV) are nevertheless
part of the catalog because the *naive* baseline strategies of Section 4
(``inv(A)*B`` in Julia/Matlab/Eigen/Blaze/Armadillo) require them.

Solve kernel families
---------------------

=========  ===========================================  =====================
Family     Computes                                     Cost
=========  ===========================================  =====================
TRSM       ``T^-1 B`` / ``B T^-1``, T triangular        ``m^2 n``
POSV       ``S^-1 B`` / ``B S^-1``, S SPD               ``n^3/3 + 2 n^2 m``
SYSV       ``S^-1 B`` / ``B S^-1``, S symmetric         ``n^3/3 + 2 n^2 m``
GESV       ``A^-1 B`` / ``B A^-1``, general A           ``2 n^3/3 + 2 n^2 m``
DIAGSV     ``D^-1 B`` / ``B D^-1``, D diagonal          ``m n``
GESV2      ``A^-1 B^-1`` (both operands inverted)       ``2 n^3 + gesv``
GETRI      ``A^-1`` explicitly (general)                ``2 n^3``
POTRI      ``A^-1`` explicitly (SPD)                    ``n^3``
TRTRI      ``T^-1`` explicitly (triangular)             ``n^3 / 3``
DIAGINV    ``D^-1`` explicitly (diagonal)               ``n``
TRANS      explicit transposition                       ``0`` FLOPs
=========  ===========================================  =====================

The GESV2 combined kernel realizes the assumption stated in Section 5 of the
paper ("we assumed that a kernel for ``X := A^-1 B^-1`` is provided"); the
default catalog includes it, and :func:`repro.kernels.catalog.default_catalog`
can exclude it to reproduce the completeness discussion of Section 3.4.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..matching.patterns import Constraint, Pattern, Substitution
from . import flops, helpers
from .kernel import Kernel

#: Efficiency (fraction of peak) for solve/inversion kernels.
EFFICIENCY = {
    "TRSM": 0.70,
    "POSV": 0.60,
    "SYSV": 0.50,
    "GESV": 0.55,
    "DIAGSV": 0.05,
    "GESV2": 0.45,
    "GETRI": 0.45,
    "POTRI": 0.50,
    "TRTRI": 0.50,
    "DIAGINV": 0.02,
    "TRANS": 0.05,
}

_INVERSE_CODES = ("I", "IT")
_PLAIN_CODES = ("N", "T")


def _np_operand(placeholder: str, code: str) -> str:
    if helpers.is_transposed_code(code):
        return placeholder + ".T"
    return placeholder


def _solve_dims(
    substitution: Substitution, side: str, left_code: str, right_code: str
) -> Tuple[int, int]:
    """Return ``(n, nrhs)``: the size of the inverted (square) operand and the
    free dimension of the other operand."""
    m, k, n = helpers.product_dims(substitution, left_code, right_code)
    if side == "L":
        return m, n
    return n, m


def _left_solve_variants() -> Sequence[Tuple[str, str, str]]:
    """(kernel id suffix, left wrapper, right wrapper) for A^-1-on-the-left."""
    variants = []
    for left in _INVERSE_CODES:
        for right in _PLAIN_CODES:
            variants.append((f"l_{left.lower()}{right.lower()}", left, right))
    return variants


def _right_solve_variants() -> Sequence[Tuple[str, str, str]]:
    variants = []
    for left in _PLAIN_CODES:
        for right in _INVERSE_CODES:
            variants.append((f"r_{left.lower()}{right.lower()}", left, right))
    return variants


def _solve_family(
    family: str,
    display_name: str,
    structure: str,
    constraints_for: "callable",
    cost_fn: "callable",
    julia_name: str,
    numpy_solver: str,
    efficiency: float,
) -> List[Kernel]:
    """Generate the left- and right-side variants of one solve family."""
    kernels: List[Kernel] = []
    for side, variants in (("L", _left_solve_variants()), ("R", _right_solve_variants())):
        for suffix, left, right in variants:
            inverted = "X" if side == "L" else "Y"
            other = "Y" if side == "L" else "X"
            pattern_expr, _, _ = helpers.binary_pattern(left, right)
            constraints = constraints_for(inverted)

            def cost(
                substitution: Substitution,
                side=side,
                left=left,
                right=right,
                cost_fn=cost_fn,
            ) -> float:
                n, nrhs = _solve_dims(substitution, side, left, right)
                return cost_fn(n, nrhs)

            transposed_system = helpers.is_transposed_code(left if side == "L" else right)
            kernels.append(
                Kernel(
                    id=f"{family}_{suffix}",
                    display_name=display_name,
                    pattern=Pattern(
                        pattern_expr,
                        constraints=constraints,
                        name=f"{display_name}_{side}_{left}{right}",
                    ),
                    operands=("X", "Y"),
                    cost=cost,
                    efficiency=efficiency,
                    runtime="solve",
                    julia_template=(
                        f"{julia_name}!("
                        + ("{X}, {Y}" if side == "L" else "{Y}, {X}")
                        + ")"
                    ),
                    numpy_template=(
                        "{out} = "
                        + numpy_solver
                        + "("
                        + ("{X}" if side == "L" else "{Y}")
                        + ", "
                        # The right-hand side carries its own transpose code
                        # (the coefficient's transpose travels separately via
                        # ``transposed=True``).
                        + (
                            _np_operand("{Y}", right)
                            if side == "L"
                            else _np_operand("{X}", left)
                        )
                        + (", transposed=True" if transposed_system else "")
                        + (", side='R'" if side == "R" else "")
                        + ")"
                    ),
                    level="lapack",
                    description=f"linear-system solve with a {structure} coefficient matrix",
                    flags={
                        "left_op": left,
                        "right_op": right,
                        "structure": structure,
                        "side": side,
                    },
                )
            )
    return kernels


def build_trsm_kernels() -> List[Kernel]:
    kernels: List[Kernel] = []
    for uplo in ("lower", "upper"):
        def constraints_for(name: str, uplo=uplo) -> Tuple[Constraint, ...]:
            return (helpers.triangular(name, uplo), helpers.not_diagonal(name))

        family = _solve_family(
            family=f"trsm_{uplo}",
            display_name="TRSM",
            structure="triangular",
            constraints_for=constraints_for,
            cost_fn=flops.trsm,
            julia_name="trsm",
            numpy_solver="solve_triangular",
            efficiency=EFFICIENCY["TRSM"],
        )
        for kernel in family:
            kernel.flags.update(uplo=uplo)  # type: ignore[attr-defined]
        kernels.extend(family)
    return kernels


def build_posv_kernels() -> List[Kernel]:
    def constraints_for(name: str) -> Tuple[Constraint, ...]:
        return (helpers.spd(name), helpers.not_diagonal(name))

    return _solve_family(
        family="posv",
        display_name="POSV",
        structure="spd",
        constraints_for=constraints_for,
        cost_fn=flops.posv,
        julia_name="posv",
        numpy_solver="cholesky_solve",
        efficiency=EFFICIENCY["POSV"],
    )


def build_sysv_kernels() -> List[Kernel]:
    def constraints_for(name: str) -> Tuple[Constraint, ...]:
        return (helpers.symmetric(name), helpers.not_diagonal(name))

    return _solve_family(
        family="sysv",
        display_name="SYSV",
        structure="symmetric",
        constraints_for=constraints_for,
        cost_fn=flops.sysv,
        julia_name="sysv",
        numpy_solver="symmetric_solve",
        efficiency=EFFICIENCY["SYSV"],
    )


def build_gesv_kernels() -> List[Kernel]:
    def constraints_for(name: str) -> Tuple[Constraint, ...]:
        return ()

    return _solve_family(
        family="gesv",
        display_name="GESV",
        structure="general",
        constraints_for=constraints_for,
        cost_fn=flops.gesv,
        julia_name="gesv",
        numpy_solver="lu_solve",
        efficiency=EFFICIENCY["GESV"],
    )


def build_diagsv_kernels() -> List[Kernel]:
    def constraints_for(name: str) -> Tuple[Constraint, ...]:
        return (helpers.diagonal(name), helpers.not_scalar(name))

    def cost_fn(n: int, nrhs: int) -> float:
        return flops.diagmm(n, nrhs)

    return _solve_family(
        family="diagsv",
        display_name="DIAGSV",
        structure="diagonal",
        constraints_for=constraints_for,
        cost_fn=cost_fn,
        julia_name="diagsv",
        numpy_solver="diagonal_solve",
        efficiency=EFFICIENCY["DIAGSV"],
    )


def build_combined_inverse_kernels() -> List[Kernel]:
    """Kernels for ``A^-1 B^-1`` (both operands inverted).

    Such a routine does not exist in BLAS/LAPACK; the paper (Section 5)
    assumes one is provided, constructed from existing kernels.  The cost
    model reflects the natural construction: explicitly invert the right
    operand, then solve with the left one.
    """
    kernels: List[Kernel] = []
    for left in _INVERSE_CODES:
        for right in _INVERSE_CODES:
            pattern_expr, _, _ = helpers.binary_pattern(left, right)

            def cost(substitution: Substitution, left=left, right=right) -> float:
                m, k, n = helpers.product_dims(substitution, left, right)
                return flops.getri(n) + flops.gesv(m, n)

            kernels.append(
                Kernel(
                    id=f"gesv2_{left.lower()}_{right.lower()}",
                    display_name="GESV2",
                    pattern=Pattern(pattern_expr, name=f"GESV2_{left}{right}"),
                    operands=("X", "Y"),
                    cost=cost,
                    efficiency=EFFICIENCY["GESV2"],
                    runtime="solve_both",
                    julia_template="gesv!({X}, getri!({Y}))",
                    numpy_template=(
                        "{out} = lu_solve({X}, invert("
                        + _np_operand("{Y}", right)
                        + ")"
                        + (", transposed=True" if left == "IT" else "")
                        + ")"
                    ),
                    level="lapack",
                    description="product of two inverted operands (composite kernel)",
                    flags={"left_op": left, "right_op": right, "structure": "general"},
                )
            )
    return kernels


def build_inversion_kernels() -> List[Kernel]:
    """Explicit inversion kernels, used mainly by the naive baselines."""
    kernels: List[Kernel] = []
    specs = [
        ("getri", "GETRI", (), "general", flops.getri, "invert", "inv!({X})"),
        (
            "potri",
            "POTRI",
            (helpers.spd("X"), helpers.not_diagonal("X")),
            "spd",
            flops.potri,
            "invert_spd",
            "potri!('L', {X})",
        ),
        (
            "trtri_lower",
            "TRTRI",
            (helpers.lower("X"), helpers.not_diagonal("X")),
            "triangular",
            flops.trtri,
            "invert_triangular",
            "trtri!('L', 'N', {X})",
        ),
        (
            "trtri_upper",
            "TRTRI",
            (helpers.upper("X"), helpers.not_diagonal("X")),
            "triangular",
            flops.trtri,
            "invert_triangular",
            "trtri!('U', 'N', {X})",
        ),
        (
            "diaginv",
            "DIAGINV",
            (helpers.diagonal("X"), helpers.not_scalar("X")),
            "diagonal",
            flops.diaginv,
            "invert_diagonal",
            "{out} = inv(Diagonal({X}))",
        ),
    ]
    for code in ("I", "IT"):
        for base_id, display, constraints, structure, cost_fn, runtime, julia in specs:
            pattern_expr, _ = helpers.unary_pattern(code)
            efficiency_key = display if display in EFFICIENCY else "GETRI"

            def cost(substitution: Substitution, cost_fn=cost_fn) -> float:
                operand = substitution["X"]
                return cost_fn(operand.rows or 1)

            suffix = "" if code == "I" else "_t"
            kernels.append(
                Kernel(
                    id=f"{base_id}{suffix}",
                    display_name=display,
                    pattern=Pattern(pattern_expr, constraints=constraints, name=f"{display}_{code}"),
                    operands=("X",),
                    cost=cost,
                    efficiency=EFFICIENCY[efficiency_key],
                    runtime=runtime,
                    julia_template=julia,
                    numpy_template="{out} = " + runtime + "({X}"
                    + (".T" if code == "IT" else "")
                    + ")",
                    level="lapack",
                    description=f"explicit inversion of a {structure} matrix",
                    flags={"op": code, "structure": structure},
                )
            )
    return kernels


def build_transpose_kernel() -> List[Kernel]:
    """Explicit out-of-place transposition (0 FLOPs, pure data movement)."""
    pattern_expr, _ = helpers.unary_pattern("T")

    def cost(substitution: Substitution) -> float:
        return flops.transpose_copy(
            substitution["X"].rows or 1, substitution["X"].columns or 1
        )

    def memory(substitution: Substitution) -> float:
        operand = substitution["X"]
        return 2.0 * (operand.rows or 1) * (operand.columns or 1)

    return [
        Kernel(
            id="transpose",
            display_name="TRANS",
            pattern=Pattern(pattern_expr, name="TRANS"),
            operands=("X",),
            cost=cost,
            efficiency=EFFICIENCY["TRANS"],
            runtime="transpose",
            julia_template="{out} = copy(transpose({X}))",
            numpy_template="{out} = {X}.T.copy()",
            level=1,
            memory=memory,
            description="explicit out-of-place transposition",
            flags={"op": "T", "structure": "general"},
        )
    ]


def build_solver_kernels(include_combined_inverse: bool = True) -> List[Kernel]:
    """All solve/inversion kernels of the default catalog."""
    kernels: List[Kernel] = []
    kernels.extend(build_trsm_kernels())
    kernels.extend(build_posv_kernels())
    kernels.extend(build_sysv_kernels())
    kernels.extend(build_gesv_kernels())
    kernels.extend(build_diagsv_kernels())
    if include_combined_inverse:
        kernels.extend(build_combined_inverse_kernels())
    kernels.extend(build_inversion_kernels())
    kernels.extend(build_transpose_kernel())
    return kernels

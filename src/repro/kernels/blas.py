"""BLAS-style multiplication kernels (levels 1, 2 and 3).

Each kernel family is generated programmatically, one :class:`Kernel` per
transposition/side/structure variant, mirroring the way the real BLAS
interface enumerates its ``side``/``uplo``/``trans`` arguments.  The families
defined here are the multiplication kernels of Table 1 of the paper plus the
vector kernels needed for chains that contain vectors (Section 4 discusses
chains of the form ``M1 ... Mn v1 v2^T``):

=========  ===============================  ==========================
Family     Computes                         Cost (paper conventions)
=========  ===============================  ==========================
GEMM       general ``op(A) op(B)``          ``2 m n k``
TRMM       triangular times general         ``m^2 n``
SYMM       symmetric times general          ``m^2 n``
SYRK       ``A^T A`` / ``A A^T``            ``m^2 k``
DIAGMM     diagonal times general           ``m n``
GEMV       general matrix times vector      ``2 m n``
GEVM       row vector times matrix          ``2 m n``
GER        outer product ``x y^T``          ``m n``
DOT        inner product ``x^T y``          ``2 n``
SCALMM     1x1 operand times matrix         ``m n``
=========  ===============================  ==========================

Efficiency figures (fraction of machine peak, used by the performance cost
metric) reflect the usual behaviour of optimized BLAS: compute-bound level-3
kernels run near peak, memory-bound level-2/level-1 kernels run far below.
"""

from __future__ import annotations

from typing import List

from ..algebra.operators import Times, Transpose
from ..matching.patterns import Pattern, Substitution
from . import flops, helpers
from .kernel import Kernel

#: Default efficiency (fraction of peak) per kernel family.
EFFICIENCY = {
    "GEMM": 0.90,
    "TRMM": 0.80,
    "SYMM": 0.80,
    "SYRK": 0.82,
    "DIAGMM": 0.05,
    "GEMV": 0.06,
    "GEVM": 0.06,
    "GER": 0.04,
    "DOT": 0.03,
    "SCALMM": 0.04,
}


def _np_operand(placeholder: str, code: str) -> str:
    """NumPy spelling of a wrapped operand inside a template."""
    if helpers.is_transposed_code(code):
        return placeholder + ".T"
    return placeholder


def _trans_char(code: str) -> str:
    return "T" if helpers.is_transposed_code(code) else "N"


# ---------------------------------------------------------------------------
# GEMM: the universal matrix-matrix product (no structure requirements).
# ---------------------------------------------------------------------------

def build_gemm_kernels() -> List[Kernel]:
    kernels = []
    for left in ("N", "T"):
        for right in ("N", "T"):
            pattern_expr, _, _ = helpers.binary_pattern(left, right)

            def cost(substitution: Substitution, left=left, right=right) -> float:
                m, k, n = helpers.product_dims(substitution, left, right)
                return flops.gemm(m, n, k)

            kernels.append(
                Kernel(
                    id=f"gemm_{left.lower()}{right.lower()}",
                    display_name="GEMM",
                    pattern=Pattern(pattern_expr, name=f"GEMM_{left}{right}"),
                    operands=("X", "Y"),
                    cost=cost,
                    efficiency=EFFICIENCY["GEMM"],
                    runtime="product",
                    julia_template=(
                        f"gemm!('{_trans_char(left)}', '{_trans_char(right)}', "
                        "1.0, {X}, {Y}, 0.0, {out})"
                    ),
                    numpy_template=(
                        "{out} = " + _np_operand("{X}", left) + " @ " + _np_operand("{Y}", right)
                    ),
                    level=3,
                    description="general matrix-matrix product",
                    flags={"left_op": left, "right_op": right, "structure": "general"},
                )
            )
    return kernels


# ---------------------------------------------------------------------------
# TRMM: triangular matrix times general matrix, either side.
# ---------------------------------------------------------------------------

def build_trmm_kernels() -> List[Kernel]:
    kernels = []
    for side in ("L", "R"):
        for uplo in ("lower", "upper"):
            for tri_op in ("N", "T"):
                for other_op in ("N", "T"):
                    if side == "L":
                        left, right = tri_op, other_op
                        constraint = helpers.triangular("X", uplo)
                    else:
                        left, right = other_op, tri_op
                        constraint = helpers.triangular("Y", uplo)
                    pattern_expr, _, _ = helpers.binary_pattern(left, right)

                    def cost(
                        substitution: Substitution, left=left, right=right, side=side
                    ) -> float:
                        m, k, n = helpers.product_dims(substitution, left, right)
                        if side == "L":
                            return flops.trmm(m, n)
                        return flops.trmm(n, m)

                    uplo_char = "L" if uplo == "lower" else "U"
                    kernels.append(
                        Kernel(
                            id=f"trmm_{side.lower()}_{uplo}_{tri_op.lower()}{other_op.lower()}",
                            display_name="TRMM",
                            pattern=Pattern(
                                pattern_expr,
                                constraints=(constraint,),
                                name=f"TRMM_{side}_{uplo}_{tri_op}{other_op}",
                            ),
                            operands=("X", "Y"),
                            cost=cost,
                            efficiency=EFFICIENCY["TRMM"],
                            runtime="product",
                            julia_template=(
                                f"trmm!('{side}', '{uplo_char}', '{_trans_char(tri_op)}', 'N', "
                                "1.0, " + ("{X}, {Y}" if side == "L" else "{Y}, {X}") + ")"
                            ),
                            numpy_template=(
                                "{out} = "
                                + _np_operand("{X}", left)
                                + " @ "
                                + _np_operand("{Y}", right)
                            ),
                            level=3,
                            description="triangular matrix times general matrix",
                            flags={
                                "left_op": left,
                                "right_op": right,
                                "structure": "triangular",
                                "side": side,
                                "uplo": uplo,
                            },
                        )
                    )
    return kernels


# ---------------------------------------------------------------------------
# SYMM: symmetric matrix times general matrix, either side.
# ---------------------------------------------------------------------------

def build_symm_kernels() -> List[Kernel]:
    kernels = []
    for side in ("L", "R"):
        for other_op in ("N", "T"):
            if side == "L":
                left, right = "N", other_op
                constraints = (helpers.symmetric("X"), helpers.not_diagonal("X"))
            else:
                left, right = other_op, "N"
                constraints = (helpers.symmetric("Y"), helpers.not_diagonal("Y"))
            pattern_expr, _, _ = helpers.binary_pattern(left, right)

            def cost(substitution: Substitution, left=left, right=right, side=side) -> float:
                m, k, n = helpers.product_dims(substitution, left, right)
                if side == "L":
                    return flops.symm(m, n)
                return flops.symm(n, m)

            kernels.append(
                Kernel(
                    id=f"symm_{side.lower()}_{other_op.lower()}",
                    display_name="SYMM",
                    pattern=Pattern(
                        pattern_expr, constraints=constraints, name=f"SYMM_{side}_{other_op}"
                    ),
                    operands=("X", "Y"),
                    cost=cost,
                    efficiency=EFFICIENCY["SYMM"],
                    runtime="product",
                    julia_template=(
                        f"symm!('{side}', 'L', 1.0, "
                        + ("{X}, {Y}" if side == "L" else "{Y}, {X}")
                        + ", 0.0, {out})"
                    ),
                    numpy_template=(
                        "{out} = " + _np_operand("{X}", left) + " @ " + _np_operand("{Y}", right)
                    ),
                    level=3,
                    description="symmetric matrix times general matrix",
                    flags={
                        "left_op": left,
                        "right_op": right,
                        "structure": "symmetric",
                        "side": side,
                    },
                )
            )
    return kernels


# ---------------------------------------------------------------------------
# SYRK: A^T A and A A^T (non-linear patterns: the same wildcard twice).
# ---------------------------------------------------------------------------

def build_syrk_kernels() -> List[Kernel]:
    kernels = []
    for trans in ("T", "N"):
        x = helpers.operand_wildcard("X")
        if trans == "T":
            pattern_expr = Times(Transpose(x), x)
        else:
            pattern_expr = Times(x, Transpose(x))

        def cost(substitution: Substitution, trans=trans) -> float:
            operand = substitution["X"]
            rows = operand.rows or 1
            columns = operand.columns or 1
            if trans == "T":
                return flops.syrk(columns, rows)
            return flops.syrk(rows, columns)

        kernels.append(
            Kernel(
                id=f"syrk_{trans.lower()}",
                display_name="SYRK",
                pattern=Pattern(
                    pattern_expr,
                    constraints=(helpers.not_vector("X"),),
                    name=f"SYRK_{trans}",
                ),
                operands=("X",),
                cost=cost,
                efficiency=EFFICIENCY["SYRK"],
                runtime="syrk",
                julia_template=f"syrk!('L', '{trans}', 1.0, {{X}}, 0.0, {{out}})",
                numpy_template=(
                    "{out} = {X}.T @ {X}" if trans == "T" else "{out} = {X} @ {X}.T"
                ),
                level=3,
                description="symmetric rank-k update (Gram matrix)",
                flags={"trans": trans, "structure": "general"},
            )
        )
    return kernels


# ---------------------------------------------------------------------------
# DIAGMM: diagonal matrix times general matrix (either side).
# ---------------------------------------------------------------------------

def build_diagmm_kernels() -> List[Kernel]:
    kernels = []
    for side in ("L", "R"):
        for other_op in ("N", "T"):
            if side == "L":
                left, right = "N", other_op
                constraints = (helpers.diagonal("X"), helpers.not_scalar("X"))
            else:
                left, right = other_op, "N"
                constraints = (helpers.diagonal("Y"), helpers.not_scalar("Y"))
            pattern_expr, _, _ = helpers.binary_pattern(left, right)

            def cost(substitution: Substitution, left=left, right=right) -> float:
                m, _, n = helpers.product_dims(substitution, left, right)
                return flops.diagmm(m, n)

            kernels.append(
                Kernel(
                    id=f"diagmm_{side.lower()}_{other_op.lower()}",
                    display_name="DIAGMM",
                    pattern=Pattern(
                        pattern_expr, constraints=constraints, name=f"DIAGMM_{side}_{other_op}"
                    ),
                    operands=("X", "Y"),
                    cost=cost,
                    efficiency=EFFICIENCY["DIAGMM"],
                    runtime="product",
                    julia_template=(
                        "{out} = Diagonal("
                        + ("{X}" if side == "L" else "{Y}")
                        + ") * "
                        + ("{Y}" if side == "L" else "{X}")
                    ),
                    numpy_template=(
                        "{out} = " + _np_operand("{X}", left) + " @ " + _np_operand("{Y}", right)
                    ),
                    level=3,
                    description="diagonal matrix scaling of a general matrix",
                    flags={
                        "left_op": left,
                        "right_op": right,
                        "structure": "diagonal",
                        "side": side,
                    },
                )
            )
    return kernels


# ---------------------------------------------------------------------------
# Vector kernels: GEMV, GEVM, GER, DOT, SCALMM.
# ---------------------------------------------------------------------------

def build_gemv_kernels() -> List[Kernel]:
    kernels = []
    for left in ("N", "T"):
        pattern_expr, _, _ = helpers.binary_pattern(left, "N")

        def cost(substitution: Substitution, left=left) -> float:
            m, k, _ = helpers.product_dims(substitution, left, "N")
            return flops.gemv(m, k)

        kernels.append(
            Kernel(
                id=f"gemv_{left.lower()}",
                display_name="GEMV",
                pattern=Pattern(
                    pattern_expr,
                    constraints=(helpers.not_vector("X"), helpers.column_vector("Y")),
                    name=f"GEMV_{left}",
                ),
                operands=("X", "Y"),
                cost=cost,
                efficiency=EFFICIENCY["GEMV"],
                runtime="product",
                julia_template=(
                    f"gemv!('{_trans_char(left)}', 1.0, {{X}}, {{Y}}, 0.0, {{out}})"
                ),
                numpy_template="{out} = " + _np_operand("{X}", left) + " @ {Y}",
                level=2,
                description="general matrix-vector product",
                flags={"left_op": left, "right_op": "N", "structure": "general"},
            )
        )
    return kernels


def build_gevm_kernels() -> List[Kernel]:
    """Row-vector times matrix: ``x^T A`` and ``r A`` for a row vector ``r``."""
    kernels = []
    variants = [
        ("gevm_t", "T", "N", (helpers.column_vector("X"), helpers.not_vector("Y"))),
        ("gevm_tt", "T", "T", (helpers.column_vector("X"), helpers.not_vector("Y"))),
        ("gevm_n", "N", "N", (helpers.row_vector("X"), helpers.not_vector("Y"))),
        ("gevm_nt", "N", "T", (helpers.row_vector("X"), helpers.not_vector("Y"))),
    ]
    for kernel_id, left, right, constraints in variants:

        def cost(substitution: Substitution, left=left, right=right) -> float:
            _, k, n = helpers.product_dims(substitution, left, right)
            return flops.gemv(k, n)

        kernels.append(
            Kernel(
                id=kernel_id,
                display_name="GEMV",
                pattern=Pattern(
                    helpers.binary_pattern(left, right)[0],
                    constraints=constraints,
                    name=kernel_id.upper(),
                ),
                operands=("X", "Y"),
                cost=cost,
                efficiency=EFFICIENCY["GEVM"],
                runtime="product",
                julia_template=(
                    "gemv!('T', 1.0, " + _np_operand("{Y}", right) + ", {X}, 0.0, {out})"
                ),
                numpy_template=(
                    "{out} = " + _np_operand("{X}", left) + " @ " + _np_operand("{Y}", right)
                ),
                level=2,
                description="row vector times matrix",
                flags={"left_op": left, "right_op": right, "structure": "general"},
            )
        )
    return kernels


def build_ger_kernels() -> List[Kernel]:
    """Outer products ``x y^T`` (and the already-row-shaped variant)."""
    kernels = []
    variants = [
        ("ger_nt", "N", "T", (helpers.column_vector("X"), helpers.column_vector("Y"))),
        ("ger_nn", "N", "N", (helpers.column_vector("X"), helpers.row_vector("Y"))),
    ]
    for kernel_id, left, right, constraints in variants:

        def cost(substitution: Substitution, left=left, right=right) -> float:
            m, _, n = helpers.product_dims(substitution, left, right)
            return flops.ger(m, n)

        kernels.append(
            Kernel(
                id=kernel_id,
                display_name="GER",
                pattern=Pattern(
                    helpers.binary_pattern(left, right)[0],
                    constraints=constraints,
                    name=kernel_id.upper(),
                ),
                operands=("X", "Y"),
                cost=cost,
                efficiency=EFFICIENCY["GER"],
                runtime="product",
                julia_template="ger!(1.0, {X}, {Y}, {out})",
                numpy_template=(
                    "{out} = " + _np_operand("{X}", left) + " @ " + _np_operand("{Y}", right)
                ),
                level=2,
                description="outer product of two vectors",
                flags={"left_op": left, "right_op": right, "structure": "general"},
            )
        )
    return kernels


def build_dot_kernels() -> List[Kernel]:
    """Inner products ``x^T y``."""
    kernels = []
    variants = [
        ("dot_t", "T", "N", (helpers.column_vector("X"), helpers.column_vector("Y"))),
        ("dot_n", "N", "N", (helpers.row_vector("X"), helpers.column_vector("Y"))),
    ]
    for kernel_id, left, right, constraints in variants:

        def cost(substitution: Substitution, left=left, right=right) -> float:
            _, k, _ = helpers.product_dims(substitution, left, right)
            return flops.dot(k)

        kernels.append(
            Kernel(
                id=kernel_id,
                display_name="DOT",
                pattern=Pattern(
                    helpers.binary_pattern(left, right)[0],
                    constraints=constraints,
                    name=kernel_id.upper(),
                ),
                operands=("X", "Y"),
                cost=cost,
                efficiency=EFFICIENCY["DOT"],
                runtime="product",
                julia_template="{out} = dot({X}, {Y})",
                numpy_template=(
                    "{out} = " + _np_operand("{X}", left) + " @ " + _np_operand("{Y}", right)
                ),
                level=1,
                description="inner product of two vectors",
                flags={"left_op": left, "right_op": right, "structure": "general"},
            )
        )
    return kernels


def build_scal_kernels() -> List[Kernel]:
    """Multiplication by a 1x1 operand (scalar intermediate results)."""
    kernels = []
    variants = [
        ("scal_left", "N", "N", (helpers.scalar("X"),)),
        ("scal_right", "N", "N", (helpers.scalar("Y"), helpers.not_scalar("X"))),
        ("scal_right_t", "T", "N", (helpers.scalar("Y"), helpers.not_scalar("X"))),
        ("scal_left_t", "N", "T", (helpers.scalar("X"), helpers.not_scalar("Y"))),
    ]
    for kernel_id, left, right, constraints in variants:

        def cost(substitution: Substitution, kernel_id=kernel_id, left=left, right=right) -> float:
            m, k, n = helpers.product_dims(substitution, left, right)
            if "left" in kernel_id:
                return flops.scalmm(k, n)
            return flops.scalmm(m, k)

        kernels.append(
            Kernel(
                id=kernel_id,
                display_name="SCAL",
                pattern=Pattern(
                    helpers.binary_pattern(left, right)[0],
                    constraints=constraints,
                    name=kernel_id.upper(),
                ),
                operands=("X", "Y"),
                cost=cost,
                efficiency=EFFICIENCY["SCALMM"],
                runtime="product",
                julia_template="{out} = {X} .* {Y}",
                numpy_template=(
                    "{out} = " + _np_operand("{X}", left) + " @ " + _np_operand("{Y}", right)
                ),
                level=1,
                description="multiplication by a 1x1 (scalar) operand",
                flags={"left_op": left, "right_op": right, "structure": "general"},
            )
        )
    return kernels


def build_multiplication_kernels() -> List[Kernel]:
    """All BLAS-style multiplication kernels of the default catalog."""
    kernels: List[Kernel] = []
    kernels.extend(build_gemm_kernels())
    kernels.extend(build_trmm_kernels())
    kernels.extend(build_symm_kernels())
    kernels.extend(build_syrk_kernels())
    kernels.extend(build_diagmm_kernels())
    kernels.extend(build_gemv_kernels())
    kernels.extend(build_gevm_kernels())
    kernels.extend(build_ger_kernels())
    kernels.extend(build_dot_kernels())
    kernels.extend(build_scal_kernels())
    return kernels

"""Floating-point operation counts for the kernels in the catalog.

The formulas follow the conventions of the paper (Table 1 and footnote 2):

* a general matrix-matrix product of an ``m x k`` by a ``k x n`` matrix costs
  ``2 m n k`` FLOPs;
* kernels that exploit triangular or symmetric structure (TRMM, SYMM, TRSM,
  SYRK) perform half the scalar operations of the general product;
* factorization-based solves are costed as factorization plus triangular
  solves (e.g. Cholesky ``m^3 / 3`` plus two ``m^2 n`` solves for POSV).

All functions return ``float`` so that they can be combined freely with the
cost-metric framework (including infinities for "not computable").
"""

from __future__ import annotations


def gemm(m: int, n: int, k: int) -> float:
    """General matrix-matrix product ``C(m x n) := A(m x k) B(k x n)``."""
    return 2.0 * m * n * k


def trmm(m: int, n: int) -> float:
    """Triangular ``A(m x m)`` times general ``B(m x n)`` (either side)."""
    return float(m) * m * n


def symm(m: int, n: int) -> float:
    """Symmetric ``A(m x m)`` times general ``B(m x n)``.

    The paper (Table 1, footnote 4) counts SYMM at half the scalar operations
    of GEMM because only one triangle of ``A`` is read.
    """
    return float(m) * m * n


def syrk(m: int, k: int) -> float:
    """Symmetric rank-k update ``C(m x m) := A^T(m x k') A`` -- ``m^2 k`` FLOPs."""
    return float(m) * m * k


def diagmm(m: int, n: int) -> float:
    """Diagonal times general matrix: one multiply per output entry."""
    return float(m) * n


def scalmm(m: int, n: int) -> float:
    """Scalar times matrix: one multiply per entry."""
    return float(m) * n


def gemv(m: int, n: int) -> float:
    """General matrix-vector product ``y := A(m x n) x``."""
    return 2.0 * m * n


def trmv(n: int) -> float:
    """Triangular matrix-vector product."""
    return float(n) * n


def symv(n: int) -> float:
    """Symmetric matrix-vector product (one triangle read)."""
    return float(n) * n


def diagmv(n: int) -> float:
    return float(n)


def ger(m: int, n: int) -> float:
    """Outer product ``A := x y^T`` -- one multiply per entry."""
    return float(m) * n


def dot(n: int) -> float:
    """Inner product of two length-``n`` vectors."""
    return 2.0 * n


def axpy(n: int) -> float:
    return 2.0 * n


# -- factorizations ---------------------------------------------------------

def cholesky(n: int) -> float:
    """Cholesky factorization of an SPD ``n x n`` matrix."""
    return (n ** 3) / 3.0


def lu(n: int) -> float:
    """LU factorization with partial pivoting of an ``n x n`` matrix."""
    return 2.0 * (n ** 3) / 3.0


def ldlt(n: int) -> float:
    """LDL^T factorization of a symmetric indefinite ``n x n`` matrix."""
    return (n ** 3) / 3.0


def trsm(m: int, n: int) -> float:
    """Triangular solve with ``n`` right-hand sides (``A`` is ``m x m``)."""
    return float(m) * m * n


def trsv(n: int) -> float:
    """Triangular solve with a single right-hand side."""
    return float(n) * n


def posv(n: int, nrhs: int) -> float:
    """Cholesky-based solve ``A^-1 B``: factorize plus two triangular solves."""
    return cholesky(n) + 2.0 * trsm(n, nrhs)


def sysv(n: int, nrhs: int) -> float:
    """LDL^T-based symmetric-indefinite solve."""
    return ldlt(n) + 2.0 * trsm(n, nrhs)


def gesv(n: int, nrhs: int) -> float:
    """LU-based general solve ``A^-1 B``."""
    return lu(n) + 2.0 * trsm(n, nrhs)


def posv_vector(n: int) -> float:
    return posv(n, 1)


def gesv_vector(n: int) -> float:
    return gesv(n, 1)


# -- explicit inversion -----------------------------------------------------

def getri(n: int) -> float:
    """Explicit inversion of a general matrix (LU + inverse): ``2 n^3``."""
    return 2.0 * (n ** 3)


def potri(n: int) -> float:
    """Explicit inversion of an SPD matrix via Cholesky."""
    return cholesky(n) + 2.0 * (n ** 3) / 3.0


def trtri(n: int) -> float:
    """Explicit inversion of a triangular matrix."""
    return (n ** 3) / 3.0


def diaginv(n: int) -> float:
    """Explicit inversion of a diagonal matrix."""
    return float(n)


def transpose_copy(m: int, n: int) -> float:
    """Explicit out-of-place transposition moves data but performs no FLOPs."""
    return 0.0

"""The kernel catalog: the set ``K`` of available kernels, with matching.

The catalog bundles a set of :class:`~repro.kernels.kernel.Kernel` objects
with a discrimination net over their patterns, so that the GMC algorithm's
``match(expr)`` step (paper Fig. 4, line 6) finds *all* applicable kernels
for a candidate sub-expression in one walk over the expression.

Two stock catalogs are provided:

* :func:`default_catalog` -- the full BLAS/LAPACK-style kernel set assumed by
  the paper: products and solves with optional transposition, specialized
  variants for triangular / symmetric / SPD / diagonal operands, vector
  kernels, explicit inversion, and (optionally) the composite
  ``A^-1 B^-1`` kernel of Section 5.
* :func:`mcp_catalog` -- a GEMM-only catalog, which reduces GMCP to the
  classic matrix chain problem of Section 2 (useful for testing the
  equivalence of the GMC algorithm and the textbook DP on plain chains).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..algebra.expression import Expression
from ..matching import match_cache as _match_cache
from ..matching.discrimination_net import DiscriminationNet
from ..matching.match_cache import MatchCache
from ..matching.patterns import Substitution
from . import blas, blas2, lapack
from .kernel import Kernel


class KernelCatalog:
    """An immutable collection of kernels with many-to-one matching."""

    def __init__(self, kernels: Iterable[Kernel], name: str = "catalog") -> None:
        self._kernels: Tuple[Kernel, ...] = tuple(kernels)
        self.name = name
        self._by_id: Dict[str, Kernel] = {}
        for kernel in self._kernels:
            if kernel.id in self._by_id:
                raise ValueError(f"duplicate kernel id {kernel.id!r}")
            self._by_id[kernel.id] = kernel
        self._net = DiscriminationNet(
            (kernel.pattern, kernel) for kernel in self._kernels
        )
        self._match_cache = MatchCache(self._net)

    # ------------------------------------------------------------ inspection
    @property
    def kernels(self) -> Tuple[Kernel, ...]:
        return self._kernels

    def __len__(self) -> int:
        return len(self._kernels)

    def __iter__(self) -> Iterator[Kernel]:
        return iter(self._kernels)

    def __contains__(self, kernel_id: str) -> bool:
        return kernel_id in self._by_id

    def by_id(self, kernel_id: str) -> Kernel:
        """Look a kernel up by its unique identifier."""
        return self._by_id[kernel_id]

    def by_family(self, display_name: str) -> List[Kernel]:
        """All kernels of a family (``"GEMM"``, ``"TRSM"``, ...)."""
        return [k for k in self._kernels if k.display_name == display_name]

    @property
    def families(self) -> List[str]:
        seen: List[str] = []
        for kernel in self._kernels:
            if kernel.display_name not in seen:
                seen.append(kernel.display_name)
        return seen

    # -------------------------------------------------------------- matching
    @property
    def net(self) -> DiscriminationNet:
        """The discrimination net over this catalog's patterns.

        Exposed for the cache layers that version-watch it (the match cache
        and the plan cache of :mod:`repro.persist`): ``net.version`` moves on
        every pattern insertion, which is their invalidation signal.
        """
        return self._net

    @property
    def match_cache(self) -> MatchCache:
        """The signature-keyed cache serving :meth:`match` (for stats/reset)."""
        return self._match_cache

    def match(
        self, expr: Expression, use_cache: bool = True
    ) -> List[Tuple[Kernel, Substitution]]:
        """Return every ``(kernel, substitution)`` pair whose pattern (and
        constraints) match *expr*.

        Served through the signature-keyed match cache: subjects whose
        shape/property signature was seen before reuse the kernel list and a
        re-bound substitution without walking the discrimination net (see
        :mod:`repro.matching.match_cache`, including the invalidation rules).
        ``use_cache=False`` bypasses the cache for this call -- the explicit,
        per-solver spelling of ``CompileOptions(match_cache=False)`` (the
        process-global ``match_caching_disabled()`` toggle also still
        applies, so the legacy context manager keeps working).
        """
        if use_cache and _match_cache._ENABLED:
            return self._match_cache.match(expr)
        results: List[Tuple[Kernel, Substitution]] = []
        for _, substitution, payload in self._net.match(expr):
            results.append((payload, substitution))
        return results

    def match_first(self, expr: Expression) -> Optional[Tuple[Kernel, Substitution]]:
        for _, substitution, payload in self._net.match(expr):
            return payload, substitution
        return None

    # ------------------------------------------------------------- extension
    def extended(self, extra: Sequence[Kernel], name: Optional[str] = None) -> "KernelCatalog":
        """Return a new catalog with additional kernels."""
        return KernelCatalog(self._kernels + tuple(extra), name=name or self.name)

    def restricted(self, families: Sequence[str], name: Optional[str] = None) -> "KernelCatalog":
        """Return a new catalog containing only the given kernel families."""
        wanted = set(families)
        kept = [k for k in self._kernels if k.display_name in wanted]
        return KernelCatalog(kept, name=name or f"{self.name}[{','.join(families)}]")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"KernelCatalog({self.name}, {len(self._kernels)} kernels)"


def build_default_kernels(
    include_combined_inverse: bool = True,
    include_specialized: bool = True,
) -> List[Kernel]:
    """Build the kernel list of the default catalog.

    Parameters
    ----------
    include_combined_inverse:
        Include the composite ``A^-1 B^-1`` kernel (GESV2).  Disabling it
        reproduces the completeness discussion of Section 3.4: chains such as
        ``A^-1 B^-1 C`` remain solvable through other parenthesizations,
        while the length-2 chain ``A^-1 B^-1`` becomes uncomputable.
    include_specialized:
        Include the property-specialized kernels (TRMM, SYMM, SYRK, DIAGMM,
        TRSM, POSV, SYSV, DIAGSV).  Disabling them leaves only the generic
        GEMM/GEMV/GESV/... kernels, which is useful for ablation studies of
        how much the property machinery contributes.
    """
    kernels: List[Kernel] = []
    specialized_families = {
        "TRMM",
        "SYMM",
        "SYRK",
        "DIAGMM",
        "TRSM",
        "POSV",
        "SYSV",
        "DIAGSV",
        "TRMV",
        "SYMV",
        "TRSV",
    }
    for kernel in blas.build_multiplication_kernels():
        if not include_specialized and kernel.display_name in specialized_families:
            continue
        kernels.append(kernel)
    for kernel in blas2.build_structured_vector_kernels():
        if not include_specialized and kernel.display_name in specialized_families:
            continue
        kernels.append(kernel)
    for kernel in lapack.build_solver_kernels(include_combined_inverse=include_combined_inverse):
        if not include_specialized and kernel.display_name in specialized_families:
            continue
        kernels.append(kernel)
    return kernels


def default_catalog(
    include_combined_inverse: bool = True,
    include_specialized: bool = True,
) -> KernelCatalog:
    """The full BLAS/LAPACK-style catalog the paper assumes (cached).

    The cache key is normalized before the ``lru_cache`` lookup, so
    ``default_catalog()``, ``default_catalog(True, True)`` and
    ``default_catalog(include_combined_inverse=True)`` all return the *same*
    object.  (``lru_cache`` keys raw call shapes, under which those three
    spellings are distinct -- each used to build its own duplicate catalog,
    fragmenting every cache keyed by kernel or catalog identity.)
    """
    return _default_catalog(bool(include_combined_inverse), bool(include_specialized))


@lru_cache(maxsize=8)
def _default_catalog(
    include_combined_inverse: bool,
    include_specialized: bool,
) -> KernelCatalog:
    suffix = []
    if not include_combined_inverse:
        suffix.append("no-gesv2")
    if not include_specialized:
        suffix.append("generic-only")
    name = "default" if not suffix else "default[" + ",".join(suffix) + "]"
    return KernelCatalog(
        build_default_kernels(
            include_combined_inverse=include_combined_inverse,
            include_specialized=include_specialized,
        ),
        name=name,
    )


#: Expose the underlying cache controls on the public wrapper.
default_catalog.cache_clear = _default_catalog.cache_clear  # type: ignore[attr-defined]
default_catalog.cache_info = _default_catalog.cache_info  # type: ignore[attr-defined]


@lru_cache(maxsize=1)
def mcp_catalog() -> KernelCatalog:
    """A GEMM-only catalog: reduces GMCP to the classic matrix chain problem."""
    return KernelCatalog(blas.build_gemm_kernels()[:1], name="mcp (GEMM only)")

"""Computational kernels: the set ``K`` of BLAS/LAPACK-style building blocks.

The kernel catalog provides, for every kernel: its syntactic pattern and
applicability constraints (Table 1 of the paper), a FLOP-count formula, an
efficiency figure used by the performance cost metric, code templates and
the name of the NumPy runtime routine that executes it.
"""

from . import flops
from .catalog import KernelCatalog, build_default_kernels, default_catalog, mcp_catalog
from .kernel import Kernel, KernelCall, Program

__all__ = [
    "Kernel",
    "KernelCall",
    "Program",
    "KernelCatalog",
    "default_catalog",
    "mcp_catalog",
    "build_default_kernels",
    "flops",
]

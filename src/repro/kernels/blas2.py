"""Structured BLAS level-2 kernels: TRMV, SYMV, TRSV.

These compute the same mathematical operations as the corresponding level-3
kernels with a single right-hand side (TRMM, SYMM, TRSM with ``n = 1``) and
therefore have identical FLOP counts; they exist as separate catalog entries
because real BLAS exposes them separately, because generated code should call
the vector routine when the operand is a vector, and because their efficiency
characteristics (memory-bound) differ from the level-3 routines.  The GMC
tie-breaking rule (prefer the more constrained kernel at equal cost) selects
them automatically whenever the right-hand side is a vector.
"""

from __future__ import annotations

from typing import List

from ..matching.patterns import Pattern, Substitution
from . import flops, helpers
from .kernel import Kernel

EFFICIENCY = {
    "TRMV": 0.06,
    "SYMV": 0.06,
    "TRSV": 0.05,
}


def build_trmv_kernels() -> List[Kernel]:
    """Triangular matrix times column vector."""
    kernels: List[Kernel] = []
    for uplo in ("lower", "upper"):
        for trans in ("N", "T"):
            pattern_expr, _, _ = helpers.binary_pattern(trans, "N")
            constraints = (
                helpers.triangular("X", uplo),
                helpers.not_diagonal("X"),
                helpers.column_vector("Y"),
            )

            def cost(substitution: Substitution, trans=trans) -> float:
                m, _ = helpers.operand_dims(substitution["X"], trans)
                return flops.trmv(m)

            uplo_char = "L" if uplo == "lower" else "U"
            kernels.append(
                Kernel(
                    id=f"trmv_{uplo}_{trans.lower()}",
                    display_name="TRMV",
                    pattern=Pattern(
                        pattern_expr, constraints=constraints, name=f"TRMV_{uplo}_{trans}"
                    ),
                    operands=("X", "Y"),
                    cost=cost,
                    efficiency=EFFICIENCY["TRMV"],
                    runtime="product",
                    julia_template=(
                        f"trmv!('{uplo_char}', '{trans}', 'N', {{X}}, {{Y}})"
                    ),
                    numpy_template=(
                        "{out} = " + ("{X}.T" if trans == "T" else "{X}") + " @ {Y}"
                    ),
                    level=2,
                    description="triangular matrix-vector product",
                    flags={
                        "left_op": trans,
                        "right_op": "N",
                        "structure": "triangular",
                        "side": "L",
                        "uplo": uplo,
                    },
                )
            )
    return kernels


def build_symv_kernels() -> List[Kernel]:
    """Symmetric matrix times column vector."""
    pattern_expr, _, _ = helpers.binary_pattern("N", "N")
    constraints = (
        helpers.symmetric("X"),
        helpers.not_diagonal("X"),
        helpers.column_vector("Y"),
    )

    def cost(substitution: Substitution) -> float:
        return flops.symv(substitution["X"].rows or 1)

    return [
        Kernel(
            id="symv",
            display_name="SYMV",
            pattern=Pattern(pattern_expr, constraints=constraints, name="SYMV"),
            operands=("X", "Y"),
            cost=cost,
            efficiency=EFFICIENCY["SYMV"],
            runtime="product",
            julia_template="symv!('L', 1.0, {X}, {Y}, 0.0, {out})",
            numpy_template="{out} = {X} @ {Y}",
            level=2,
            description="symmetric matrix-vector product",
            flags={"left_op": "N", "right_op": "N", "structure": "symmetric", "side": "L"},
        )
    ]


def build_trsv_kernels() -> List[Kernel]:
    """Triangular solve with a single right-hand side."""
    kernels: List[Kernel] = []
    for uplo in ("lower", "upper"):
        for code in ("I", "IT"):
            pattern_expr, _, _ = helpers.binary_pattern(code, "N")
            constraints = (
                helpers.triangular("X", uplo),
                helpers.not_diagonal("X"),
                helpers.column_vector("Y"),
            )

            def cost(substitution: Substitution) -> float:
                return flops.trsv(substitution["X"].rows or 1)

            uplo_char = "L" if uplo == "lower" else "U"
            trans_char = "T" if code == "IT" else "N"
            kernels.append(
                Kernel(
                    id=f"trsv_{uplo}_{code.lower()}",
                    display_name="TRSV",
                    pattern=Pattern(
                        pattern_expr, constraints=constraints, name=f"TRSV_{uplo}_{code}"
                    ),
                    operands=("X", "Y"),
                    cost=cost,
                    efficiency=EFFICIENCY["TRSV"],
                    runtime="solve",
                    julia_template=f"trsv!('{uplo_char}', '{trans_char}', 'N', {{X}}, {{Y}})",
                    numpy_template=(
                        "{out} = solve_triangular({X}, {Y}"
                        + (", transposed=True" if code == "IT" else "")
                        + ")"
                    ),
                    level=2,
                    description="triangular solve with a single right-hand side",
                    flags={
                        "left_op": code,
                        "right_op": "N",
                        "structure": "triangular",
                        "side": "L",
                        "uplo": uplo,
                    },
                )
            )
    return kernels


def build_structured_vector_kernels() -> List[Kernel]:
    """All structured level-2 kernels of the default catalog."""
    kernels: List[Kernel] = []
    kernels.extend(build_trmv_kernels())
    kernels.extend(build_symv_kernels())
    kernels.extend(build_trsv_kernels())
    return kernels

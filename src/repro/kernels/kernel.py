"""The :class:`Kernel` abstraction and :class:`KernelCall` program steps.

A *kernel* (paper Section 1.1) is an optimized routine for a well-defined
linear-algebra operation -- ``C := A * B``, ``C := A^-1 * B``, ``B := A^-1``
and so on -- as provided by BLAS and LAPACK.  For the GMC algorithm a kernel
is characterized by:

* a syntactic *pattern* with applicability *constraints* (Table 1), e.g.
  the TRMM pattern is ``X * Y`` with the constraint ``is_lower_triangular(X)``;
* a *cost* in FLOPs as a function of the matched operand sizes;
* an *efficiency* figure (fraction of machine peak it typically attains),
  which the performance cost metric of Section 3.3 uses to convert FLOPs
  into estimated execution time;
* code templates used by the code generators (Julia-flavoured BLAS calls as
  in Table 2, and NumPy statements);
* the name of the NumPy runtime routine that executes it.

A :class:`KernelCall` is one step of a generated program: a kernel applied to
concrete operands producing a named output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Optional, Sequence, Tuple

from ..algebra.expression import Expression, Matrix
from ..matching.patterns import Pattern, Substitution


#: Signature of a kernel cost function: maps the matched substitution to a
#: FLOP count.
CostFunction = Callable[[Substitution], float]

#: Signature of a memory-traffic function: maps the substitution to an
#: estimate of the number of matrix elements read plus written.
MemoryFunction = Callable[[Substitution], float]


def _default_memory(substitution: Substitution) -> float:
    total = 0.0
    for expr in substitution.values():
        rows = expr.rows or 0
        columns = expr.columns or 0
        total += rows * columns
    return total


@dataclass(frozen=True, eq=False)
class Kernel:
    """A computational kernel: pattern, constraints, cost and code templates.

    Parameters
    ----------
    id:
        Unique identifier, e.g. ``"gemm_nt"`` for GEMM with ``A * B^T``.
    display_name:
        The BLAS/LAPACK-style family name shown in reports, e.g. ``"GEMM"``.
    pattern:
        The :class:`~repro.matching.Pattern` this kernel computes.
    operands:
        Wildcard names in the order the kernel call expects them.
    cost:
        FLOP-count function of the matched substitution.
    efficiency:
        Fraction of machine peak this kernel typically achieves; used by the
        performance cost metric (Section 3.3).  Compute-bound BLAS-3 kernels
        are close to 1, memory-bound BLAS-1/2 kernels are far below.
    runtime:
        Name of the NumPy runtime routine implementing the kernel
        (see :mod:`repro.runtime.kernels_numpy`).
    julia_template / numpy_template:
        ``str.format`` templates over the operand wildcard names plus
        ``{out}``, used by the code generators.
    level:
        BLAS level (1, 2, 3) or the string ``"lapack"``.
    memory:
        Optional memory-traffic estimate; defaults to the sum of operand
        sizes.
    description:
        Human-readable summary used in the Table 1 reproduction.
    """

    id: str
    display_name: str
    pattern: Pattern
    operands: Tuple[str, ...]
    cost: CostFunction
    efficiency: float
    runtime: str
    julia_template: str
    numpy_template: str
    level: object = 3
    memory: Optional[MemoryFunction] = None
    description: str = ""
    #: Free-form routine flags (side, uplo, transposition, ...) consumed by the
    #: NumPy runtime and the code generators.
    flags: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0.0 < self.efficiency <= 1.0:
            raise ValueError(
                f"kernel {self.id}: efficiency must be in (0, 1], got {self.efficiency}"
            )
        missing = [name for name in self.operands if name not in self.pattern.wildcard_names]
        if missing:
            raise ValueError(
                f"kernel {self.id}: operands {missing} do not appear in the pattern"
            )

    # ------------------------------------------------------------------ cost
    def flops(self, substitution: Substitution) -> float:
        """FLOP count of this kernel for the matched operands."""
        return float(self.cost(substitution))

    def memory_traffic(self, substitution: Substitution) -> float:
        """Estimated number of matrix elements moved by this kernel."""
        if self.memory is not None:
            return float(self.memory(substitution))
        return _default_memory(substitution)

    # ---------------------------------------------------------------- codegen
    def render(self, template: str, names: Mapping[str, str], output: str) -> str:
        values = dict(names)
        values["out"] = output
        return template.format(**values)

    def julia_call(self, names: Mapping[str, str], output: str) -> str:
        """Render the Julia-flavoured call string (Table 2 style)."""
        return self.render(self.julia_template, names, output)

    def numpy_call(self, names: Mapping[str, str], output: str) -> str:
        """Render the NumPy statement for generated Python code."""
        return self.render(self.numpy_template, names, output)

    def __str__(self) -> str:
        return self.id

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Kernel({self.id})"


@dataclass
class KernelCall:
    """One step of a generated program: a kernel applied to bound operands.

    Attributes
    ----------
    kernel:
        The kernel being invoked.
    substitution:
        Binding of the kernel pattern's wildcards to operand expressions
        (leaves: input matrices or earlier temporaries).
    output:
        The operand (usually a :class:`~repro.algebra.expression.Temporary`)
        holding the result.
    expression:
        The symbolic expression this call computes (for reporting).
    flops / cost:
        FLOP count and metric cost of this call, filled in by whoever builds
        the program (the GMC algorithm or a baseline strategy).
    """

    kernel: Kernel
    substitution: Substitution
    output: Matrix
    expression: Optional[Expression] = None
    flops: float = 0.0
    cost: float = 0.0

    @property
    def operand_names(self) -> Dict[str, str]:
        """Map wildcard names to the names of the bound operands."""
        names: Dict[str, str] = {}
        for wildcard in self.kernel.operands:
            expr = self.substitution[wildcard]
            names[wildcard] = _operand_name(expr)
        return names

    def julia(self) -> str:
        return self.kernel.julia_call(self.operand_names, self.output.name)

    def numpy(self) -> str:
        return self.kernel.numpy_call(self.operand_names, self.output.name)

    def __str__(self) -> str:
        expr = f"  # {self.expression}" if self.expression is not None else ""
        return f"{self.output.name} := {self.kernel.display_name}({', '.join(self.operand_names.values())}){expr}"


def _operand_name(expr: Expression) -> str:
    """Best-effort name of a bound operand (leaf name, or the expression text)."""
    if isinstance(expr, Matrix):
        return expr.name
    leaf_names = [leaf.name for leaf in expr.leaves() if isinstance(leaf, Matrix)]
    if len(leaf_names) == 1:
        return leaf_names[0]
    return str(expr)


@dataclass
class Program:
    """A sequence of kernel calls computing a chain, plus bookkeeping.

    This is the output form of both the GMC algorithm and the baseline
    strategies; the code generators and the NumPy executor consume it.
    """

    calls: Sequence[KernelCall] = field(default_factory=list)
    output: Optional[Matrix] = None
    expression: Optional[Expression] = None
    strategy: str = ""

    @property
    def total_flops(self) -> float:
        return sum(call.flops for call in self.calls)

    @property
    def total_cost(self) -> float:
        return sum(call.cost for call in self.calls)

    @property
    def kernel_names(self) -> Tuple[str, ...]:
        return tuple(call.kernel.display_name for call in self.calls)

    def __len__(self) -> int:
        return len(self.calls)

    def __iter__(self):
        return iter(self.calls)

    def __str__(self) -> str:
        header = f"# strategy: {self.strategy}" if self.strategy else "# program"
        lines = [header]
        lines.extend(str(call) for call in self.calls)
        if self.output is not None:
            lines.append(f"# result in {self.output.name}")
        return "\n".join(lines)

"""Shared helpers for defining kernels: constraints, wrappers, dimensions.

The kernel definitions in :mod:`repro.kernels.blas` and
:mod:`repro.kernels.lapack` are generated programmatically (one kernel per
transposition/side/structure variant, like the real BLAS/LAPACK interfaces).
This module provides the small vocabulary those definitions are written in:

* substitution-level constraints (``lower("X")``, ``spd("X")``,
  ``column_vector("Y")``, ...);
* helpers to wrap a pattern wildcard in a unary operator chosen by a flag
  (``wrap(X, "T")`` gives ``X^T``);
* dimension extraction for binary product patterns, taking the wrappers into
  account, so that cost formulas can be written over ``(m, k, n)``.
"""

from __future__ import annotations

from typing import Callable, Tuple

from ..algebra.expression import Expression, Matrix
from ..algebra.inference import has_property
from ..algebra.operators import Inverse, InverseTranspose, Times, Transpose
from ..algebra.properties import Property
from ..matching.patterns import (
    Constraint,
    Substitution,
    Wildcard,
    structural_predicate,
)


@structural_predicate
def _is_operand(expr: Expression) -> bool:
    """Kernel operands must be actual leaves (matrices, vectors, temporaries),
    never compound sub-expressions: a GEMM pattern ``X * Y`` must not bind
    ``X`` to ``A^-1`` -- the inverse is not available as an explicit operand."""
    return isinstance(expr, Matrix)


def operand_wildcard(name: str) -> Wildcard:
    """A wildcard that only matches operand leaves."""
    return Wildcard(name, predicate=_is_operand)

# ---------------------------------------------------------------------------
# Wrapping pattern operands in unary operators
# ---------------------------------------------------------------------------

#: Operand wrapper codes: "N" (as is), "T" (transposed), "I" (inverted),
#: "IT" (inverse-transposed).  These name the sixteen binary-product variants
#: a kernel catalog has to cover for chains with transposed/inverted operands.
WRAPPERS = ("N", "T", "I", "IT")


def wrap(operand: Expression, code: str) -> Expression:
    """Wrap *operand* according to a wrapper code."""
    if code == "N":
        return operand
    if code == "T":
        return Transpose(operand)
    if code == "I":
        return Inverse(operand)
    if code == "IT":
        return InverseTranspose(operand)
    raise ValueError(f"unknown wrapper code {code!r}")


def is_transposed_code(code: str) -> bool:
    return code in ("T", "IT")


def is_inverted_code(code: str) -> bool:
    return code in ("I", "IT")


def binary_pattern(left_code: str, right_code: str) -> Tuple[Expression, Wildcard, Wildcard]:
    """Build the pattern ``f_left(X) * f_right(Y)`` and return it with its
    two wildcards (restricted to operand leaves)."""
    x = operand_wildcard("X")
    y = operand_wildcard("Y")
    return Times(wrap(x, left_code), wrap(y, right_code)), x, y


def unary_pattern(code: str) -> Tuple[Expression, Wildcard]:
    """Build the unary pattern ``f(X)`` for explicit inversion/transposition."""
    x = operand_wildcard("X")
    return wrap(x, code), x


# ---------------------------------------------------------------------------
# Dimension extraction
# ---------------------------------------------------------------------------

def operand_dims(expr: Expression, code: str) -> Tuple[int, int]:
    """Rows and columns of a bound operand *after* applying its wrapper."""
    rows = expr.rows or 1
    columns = expr.columns or 1
    if is_transposed_code(code):
        return columns, rows
    return rows, columns


def product_dims(
    substitution: Substitution, left_code: str, right_code: str
) -> Tuple[int, int, int]:
    """Return ``(m, k, n)`` for the product ``f_left(X)[m x k] * f_right(Y)[k x n]``."""
    m, k = operand_dims(substitution["X"], left_code)
    _, n = operand_dims(substitution["Y"], right_code)
    return m, k, n


# ---------------------------------------------------------------------------
# Constraints over substitutions
# ---------------------------------------------------------------------------

def _shape_constraint(name: str, predicate: Callable[[Expression], bool], text: str) -> Constraint:
    def check(substitution: Substitution) -> bool:
        expr = substitution.get(name)
        return expr is not None and predicate(expr)

    # Shape checks read only dimensions, which the signature captures.
    return Constraint(structural_predicate(check), f"{text}({name})")


def has(name: str, prop: Property) -> Constraint:
    """Constraint: the operand bound to *name* has property *prop*."""

    def check(substitution: Substitution) -> bool:
        expr = substitution.get(name)
        return expr is not None and has_property(expr, prop)

    # Property checks go through symbolic inference, which is a function of
    # structure + declared leaf properties (registry customization is
    # handled separately by the match cache's version watch / bypass).
    return Constraint(structural_predicate(check), f"is_{prop.value}({name})")


def lower(name: str) -> Constraint:
    return has(name, Property.LOWER_TRIANGULAR)


def upper(name: str) -> Constraint:
    return has(name, Property.UPPER_TRIANGULAR)


def triangular(name: str, uplo: str) -> Constraint:
    return lower(name) if uplo == "lower" else upper(name)


def symmetric(name: str) -> Constraint:
    return has(name, Property.SYMMETRIC)


def spd(name: str) -> Constraint:
    return has(name, Property.SPD)


def diagonal(name: str) -> Constraint:
    return has(name, Property.DIAGONAL)


def square(name: str) -> Constraint:
    return _shape_constraint(name, lambda e: e.is_square, "is_square")


def not_vector(name: str) -> Constraint:
    return _shape_constraint(
        name, lambda e: not e.is_vector and not e.is_scalar_shaped, "is_matrix"
    )


def column_vector(name: str) -> Constraint:
    return _shape_constraint(name, lambda e: e.is_column_vector, "is_column_vector")


def row_vector(name: str) -> Constraint:
    return _shape_constraint(name, lambda e: e.is_row_vector, "is_row_vector")


def vector(name: str) -> Constraint:
    return _shape_constraint(name, lambda e: e.is_vector, "is_vector")


def scalar(name: str) -> Constraint:
    return _shape_constraint(name, lambda e: e.is_scalar_shaped, "is_scalar")


def not_scalar(name: str) -> Constraint:
    return _shape_constraint(name, lambda e: not e.is_scalar_shaped, "is_not_scalar")


def not_diagonal(name: str) -> Constraint:
    def check(substitution: Substitution) -> bool:
        expr = substitution.get(name)
        return expr is not None and not has_property(expr, Property.DIAGONAL)

    return Constraint(structural_predicate(check), f"is_not_diagonal({name})")

"""The execution tier: compile -> standalone module -> run.

The paper's evaluation (Figs. 8/9) is about the *execution times* of
generated programs; this package makes the generated program a deployable
artifact and its execution a first-class, validated operation:

* :mod:`repro.exec.emitter` -- the ``module`` emitter
  (``result.emit("module")``): a solved plan, including multi-segment DAG
  programs stitched topologically, rendered as a self-contained importable
  Python module (inlined kernel helpers, NumPy baseline, optional
  numba-``@njit`` fast path probed at import);
* :mod:`repro.exec.loader` -- materializes emitted source to a temp
  module, imports it, runs it against operand payloads, and caches loaded
  modules by plan signature so repeat executions skip emit+import;
* :mod:`repro.exec.api` -- :class:`ExecuteRequest` /
  :class:`ExecuteResponse` and :func:`run_execute_request`, the shared
  execution path behind ``POST /execute`` and the CLI's ``--execute``:
  compile, emit, import, run, then validate numerics against
  :mod:`repro.runtime.reference` within tolerance.

Importing this package registers the ``module`` emitter in the
:mod:`repro.codegen` registry.  The API layer is exposed lazily (module
``__getattr__``) because it pulls in the service request model; the loader
and emitter import eagerly and cheaply.
"""

from . import loader as _loader  # noqa: F401  (establish the loader early)
from . import emitter as _emitter  # noqa: F401  (registers the emitter)
from .emitter import generate_module, plan_signature
from .loader import (
    LoadedModule,
    ModuleLoader,
    ModuleRunError,
    default_loader,
    execution_telemetry,
)

__all__ = [
    "generate_module",
    "plan_signature",
    "LoadedModule",
    "ModuleLoader",
    "ModuleRunError",
    "default_loader",
    "execution_telemetry",
    "ExecuteRequest",
    "ExecuteResponse",
    "run_execute_request",
]

#: API-layer names resolved lazily from :mod:`repro.exec.api` (PEP 562).
_API_NAMES = ("ExecuteRequest", "ExecuteResponse", "run_execute_request")


def __getattr__(name: str):
    if name in _API_NAMES:
        from . import api

        return getattr(api, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(_API_NAMES))

"""Materialize, import, cache and run emitted standalone modules.

The execution tier's loader: emitted module source (see
:mod:`repro.exec.emitter`) is written to a private temp directory, imported
through :mod:`importlib` under a unique module name, and cached by **plan
signature** -- repeat executions of a signature-equal plan skip emit and
import entirely and go straight to the loaded entrypoint.

This module deliberately imports nothing from the rest of ``repro`` (only
the stdlib and NumPy): it is the bottom of the execution tier's import
graph, which lets :mod:`repro.telemetry` report the ``execution`` layer
without creating an import cycle, and keeps the loader reusable for any
source text that follows the emitted-module protocol (module attributes
``ENTRYPOINT``, ``ARGUMENTS``, ``RESULT``, ``IMPLEMENTATION``).
"""

from __future__ import annotations

import hashlib
import importlib.util
import itertools
import os
import sys
import tempfile
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

import numpy as np

__all__ = [
    "ModuleRunError",
    "LoadedModule",
    "ModuleLoader",
    "default_loader",
    "ExecutionTelemetry",
    "execution_telemetry",
]

#: Default bound on cached loaded modules per loader.
DEFAULT_MAX_MODULES = 32

_MODULE_COUNTER = itertools.count()


class ModuleRunError(RuntimeError):
    """Raised when a loaded module cannot be run against an environment."""


@dataclass
class LoadedModule:
    """One imported emitted module, ready to execute.

    ``run`` binds an operand environment (name -> array) to the module's
    declared argument order, casts to contiguous float64 (what the numba
    fast path, when active, requires) and calls the entrypoint.
    """

    key: str
    module: object
    path: str

    @property
    def arguments(self) -> List[str]:
        return list(getattr(self.module, "ARGUMENTS", ()))

    @property
    def result(self) -> Optional[str]:
        return getattr(self.module, "RESULT", None)

    @property
    def implementation(self) -> str:
        """Which path the module selected at import: ``numba`` or ``numpy``."""
        return str(getattr(self.module, "IMPLEMENTATION", "numpy"))

    @property
    def entrypoint(self):
        name = getattr(self.module, "ENTRYPOINT", None)
        if not name or not hasattr(self.module, str(name)):
            raise ModuleRunError(
                f"module {self.path!r} declares no usable ENTRYPOINT"
            )
        return getattr(self.module, str(name))

    def run(self, environment: Mapping[str, np.ndarray]) -> np.ndarray:
        missing = [name for name in self.arguments if name not in environment]
        if missing:
            raise ModuleRunError(
                f"environment is missing operand value(s) {missing} required "
                f"by entrypoint {getattr(self.module, 'ENTRYPOINT', '?')!r}"
            )
        values = [
            np.ascontiguousarray(environment[name], dtype=np.float64)
            for name in self.arguments
        ]
        return self.entrypoint(*values)


class ModuleLoader:
    """An LRU cache of imported emitted modules, keyed by plan signature.

    ``lookup`` / ``load`` split the fast and slow paths so callers can time
    them separately: a hit returns the already-imported module (emit and
    import both skipped); a miss is followed by ``load(source, key)``, which
    materializes the source under the loader's temp directory and imports
    it.  Evicted entries are dropped from ``sys.modules`` and their source
    file removed.
    """

    def __init__(
        self,
        max_entries: int = DEFAULT_MAX_MODULES,
        directory: Optional[str] = None,
    ) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._directory = directory
        self._entries: "OrderedDict[str, LoadedModule]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------- directory
    @property
    def directory(self) -> str:
        if self._directory is None:
            self._directory = tempfile.mkdtemp(prefix="repro_exec_")
        return self._directory

    # ------------------------------------------------------------------ API
    def lookup(self, key: str) -> Optional[LoadedModule]:
        """The cached module for *key*, or ``None`` (counts hits/misses)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return entry
            self.misses += 1
            return None

    def load(self, source: str, key: str) -> LoadedModule:
        """Materialize *source*, import it, cache it under *key*.

        Idempotent per key: a concurrent or repeated load of an
        already-cached key returns the existing entry without re-importing.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                return entry
        digest = hashlib.sha256(key.encode("utf-8")).hexdigest()[:12]
        module_name = f"repro_exec_{digest}_{next(_MODULE_COUNTER)}"
        path = os.path.join(self.directory, f"{module_name}.py")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(source)
        spec = importlib.util.spec_from_file_location(module_name, path)
        if spec is None or spec.loader is None:
            raise ModuleRunError(f"cannot build an import spec for {path!r}")
        module = importlib.util.module_from_spec(spec)
        # Registered so the module's own (absolute) imports and any
        # dataclass/pickle machinery inside it resolve normally.
        sys.modules[module_name] = module
        try:
            spec.loader.exec_module(module)
        except BaseException:
            sys.modules.pop(module_name, None)
            raise
        entry = LoadedModule(key=key, module=module, path=path)
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None:  # lost a load race: keep the first
                self._entries.move_to_end(key)
                winner = existing
            else:
                self._entries[key] = entry
                winner = entry
                while len(self._entries) > self.max_entries:
                    _, evicted = self._entries.popitem(last=False)
                    self.evictions += 1
                    self._discard(evicted)
        if winner is not entry:
            self._discard(entry)
        return winner

    @staticmethod
    def _discard(entry: LoadedModule) -> None:
        module_name = getattr(entry.module, "__name__", None)
        if module_name:
            sys.modules.pop(module_name, None)
        try:
            os.unlink(entry.path)
        except OSError:
            pass

    def clear(self) -> None:
        """Drop every cached module (keeps the counters)."""
        with self._lock:
            entries = list(self._entries.values())
            self._entries.clear()
        for entry in entries:
            self._discard(entry)

    # ------------------------------------------------------------ telemetry
    def stats(self) -> Dict[str, object]:
        with self._lock:
            hits, misses = self.hits, self.misses
            total = hits + misses
            return {
                "layer": "module_cache",
                "size": len(self._entries),
                "max_entries": self.max_entries,
                "hits": hits,
                "misses": misses,
                "hit_rate": hits / total if total else 0.0,
                "evictions": self.evictions,
            }

    def reset_stats(self) -> None:
        with self._lock:
            self.hits = 0
            self.misses = 0
            self.evictions = 0


_DEFAULT_LOADER: Optional[ModuleLoader] = None
_DEFAULT_LOADER_LOCK = threading.Lock()


def default_loader() -> ModuleLoader:
    """The process-global module loader (lazily created)."""
    global _DEFAULT_LOADER
    if _DEFAULT_LOADER is None:
        with _DEFAULT_LOADER_LOCK:
            if _DEFAULT_LOADER is None:
                _DEFAULT_LOADER = ModuleLoader()
    return _DEFAULT_LOADER


class ExecutionTelemetry:
    """Process-wide execution counters, merged with the loader cache stats.

    Reported as the ``execution`` layer of :func:`repro.telemetry.snapshot`
    (uniform ``stats()`` / ``reset_stats()`` protocol): the default
    loader's module-cache hits/misses/evictions plus the run and
    validation counters the execution API records.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.runs = 0
        self.run_errors = 0
        self.validation_failures = 0

    def record_run(self, ok: bool = True) -> None:
        with self._lock:
            self.runs += 1
            if not ok:
                self.run_errors += 1

    def record_validation_failure(self) -> None:
        with self._lock:
            self.validation_failures += 1

    def stats(self) -> Dict[str, object]:
        cache = default_loader().stats()
        with self._lock:
            counters = {
                "runs": self.runs,
                "run_errors": self.run_errors,
                "validation_failures": self.validation_failures,
            }
        merged = {key: value for key, value in cache.items() if key != "layer"}
        merged.update(counters)
        merged["layer"] = "execution"
        return merged

    def reset_stats(self) -> None:
        with self._lock:
            self.runs = 0
            self.run_errors = 0
            self.validation_failures = 0
        default_loader().reset_stats()


_TELEMETRY: Optional[ExecutionTelemetry] = None
_TELEMETRY_LOCK = threading.Lock()


def execution_telemetry() -> ExecutionTelemetry:
    """The process-global execution telemetry (lazily created)."""
    global _TELEMETRY
    if _TELEMETRY is None:
        with _TELEMETRY_LOCK:
            if _TELEMETRY is None:
                _TELEMETRY = ExecutionTelemetry()
    return _TELEMETRY

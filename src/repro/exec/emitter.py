"""The ``module`` emitter: solved plans as standalone importable modules.

Renders a :class:`~repro.kernels.kernel.Program` -- typically the stitched
whole-DAG program of a :class:`~repro.frontend.compiler.CompilationResult`
-- as a self-contained Python module:

* the kernel helper routines the statements call are inlined verbatim
  (:mod:`repro.codegen.runtime_inline`), so the emitted source imports
  **nothing from repro** and runs in a fresh process with only NumPy (and
  SciPy, when a structured solver is inlined) on the path;
* a NumPy baseline implementation interprets exactly the statements the
  ``numpy`` emitter renders, so module output matches the interpreter
  (:class:`repro.runtime.executor.Executor`) bit for bit;
* an optional ``numba``-``@njit`` fast path is generated from the kernel
  runtime semantics (plain ``@`` / ``np.linalg`` forms with no scipy
  dependency), probed at import time against the baseline on small
  identity operands, and silently discarded when numba is absent or the
  probe disagrees -- the module degrades to the NumPy baseline;
* metadata constants (``ENTRYPOINT``, ``ARGUMENTS``, ``RESULT``,
  ``OPERANDS``, ``IMPLEMENTATION``) drive the loader/runner
  (:mod:`repro.exec.loader`) and make the module self-describing.

Registered in the :mod:`repro.codegen` emitter registry under the name
``"module"`` with ``stitched=True``: ``result.emit("module")`` renders the
whole DAG as ONE module instead of one function per segment.
"""

from __future__ import annotations

import hashlib
from typing import List, Optional

from ..algebra.expression import Matrix
from ..codegen.julia import _input_operands
from ..codegen.runtime_inline import helpers_used, render_helpers
from ..kernels.kernel import KernelCall, Program

__all__ = ["generate_module", "plan_signature"]

#: Inversion runtimes that all reduce to ``np.linalg.inv`` in the fast path.
_INVERT_RUNTIMES = ("invert", "invert_spd", "invert_triangular", "invert_diagonal")


def _module_operands(program: Program) -> List[Matrix]:
    """The emitted module's arguments: program inputs, plus the output
    operand itself for call-less alias programs (``X := A``)."""
    operands = list(_input_operands(program))
    names = {operand.name for operand in operands}
    produced = {call.output.name for call in program.calls}
    output = program.output
    if (
        isinstance(output, Matrix)
        and output.name not in names
        and output.name not in produced
    ):
        operands.append(output)
    return operands


def _numba_statement(call: KernelCall) -> Optional[str]:
    """A numba-nopython-safe statement computing *call*, or ``None``.

    Mirrors the dispatch semantics of
    :meth:`repro.runtime.executor.Executor.execute_call` kernel family by
    kernel family, but in plain ``@`` / ``np.linalg`` forms (no scipy, no
    structure-specialized helpers): mathematically identical, so the
    import-time probe against the NumPy baseline agrees to tolerance.
    """
    kernel = call.kernel
    flags = dict(kernel.flags)
    runtime = kernel.runtime
    names = call.operand_names
    out = call.output.name

    def wrapped(wildcard: str, code: str) -> Optional[str]:
        if code not in ("N", "T"):
            return None
        name = names[wildcard]
        return f"{name}.T" if code == "T" else name

    if runtime == "product":
        left = wrapped("X", str(flags.get("left_op", "N")))
        right = wrapped("Y", str(flags.get("right_op", "N")))
        if left is None or right is None:
            return None
        return f"{out} = {left} @ {right}"
    if runtime == "syrk":
        operand = names["X"]
        if str(flags.get("trans", "T")) == "T":
            return f"{out} = {operand}.T @ {operand}"
        return f"{out} = {operand} @ {operand}.T"
    if runtime == "solve":
        side = str(flags.get("side", "L"))
        left_op = str(flags.get("left_op", "N"))
        right_op = str(flags.get("right_op", "N"))
        if side == "L":
            coefficient = names["X"]
            system = f"{coefficient}.T" if left_op == "IT" else coefficient
            rhs = wrapped("Y", right_op)
            if rhs is None:
                return None
            return f"{out} = np.linalg.solve({system}, {rhs})"
        # Right-side solve X * C^-1: solve(C^T z^T = X^T), transpose back
        # (exactly lu_solve(..., side="R") in the runtime).
        coefficient = names["Y"]
        system_t = coefficient if right_op == "IT" else f"{coefficient}.T"
        if left_op not in ("N", "T"):
            return None
        rhs_t = names["X"] if left_op == "T" else f"{names['X']}.T"
        return f"{out} = np.linalg.solve({system_t}, {rhs_t}).T"
    if runtime == "solve_both":
        left = names["X"]
        right = names["Y"]
        left_system = f"{left}.T" if str(flags.get("left_op", "I")) == "IT" else left
        right_expr = f"{right}.T" if str(flags.get("right_op", "I")) == "IT" else right
        return f"{out} = np.linalg.solve({left_system}, np.linalg.inv({right_expr}))"
    if runtime in _INVERT_RUNTIMES:
        operand = names["X"]
        expr = f"{operand}.T" if str(flags.get("op", "I")) == "IT" else operand
        return f"{out} = np.linalg.inv({expr})"
    if runtime == "transpose":
        return f"{out} = np.ascontiguousarray({names['X']}.T)"
    return None


def _operand_metadata(operands: List[Matrix]) -> List[str]:
    lines = ["OPERANDS = {"]
    for operand in operands:
        properties = sorted(prop.name for prop in operand.properties)
        lines.append(
            f"    {operand.name!r}: {{'rows': {operand.rows}, "
            f"'columns': {operand.columns}, 'properties': {properties!r}}},"
        )
    lines.append("}")
    return lines


def _body_statements(calls, statements) -> List[str]:
    lines = []
    for call, statement in zip(calls, statements):
        comment = (
            f"  # {call.output.name} := {call.expression}" if call.expression else ""
        )
        lines.append(f"    {statement}{comment}")
    return lines


def generate_module(program: Program, function_name: str = "compute") -> str:
    """Render *program* as a self-contained importable Python module."""
    operands = _module_operands(program)
    arguments = [operand.name for operand in operands]
    signature = ", ".join(arguments)
    statements = [call.numpy() for call in program.calls]
    if program.output is not None:
        result_name = program.output.name
    elif program.calls:
        result_name = program.calls[-1].output.name
    elif arguments:
        result_name = arguments[0]
    else:
        raise ValueError("cannot emit a module for an empty program")

    helper_text, needs_scipy = render_helpers(helpers_used(statements))
    numba_statements = [_numba_statement(call) for call in program.calls]
    numba_viable = (
        bool(program.calls)
        and bool(operands)
        and all(statement is not None for statement in numba_statements)
    )
    baseline = f"_{function_name}_numpy"
    fast = f"_{function_name}_numba"

    expression = (
        f"``{result_name} := {program.expression}``"
        if program.expression is not None
        else f"kernel program for ``{result_name}``"
    )
    kernels = " -> ".join(call.kernel.display_name for call in program.calls) or "-"

    lines: List[str] = [
        '"""Standalone kernel program emitted by the repro execution tier.',
        "",
        f"Computes {expression}",
        f"via the kernel sequence {kernels}.",
        "",
        "Self-contained: the kernel helper routines are inlined, so this",
        "module needs only NumPy"
        + (" and SciPy" if needs_scipy else "")
        + " at run time -- no ``repro`` import.",
        "An optional numba fast path is probed at import and silently",
        "degrades to the NumPy baseline when numba is absent or the probe",
        "disagrees with the baseline.",
        '"""',
        "",
        "import numpy as np",
    ]
    if needs_scipy:
        lines.append("from scipy import linalg as scipy_linalg")
    lines += [
        "",
        f"ENTRYPOINT = {function_name!r}",
        f"ARGUMENTS = {tuple(arguments)!r}",
        f"RESULT = {result_name!r}",
    ]
    lines += _operand_metadata(operands)
    if helper_text:
        lines += ["", ""]
        lines.append(helper_text.rstrip("\n"))

    # ------------------------------------------------------ NumPy baseline
    lines += ["", ""]
    lines.append(f"def {baseline}({signature}):")
    if program.expression is not None:
        lines.append(f'    """Computes {program.expression} (NumPy baseline)."""')
    if program.calls:
        lines += _body_statements(program.calls, statements)
    lines.append(f"    return {result_name}")

    # ----------------------------------------------------- numba fast path
    lines += ["", ""]
    if numba_viable:
        dims = sorted({d for op in operands for d in (op.rows, op.columns)})
        dim_map = {dim: index + 2 for index, dim in enumerate(dims)}
        probe = ", ".join(
            f"np.eye({dim_map[op.rows]}, {dim_map[op.columns]})" for op in operands
        )
        if len(operands) == 1:
            probe += ","
        lines += [
            "NUMBA_IMPLEMENTATION = None",
            "try:",
            "    import numba as _numba",
            "",
            "    @_numba.njit(cache=False)",
            f"    def {fast}({signature}):",
        ]
        for statement in numba_statements:
            lines.append(f"        {statement}")
        lines += [
            f"        return {result_name}",
            "",
            "    # Probe: run both paths on small identity operands with the",
            "    # program's dimension structure; keep the fast path only when",
            "    # it compiles, runs and agrees with the baseline.",
            f"    _probe = ({probe})",
            f"    _expected = {baseline}(*_probe)",
            f"    _candidate = {fast}(*_probe)",
            "    if (",
            "        getattr(_candidate, 'shape', None) == _expected.shape",
            "        and np.allclose(_candidate, _expected, rtol=1e-6, atol=1e-8)",
            "    ):",
            f"        NUMBA_IMPLEMENTATION = {fast}",
            "except Exception:  # numba missing, nopython rejection, probe failure",
            "    NUMBA_IMPLEMENTATION = None",
        ]
    else:
        lines += [
            "# No numba fast path: the program has no kernel calls (or uses a",
            "# runtime with no nopython-safe rewrite); the baseline serves.",
            "NUMBA_IMPLEMENTATION = None",
        ]
    lines += [
        "",
        'IMPLEMENTATION = "numba" if NUMBA_IMPLEMENTATION is not None else "numpy"',
    ]

    # ----------------------------------------------------------- dispatcher
    lines += ["", ""]
    lines.append(f"def {function_name}({signature}):")
    lines.append(
        f'    """Compute {expression.strip("`")} '
        '(numba fast path when available)."""'
    )
    lines += [
        "    if NUMBA_IMPLEMENTATION is not None:",
        f"        return NUMBA_IMPLEMENTATION({signature})",
        f"    return {baseline}({signature})",
    ]
    return "\n".join(lines) + "\n"


def plan_signature(result) -> str:
    """A stable cache key for the emitted module of a solved plan.

    Accepts a :class:`~repro.frontend.compiler.CompilationResult` (hashed
    over its stitched program and last user target -- exactly what
    ``emit_stitched("module")`` renders) or a bare
    :class:`~repro.kernels.kernel.Program`.  Covers operand dimensions and
    properties as well as the kernel sequence: same kernels over different
    shapes must not share a module (the probe section and metadata
    differ).
    """
    if hasattr(result, "stitched_program"):
        program = result.stitched_program()
        targets = getattr(result, "targets", None) or []
        target = targets[-1] if targets else "program"
    else:
        program = result
        target = "program"
    # Intermediate outputs carry process-global temporary numbering (a
    # recompile of the same plan yields fresh ``tmpN`` names), so produced
    # names are canonicalized to their position in call order; declared
    # operand names stay verbatim -- they are the module's ARGUMENTS, and
    # modules with different argument names must not share a cache slot.
    arguments = {operand.name for operand in _module_operands(program)}
    canonical: dict = {}

    def rename(name: str) -> str:
        if name in arguments:
            return name
        return canonical.get(name, name)

    parts: List[str] = [f"target={target}"]
    for operand in _module_operands(program):
        properties = ",".join(sorted(prop.name for prop in operand.properties))
        parts.append(
            f"{operand.name}:{operand.rows}x{operand.columns}<{properties}>"
        )
    for index, call in enumerate(program.calls):
        names = call.operand_names
        bound = ",".join(f"{key}={rename(names[key])}" for key in sorted(names))
        out = call.output.name
        if out not in arguments and out not in canonical:
            canonical[out] = f"%{index}"
        parts.append(f"{call.kernel.id}({bound})->{rename(out)}")
    if program.output is not None:
        parts.append(f"output={rename(program.output.name)}")
    return hashlib.sha256("|".join(parts).encode("utf-8")).hexdigest()


# Self-registration: the bottom of this module runs after the registry
# machinery of repro.codegen exists (its bottom-of-module import of this
# module tolerates partial initialization), so ``result.emit("module")``,
# the CLI's ``--emit module`` and the service's ``emit`` option all resolve
# the execution tier's emitter through the one registry.
from ..codegen import register_emitter  # noqa: E402  (import cycle order)

register_emitter(
    "module",
    generate_module,
    lambda target: f"compute_{target.lower()}",
    stitched=True,
)

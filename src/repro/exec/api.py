"""Typed request/response model and shared path of the execution tier.

:class:`ExecuteRequest` wraps a :class:`~repro.service.api.CompileRequest`
(the problem and its pipeline options) with execution parameters: explicit
JSON operand payloads and/or a seed for property-respecting random
operands, the numerical tolerance, and the engine (emitted ``module``,
the ``interpreter``, or ``both`` cross-checked).

:func:`run_execute_request` is the single execution path shared by the
in-process executor, the pool workers behind ``POST /execute`` and the
CLI's ``--execute``: compile through a warm
:class:`~repro.frontend.compiler.Compiler` session, emit the stitched plan
as a standalone module (skipped on a module-cache hit), import it, run it
against the operand environment, and validate the numerics against the
direct reference evaluation (:mod:`repro.runtime.reference`) within
relative tolerance.  Every phase is timed separately
(``compile`` / ``emit`` / ``import`` / ``run`` / ``validate``); errors
never propagate -- they fold into an ``ok=False`` response naming the
failing ``phase``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..algebra.expression import Matrix
from ..frontend.compiler import CompilationResult, Compiler
from ..obs.logging import get_logger, log_rate_limited
from ..runtime.executor import Executor
from ..runtime.operands import random_environment
from ..runtime.reference import evaluate as reference_evaluate
from ..service.api import CompileRequest, RequestError
from .emitter import plan_signature
from .loader import ModuleLoader, default_loader, execution_telemetry

__all__ = [
    "ENGINES",
    "ExecuteRequest",
    "ExecuteResponse",
    "run_execute_request",
]

#: Supported execution engines: the emitted standalone module (default),
#: the kernel interpreter, or both with a cross-check.
ENGINES = ("module", "interpreter", "both")

#: Keys of the nested ``execute`` wire object.
_EXECUTE_KEYS = {"payloads", "seed", "rtol", "atol", "validate", "engine"}

_LOG = get_logger("exec.api")


@dataclass
class ExecuteRequest:
    """One compile-and-run problem.

    On the wire this is a :class:`~repro.service.api.CompileRequest` dict
    plus a nested ``"execute"`` object::

        {"source": "...", "options": {...},
         "execute": {"seed": 7, "rtol": 1e-6,
                     "payloads": {"A": [[...], ...]}}}

    ``payloads`` overrides the seeded random operands for the named
    subset (shape-checked against the declaration); ``engine`` selects
    ``module`` (default), ``interpreter`` or ``both`` (cross-checked);
    ``validate`` (default true) compares the result against the direct
    reference evaluation within ``rtol``/``atol``.
    """

    compile: CompileRequest = field(default_factory=CompileRequest)
    payloads: Optional[Dict[str, object]] = None
    seed: int = 0
    rtol: float = 1e-6
    atol: float = 1e-9
    validate_numerics: bool = True
    engine: str = "module"

    @property
    def request_id(self) -> str:
        return self.compile.request_id

    # ------------------------------------------------------------ validation
    def validate(self) -> None:
        """Raise :class:`~repro.service.api.RequestError` when malformed."""
        if not isinstance(self.compile, CompileRequest):
            raise RequestError("'compile' must be a CompileRequest")
        self.compile.validate()
        if self.engine not in ENGINES:
            raise RequestError(
                f"unknown engine {self.engine!r}; supported engines: {ENGINES}"
            )
        if self.payloads is not None and not isinstance(self.payloads, Mapping):
            raise RequestError("'payloads' must map operand names to arrays")
        try:
            self.seed = int(self.seed)
            self.rtol = float(self.rtol)
            self.atol = float(self.atol)
        except (TypeError, ValueError) as exc:
            raise RequestError(f"bad execute parameter: {exc}") from exc
        if self.rtol < 0 or self.atol < 0:
            raise RequestError("'rtol' and 'atol' must be non-negative")

    # ----------------------------------------------------------------- wire
    def to_dict(self) -> dict:
        payload = self.compile.to_dict()
        execute: dict = {
            "seed": self.seed,
            "rtol": self.rtol,
            "atol": self.atol,
            "validate": self.validate_numerics,
            "engine": self.engine,
        }
        if self.payloads is not None:
            execute["payloads"] = {
                name: np.asarray(value, dtype=float).tolist()
                for name, value in self.payloads.items()
            }
        payload["execute"] = execute
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping) -> "ExecuteRequest":
        if not isinstance(payload, Mapping):
            raise RequestError("request body must be a JSON object")
        data = dict(payload)
        execute = data.pop("execute", None) or {}
        if not isinstance(execute, Mapping):
            raise RequestError("'execute' must be a JSON object")
        unknown = set(execute) - _EXECUTE_KEYS
        if unknown:
            raise RequestError(f"unknown execute fields: {sorted(unknown)}")
        compile_request = CompileRequest.from_dict(data)
        request = cls(
            compile=compile_request,
            payloads=(
                dict(execute["payloads"]) if execute.get("payloads") else None
            ),
            seed=execute.get("seed", 0),
            rtol=execute.get("rtol", 1e-6),
            atol=execute.get("atol", 1e-9),
            validate_numerics=bool(execute.get("validate", True)),
            engine=str(execute.get("engine", "module")),
        )
        request.validate()
        return request


@dataclass
class ExecuteResponse:
    """The result of one :class:`ExecuteRequest`.

    ``results`` summarizes the program's final user target (shape, norms);
    ``validated`` / ``max_rel_error`` report the reference comparison;
    ``implementation`` is what actually ran (``numpy``, ``numba`` or
    ``interpreter``); ``timing`` carries the per-phase seconds.  On
    failure ``phase`` names where it happened (``compile`` / ``operands``
    / ``emit`` / ``import`` / ``run`` / ``validate``).
    """

    request_id: str
    ok: bool
    engine: str = "module"
    implementation: Optional[str] = None
    module_cache_hit: bool = False
    validated: Optional[bool] = None
    max_rel_error: Optional[float] = None
    engines_match: Optional[bool] = None
    results: List[dict] = field(default_factory=list)
    total_flops: float = 0.0
    error: Optional[str] = None
    phase: Optional[str] = None
    worker: Optional[int] = None
    timing: Dict[str, float] = field(default_factory=dict)
    #: Deep-profile payload of the compile phase when the request set
    #: ``options.profile`` (see :mod:`repro.obs.profile`).
    profile: Optional[dict] = None

    def explain(self) -> str:
        """Per-phase provenance report (compile/emit/import/run/validate
        timings, module-cache outcome, validation verdict); the execution
        counterpart of :meth:`CompilationResult.explain`."""
        from ..obs.explain import explain_execution

        return explain_execution(self)

    def to_dict(self) -> dict:
        payload = {
            "request_id": self.request_id,
            "ok": self.ok,
            "engine": self.engine,
            "implementation": self.implementation,
            "module_cache_hit": self.module_cache_hit,
            "validated": self.validated,
            "max_rel_error": self.max_rel_error,
            "engines_match": self.engines_match,
            "results": [dict(entry) for entry in self.results],
            "total_flops": self.total_flops,
            "error": self.error,
            "phase": self.phase,
            "worker": self.worker,
            "timing": dict(self.timing),
        }
        if self.profile is not None:
            payload["profile"] = dict(self.profile)
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping) -> "ExecuteResponse":
        return cls(
            request_id=payload["request_id"],
            ok=payload["ok"],
            engine=payload.get("engine", "module"),
            implementation=payload.get("implementation"),
            module_cache_hit=bool(payload.get("module_cache_hit", False)),
            validated=payload.get("validated"),
            max_rel_error=payload.get("max_rel_error"),
            engines_match=payload.get("engines_match"),
            results=[dict(entry) for entry in payload.get("results", ())],
            total_flops=payload.get("total_flops", 0.0),
            error=payload.get("error"),
            phase=payload.get("phase"),
            worker=payload.get("worker"),
            timing=dict(payload.get("timing", {})),
            profile=(
                dict(payload["profile"]) if payload.get("profile") else None
            ),
        )


# ---------------------------------------------------------------------------
# Execution path (shared by the service executors and the CLI).
# ---------------------------------------------------------------------------

def _summarize(target: str, value: np.ndarray) -> dict:
    array = np.asarray(value, dtype=float)
    rows = int(array.shape[0]) if array.ndim >= 1 else 1
    columns = int(array.shape[1]) if array.ndim >= 2 else 1
    return {
        "target": target,
        "rows": rows,
        "columns": columns,
        "fro_norm": float(np.linalg.norm(array)),
        "min": float(array.min()) if array.size else 0.0,
        "max": float(array.max()) if array.size else 0.0,
    }


def _reference_values(
    result: CompilationResult, environment: Mapping[str, np.ndarray]
) -> Dict[str, np.ndarray]:
    """Per-user-target reference values, evaluated segment by segment.

    Segments are dependency-ordered and later expressions reference
    earlier segments' result operands, so each segment's value is bound
    into the growing environment under both its result-operand name and
    its target before the next is evaluated.
    """
    env = dict(environment)
    values: Dict[str, np.ndarray] = {}
    for compiled in result.assignments:
        value = reference_evaluate(compiled.expression, env)
        if isinstance(compiled.result_operand, Matrix):
            env[compiled.result_operand.name] = value
        env[compiled.target] = value
        if not compiled.synthetic:
            values[compiled.target] = value
    return values


def _compare(
    candidate: np.ndarray, reference: np.ndarray, rtol: float, atol: float
) -> Tuple[bool, float]:
    """``(agrees, max_rel_error)`` in the scale-aware style of
    :func:`repro.runtime.reference.allclose`."""
    candidate = np.asarray(candidate, dtype=float)
    reference = np.asarray(reference, dtype=float)
    if reference.shape != candidate.shape:
        if reference.size == candidate.size:
            reference = reference.reshape(candidate.shape)
        else:
            return False, float("inf")
    scale = max(1.0, float(np.max(np.abs(reference)))) if reference.size else 1.0
    error = (
        float(np.max(np.abs(candidate - reference))) / scale
        if reference.size
        else 0.0
    )
    agrees = bool(np.allclose(reference, candidate, rtol=rtol, atol=atol * scale))
    return agrees, error


def run_execute_request(
    request: ExecuteRequest,
    compiler: Optional[Compiler] = None,
    worker: Optional[int] = None,
    loader: Optional[ModuleLoader] = None,
) -> ExecuteResponse:
    """Compile, emit, import, run and validate one execute request.

    *compiler* is the executor's warm session (a throwaway one otherwise);
    *loader* the module cache (the process-global default otherwise).
    Never raises: failures fold into ``ok=False`` responses whose
    ``phase`` names the failing stage.
    """
    started = time.perf_counter()
    timing: Dict[str, float] = {}
    telemetry = execution_telemetry()
    phase = "request"
    try:
        request.validate()
        if compiler is None:
            compiler = Compiler()
        if loader is None:
            loader = default_loader()

        phase = "compile"
        t0 = time.perf_counter()
        profile: Optional[dict] = None
        if request.compile.options.profile:
            from ..obs.profile import profile_call, profile_payload

            result, profiler = profile_call(
                lambda: compiler.compile(
                    request.compile.to_source(), options=request.compile.options
                )
            )
            profile = profile_payload(profiler)
        else:
            result = compiler.compile(
                request.compile.to_source(), options=request.compile.options
            )
        if result.trace is not None:
            result.trace.request_id = request.request_id
        timing["compile_s"] = time.perf_counter() - t0
        targets = result.targets
        final_target = targets[-1] if targets else "program"

        phase = "operands"
        environment = random_environment(
            result, seed=request.seed, overrides=request.payloads
        )

        value: Optional[np.ndarray] = None
        implementation: Optional[str] = None
        cache_hit = False
        if request.engine in ("module", "both"):
            phase = "emit"
            key = plan_signature(result)
            loaded = loader.lookup(key)
            cache_hit = loaded is not None
            timing["emit_s"] = 0.0
            timing["import_s"] = 0.0
            if loaded is None:
                t0 = time.perf_counter()
                source = result.emit_stitched("module")
                timing["emit_s"] = time.perf_counter() - t0
                phase = "import"
                t0 = time.perf_counter()
                loaded = loader.load(source, key)
                timing["import_s"] = time.perf_counter() - t0
            phase = "run"
            t0 = time.perf_counter()
            try:
                value = loaded.run(environment)
            except Exception:
                telemetry.record_run(ok=False)
                raise
            timing["run_s"] = time.perf_counter() - t0
            telemetry.record_run(ok=True)
            implementation = loaded.implementation

        engines_match: Optional[bool] = None
        if request.engine in ("interpreter", "both"):
            phase = "run"
            program = result.stitched_program()
            t0 = time.perf_counter()
            try:
                interpreted = Executor().execute(program, environment)
            except Exception:
                telemetry.record_run(ok=False)
                raise
            timing["run_s"] = timing.get("run_s", 0.0) + (
                time.perf_counter() - t0
            )
            telemetry.record_run(ok=True)
            if request.engine == "interpreter":
                value = interpreted
                implementation = "interpreter"
            else:
                engines_match, divergence = _compare(
                    value, interpreted, request.rtol, request.atol
                )
                if not engines_match:
                    return ExecuteResponse(
                        request_id=request.request_id,
                        ok=False,
                        engine=request.engine,
                        implementation=implementation,
                        module_cache_hit=cache_hit,
                        engines_match=False,
                        max_rel_error=divergence,
                        total_flops=result.total_flops,
                        error=(
                            "module and interpreter engines diverged on "
                            f"{final_target!r} (max relative error "
                            f"{divergence:.3g})"
                        ),
                        phase="run",
                        worker=worker,
                        timing=dict(
                            timing,
                            total_s=time.perf_counter() - started,
                        ),
                    )

        validated: Optional[bool] = None
        max_rel_error: Optional[float] = None
        if request.validate_numerics:
            phase = "validate"
            t0 = time.perf_counter()
            references = _reference_values(result, environment)
            validated, max_rel_error = _compare(
                value, references[final_target], request.rtol, request.atol
            )
            timing["validate_s"] = time.perf_counter() - t0
            if not validated:
                telemetry.record_validation_failure()
                # Rate-limited: a client replaying a divergent request in
                # a loop must not storm the log (the swallowed count rides
                # on the next emitted line as suppressed_count).
                log_rate_limited(
                    _LOG,
                    "warning",
                    "execute validation failed",
                    request_id=request.request_id,
                    target=final_target,
                    engine=request.engine,
                    implementation=implementation,
                    max_rel_error=max_rel_error,
                    rtol=request.rtol,
                    seed=request.seed,
                )
                return ExecuteResponse(
                    request_id=request.request_id,
                    ok=False,
                    engine=request.engine,
                    implementation=implementation,
                    module_cache_hit=cache_hit,
                    validated=False,
                    max_rel_error=max_rel_error,
                    engines_match=engines_match,
                    results=[_summarize(final_target, value)],
                    total_flops=result.total_flops,
                    error=(
                        f"result for {final_target!r} diverges from the "
                        f"reference evaluation (max relative error "
                        f"{max_rel_error:.3g} > rtol {request.rtol:.3g})"
                    ),
                    phase="validate",
                    worker=worker,
                    timing=dict(timing, total_s=time.perf_counter() - started),
                )

        return ExecuteResponse(
            request_id=request.request_id,
            ok=True,
            engine=request.engine,
            implementation=implementation,
            module_cache_hit=cache_hit,
            validated=validated,
            max_rel_error=max_rel_error,
            engines_match=engines_match,
            results=[_summarize(final_target, value)],
            total_flops=result.total_flops,
            worker=worker,
            timing=dict(timing, total_s=time.perf_counter() - started),
            profile=profile,
        )
    except Exception as exc:  # noqa: BLE001 -- fold into the response
        return ExecuteResponse(
            request_id=request.request_id,
            ok=False,
            engine=request.engine,
            error=f"{type(exc).__name__}: {exc}",
            phase=phase,
            worker=worker,
            timing=dict(timing, total_s=time.perf_counter() - started),
        )

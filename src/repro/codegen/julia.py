"""Julia-flavoured code generation.

The paper's reference implementation emits Julia code that calls BLAS and
LAPACK wrappers (Section 4, Table 2).  This generator renders a
:class:`~repro.kernels.kernel.Program` in the same spirit: one in-place
BLAS/LAPACK-style call per kernel, wrapped in a function over the input
operands.  The exact Julia syntax of operand set-up is not reproduced (this
repository executes programs with the NumPy runtime instead); the generated
text is meant to be read, compared against Table 2, and embedded in reports.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..algebra.expression import Expression, Matrix
from ..kernels.kernel import KernelCall, Program


def _input_operands(program: Program) -> List[Matrix]:
    """The distinct leaf operands consumed by the program, in first-use order."""
    seen = {}
    produced = {call.output.name for call in program.calls}
    for call in program.calls:
        for expr in call.substitution.values():
            for leaf in expr.leaves():
                if isinstance(leaf, Matrix) and leaf.name not in produced:
                    seen.setdefault(leaf.name, leaf)
    return list(seen.values())


def generate_julia(program: Program, function_name: str = "compute") -> str:
    """Render a program as a Julia-like function."""
    operands = _input_operands(program)
    arguments = ", ".join(operand.name for operand in operands)
    lines: List[str] = []
    lines.append(f"function {function_name}({arguments})")
    if program.expression is not None:
        lines.append(f"    # computes {program.expression}")
    for call in program.calls:
        statement = call.julia()
        comment = f"  # {call.output.name} := {call.expression}" if call.expression else ""
        lines.append(f"    {statement}{comment}")
    if program.output is not None:
        lines.append(f"    return {program.output.name}")
    lines.append("end")
    return "\n".join(lines)


def julia_call_sequence(program: Program) -> List[str]:
    """Just the kernel call strings, one per program step (Table 2 style)."""
    return [call.julia() for call in program.calls]

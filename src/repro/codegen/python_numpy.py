"""NumPy code generation.

Renders a :class:`~repro.kernels.kernel.Program` as executable Python source
built on NumPy/SciPy.  The generated function takes the input operands as
keyword arguments and returns the chain result; the helper routines it calls
(``solve_triangular``, ``cholesky_solve``, ...) live in
:mod:`repro.runtime.kernels_numpy`, so generated code and the interpreter
share a single kernel implementation.
"""

from __future__ import annotations

from typing import List

from ..algebra.expression import Matrix
from ..kernels.kernel import Program
from .julia import _input_operands

_PREAMBLE = (
    "import numpy as np\n"
    "from repro.runtime.kernels_numpy import (\n"
    "    cholesky_solve, diagonal_solve, invert, invert_diagonal, invert_spd,\n"
    "    invert_triangular, lu_solve, solve_triangular, symmetric_solve,\n"
    ")\n"
)


def generate_numpy(program: Program, function_name: str = "compute") -> str:
    """Render a program as a Python function using NumPy/SciPy kernels."""
    operands = _input_operands(program)
    arguments = ", ".join(operand.name for operand in operands)
    lines: List[str] = [_PREAMBLE, ""]
    lines.append(f"def {function_name}({arguments}):")
    if program.expression is not None:
        lines.append(f'    """Computes {program.expression}."""')
    if not program.calls:
        output = program.output.name if program.output is not None else arguments
        lines.append(f"    return {output}")
        return "\n".join(lines)
    for call in program.calls:
        statement = call.numpy()
        comment = f"  # {call.output.name} := {call.expression}" if call.expression else ""
        lines.append(f"    {statement}{comment}")
    if program.output is not None:
        lines.append(f"    return {program.output.name}")
    return "\n".join(lines)


def numpy_statement_sequence(program: Program) -> List[str]:
    """Just the NumPy statements, one per program step."""
    return [call.numpy() for call in program.calls]

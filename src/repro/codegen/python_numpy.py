"""NumPy code generation.

Renders a :class:`~repro.kernels.kernel.Program` as executable Python source
built on NumPy/SciPy.  The generated function takes the input operands as
keyword arguments and returns the chain result; the helper routines it calls
(``solve_triangular``, ``cholesky_solve``, ...) are **inlined** into the
emitted source (:mod:`repro.codegen.runtime_inline`) -- extracted verbatim
from :mod:`repro.runtime.kernels_numpy`, so generated code and the
interpreter share a single kernel implementation while the generated source
stays standalone (no ``repro`` import required to run it).
"""

from __future__ import annotations

from typing import List

from ..algebra.expression import Matrix
from ..kernels.kernel import Program
from .julia import _input_operands
from .runtime_inline import standalone_preamble


def generate_numpy(program: Program, function_name: str = "compute") -> str:
    """Render a program as a standalone Python function using NumPy/SciPy."""
    operands = _input_operands(program)
    arguments = ", ".join(operand.name for operand in operands)
    statements = [call.numpy() for call in program.calls]
    lines: List[str] = [standalone_preamble(statements), ""]
    lines.append(f"def {function_name}({arguments}):")
    if program.expression is not None:
        lines.append(f'    """Computes {program.expression}."""')
    if not program.calls:
        output = program.output.name if program.output is not None else arguments
        lines.append(f"    return {output}")
        return "\n".join(lines)
    for call in program.calls:
        statement = call.numpy()
        comment = f"  # {call.output.name} := {call.expression}" if call.expression else ""
        lines.append(f"    {statement}{comment}")
    if program.output is not None:
        lines.append(f"    return {program.output.name}")
    return "\n".join(lines)


def numpy_statement_sequence(program: Program) -> List[str]:
    """Just the NumPy statements, one per program step."""
    return [call.numpy() for call in program.calls]

"""Self-contained rendering of the NumPy kernel helper routines.

Emitted Python code calls a handful of helper routines for the solve and
inversion kernels (``cholesky_solve``, ``lu_solve``, ...).  Those helpers
live in :mod:`repro.runtime.kernels_numpy`; importing them from there would
tie generated source to this repository being importable at run time.  To
keep emitted modules *standalone*, this module renders the helper
definitions themselves -- extracted verbatim from the runtime via
:func:`inspect.getsource`, so the interpreter, the emitters and the
generated code keep sharing a single kernel implementation -- and builds a
preamble that inlines exactly the helpers a statement sequence uses.
"""

from __future__ import annotations

import inspect
import re
from typing import Iterable, List, Tuple

from ..runtime import kernels_numpy

__all__ = [
    "HELPER_NAMES",
    "helpers_used",
    "render_helpers",
    "standalone_preamble",
]

#: Public helper routines emitted statements may call, in rendering order.
HELPER_NAMES: Tuple[str, ...] = (
    "solve_triangular",
    "cholesky_solve",
    "symmetric_solve",
    "lu_solve",
    "diagonal_solve",
    "invert",
    "invert_spd",
    "invert_triangular",
    "invert_diagonal",
)

#: Private prerequisites some helpers call; rendered first when referenced.
_PRIVATE_HELPERS: Tuple[str, ...] = ("_is_lower", "_as_matrix")

_IDENTIFIER = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")


def _source_of(name: str) -> str:
    return inspect.getsource(getattr(kernels_numpy, name))


def helpers_used(statements: Iterable[str]) -> List[str]:
    """The helper routines referenced by *statements*, in canonical order.

    Products, SYRK and transposes render as plain ``@``/``.T`` expressions;
    only the solve and inversion families call helpers, so a token scan of
    the rendered statements finds every dependency.
    """
    referenced = set()
    for statement in statements:
        referenced.update(_IDENTIFIER.findall(statement))
    return [name for name in HELPER_NAMES if name in referenced]


def render_helpers(names: Iterable[str]) -> Tuple[str, bool]:
    """Source text of the named helpers plus their private prerequisites.

    Returns ``(source, needs_scipy)``: the definitions in dependency order
    (private ``_is_lower``/``_as_matrix`` first), and whether any of them
    uses :mod:`scipy.linalg` (so the caller knows to import it).
    """
    requested = [name for name in HELPER_NAMES if name in set(names)]
    sources = [_source_of(name) for name in requested]
    needed_private = [
        private
        for private in _PRIVATE_HELPERS
        if any(private in source for source in sources)
    ]
    blocks = [_source_of(name) for name in needed_private] + sources
    text = "\n".join(block.rstrip("\n") + "\n" for block in blocks)
    needs_scipy = "scipy_linalg" in text
    return text, needs_scipy


def standalone_preamble(statements: Iterable[str]) -> str:
    """Imports plus inlined helper definitions making *statements*
    self-contained (no ``repro`` import in the emitted source)."""
    helper_text, needs_scipy = render_helpers(helpers_used(statements))
    lines = ["import numpy as np"]
    if needs_scipy:
        lines.append("from scipy import linalg as scipy_linalg")
    preamble = "\n".join(lines) + "\n"
    if helper_text:
        preamble += "\n\n" + helper_text
    return preamble

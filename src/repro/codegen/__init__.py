"""Code generation back-ends (Section 3.5 of the paper).

Programs produced by the GMC algorithm (or by a baseline strategy) can be
rendered either as Julia-flavoured BLAS/LAPACK call sequences -- the output
format of the paper's reference implementation, cf. Table 2 -- or as
executable Python/NumPy source.
"""

from .julia import generate_julia, julia_call_sequence
from .python_numpy import generate_numpy, numpy_statement_sequence

__all__ = [
    "generate_julia",
    "julia_call_sequence",
    "generate_numpy",
    "numpy_statement_sequence",
]

"""Code generation back-ends (Section 3.5 of the paper).

Programs produced by the GMC algorithm (or by a baseline strategy) can be
rendered either as Julia-flavoured BLAS/LAPACK call sequences -- the output
format of the paper's reference implementation, cf. Table 2 -- or as
executable Python/NumPy source.

Back-ends live in a name-keyed **emitter registry**: the built-in ``julia``
and ``numpy`` emitters are registered at import time, and third-party
back-ends join the same registry via :func:`register_emitter`.  Every layer
that emits code -- ``CompilationResult.emit``, the CLI's ``--emit`` flag,
the service's ``emit`` option -- resolves targets through this registry, so
a newly registered back-end is immediately usable from all of them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from ..kernels.kernel import Program
from .julia import generate_julia, julia_call_sequence
from .python_numpy import generate_numpy, numpy_statement_sequence

__all__ = [
    "Emitter",
    "register_emitter",
    "get_emitter",
    "available_emitters",
    "generate_julia",
    "julia_call_sequence",
    "generate_numpy",
    "numpy_statement_sequence",
]


@dataclass(frozen=True)
class Emitter:
    """One registered code-generation back-end.

    ``generate`` renders a :class:`~repro.kernels.kernel.Program` as source
    text (signature ``generate(program, function_name=...)``);
    ``function_name`` maps an assignment target to the emitted function's
    name, so each back-end keeps its own naming convention (Julia emits
    ``compute_X``, NumPy ``compute_x``).
    """

    name: str
    generate: Callable[..., str]
    function_name: Callable[[str], str]
    #: Whole-program back-ends (e.g. the ``module`` emitter of
    #: :mod:`repro.exec`) render ONE artifact for a multi-segment DAG:
    #: ``CompilationResult.emit`` routes them through the stitched program
    #: instead of concatenating per-segment functions.
    stitched: bool = False

    def emit(self, program: Program, target: str = "result") -> str:
        """Render *program* as a function named for assignment *target*."""
        return self.generate(program, function_name=self.function_name(target))


_EMITTERS: Dict[str, Emitter] = {}


def register_emitter(
    name: str,
    generate: Callable[..., str],
    function_name: Optional[Callable[[str], str]] = None,
    stitched: bool = False,
) -> Emitter:
    """Register (or replace) a code emitter under *name*.

    *generate* must accept ``(program, function_name=...)`` and return
    source text; *function_name* maps an assignment target to the function
    name (defaults to ``compute_<target>``).  *stitched* marks
    whole-program back-ends: ``CompilationResult.emit`` hands them the
    stitched DAG program instead of concatenating per-segment output.
    Returns the registered :class:`Emitter`, so third-party back-ends can
    do::

        register_emitter("mylang", render_mylang)
        result.emit("mylang")
    """
    if not name or not isinstance(name, str):
        raise ValueError(f"emitter name must be a non-empty string, got {name!r}")
    emitter = Emitter(
        name=name,
        generate=generate,
        function_name=function_name or (lambda target: f"compute_{target}"),
        stitched=stitched,
    )
    _EMITTERS[name] = emitter
    return emitter


def get_emitter(name: str) -> Emitter:
    """Look an emitter up by name; ``KeyError`` names the available ones."""
    try:
        return _EMITTERS[name]
    except KeyError:
        raise KeyError(
            f"no emitter {name!r}; registered emitters: {available_emitters()}"
        ) from None


def available_emitters() -> Tuple[str, ...]:
    """The registered emitter names, in registration order."""
    return tuple(_EMITTERS)


register_emitter("julia", generate_julia, lambda target: f"compute_{target}")
register_emitter("numpy", generate_numpy, lambda target: f"compute_{target.lower()}")

# The execution tier's ``module`` emitter registers itself at the bottom of
# repro.exec.emitter; importing the module here (for its side effect) keeps
# "module" available wherever the registry is -- the CLI's --emit choices,
# CompileOptions.validate, the service's emit option.  The *module object*
# import form tolerates the partial-initialization window when repro.exec
# is what triggered this package's import in the first place.
from ..exec import emitter as _module_emitter  # noqa: E402,F401

"""Typed request/response model of the compilation service.

The service front-ends (:mod:`repro.service.http`, the worker pool of
:mod:`repro.service.pool`, and the in-process executor used by tests) all
speak the same two dataclasses:

* :class:`CompileRequest` -- one compilation problem, given either as DSL
  source text (the Fig. 1/2 grammar of :mod:`repro.algebra.dsl`) or as a
  structured operand/assignment spec, plus one
  :class:`~repro.options.CompileOptions` value naming the pipeline options
  (solver, metric, emit targets, pruning, match-cache policy, deadline
  budget, cache sizing);
* :class:`CompileResponse` -- the per-assignment kernel sequences,
  parenthesizations, costs, optional generated code, and timing.

Both serialize to plain JSON-compatible dicts (``to_dict``/``from_dict``),
which is also the wire format between the pool parent and its worker
processes -- workers never unpickle custom classes, so the pool works under
every multiprocessing start method.  On the wire the options travel as a
nested ``"options"`` object (:meth:`CompileOptions.to_wire`); the pre-PR 4
flat fields (``metric``/``solver``/``emit``/``prune``/``use_match_cache``
at the top level) are still accepted with a :class:`DeprecationWarning`.

:func:`execute_request` is the single execution path shared by every
executor: it runs the request through a
:class:`~repro.frontend.compiler.Compiler` session -- the same class behind
:func:`repro.frontend.compile_source` and the CLI -- so service responses
are bit-identical to direct library calls (asserted in
``tests/test_service.py`` and by ``scripts/ci_service_check.py``).
"""

from __future__ import annotations

import time
import uuid
from dataclasses import InitVar, dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from ..algebra.dsl import parse_program
from ..algebra.expression import signature_repr
from ..frontend.compiler import Compiler
from ..obs.analytics import analytics_enabled, workload_analytics
from ..options import CompileOptions, warn_legacy, warn_legacy_wire

__all__ = [
    "RequestError",
    "CompileRequest",
    "AssignmentResult",
    "CompileResponse",
    "execute_request",
    "affinity_key",
]

#: Top-level keys of the current wire format.
_WIRE_KEYS = {"source", "operands", "assignments", "options", "request_id"}

#: Pre-PR 4 flat option keys, still accepted (deprecated) on the wire and
#: as constructor keywords.
_LEGACY_OPTION_KEYS = ("metric", "solver", "emit", "prune", "use_match_cache")


class RequestError(ValueError):
    """Raised when a request is malformed (maps to HTTP 400)."""


_SENTINEL = object()


@dataclass
class CompileRequest:
    """One compilation problem plus its pipeline options.

    Exactly one of ``source`` (DSL text) or ``operands``+``assignments``
    (structured spec) must be provided.  The structured spec is rendered to
    DSL text and parsed by the same parser, so both forms are equivalent:

    ``operands``
        maps operand name to ``{"rows": int, "columns": int,
        "properties": [str, ...]}`` (``columns`` defaults to ``rows``);
    ``assignments``
        a list of ``{"target": str, "expression": str}`` where the
        expression uses the Fig. 1 grammar (``A^-1 * B * C^T``).

    Multi-assignment DAG programs travel unchanged in either form: a later
    expression may reference an earlier target, and the response then
    carries one :class:`AssignmentResult` per chain *segment* -- user
    targets plus any ``synthetic`` segments the decomposition created.

    Pipeline options live in ``options`` (a
    :class:`~repro.options.CompileOptions`); the pre-PR 4 loose keywords
    (``metric=``, ``solver=``, ``emit=``, ``prune=``, ``use_match_cache=``)
    are accepted as a deprecated shim.
    """

    source: Optional[str] = None
    operands: Optional[Dict[str, dict]] = None
    assignments: Optional[List[dict]] = None
    options: CompileOptions = field(default_factory=CompileOptions)
    request_id: str = field(default_factory=lambda: uuid.uuid4().hex)
    # Deprecated loose keywords (PR 3 call-shape); folded into ``options``.
    metric: InitVar[object] = _SENTINEL
    solver: InitVar[object] = _SENTINEL
    emit: InitVar[object] = _SENTINEL
    prune: InitVar[object] = _SENTINEL
    use_match_cache: InitVar[object] = _SENTINEL

    def __post_init__(self, metric, solver, emit, prune, use_match_cache) -> None:
        legacy = {
            "metric": metric,
            "solver": solver,
            "emit": emit,
            "prune": prune,
            "match_cache": use_match_cache,
        }
        legacy = {key: value for key, value in legacy.items() if value is not _SENTINEL}
        if legacy:
            warn_legacy(
                "CompileRequest(metric=..., solver=..., emit=..., prune=..., "
                "use_match_cache=...)",
                "CompileRequest(options=CompileOptions(...))",
                stacklevel=4,
            )
            if "emit" in legacy:
                legacy["emit"] = tuple(legacy["emit"])
            self.options = self.options.replace(**legacy)

    # ------------------------------------------------------------ validation
    def validate(self) -> None:
        """Raise :class:`RequestError` on any malformed field."""
        if self.source is None and not (self.operands and self.assignments):
            raise RequestError(
                "request needs either 'source' or 'operands' + 'assignments'"
            )
        if self.source is not None and (self.operands or self.assignments):
            raise RequestError("'source' excludes 'operands'/'assignments'")
        if self.source is not None and not isinstance(self.source, str):
            raise RequestError("'source' must be a string of DSL text")
        if not isinstance(self.options, CompileOptions):
            raise RequestError("'options' must be a CompileOptions value")
        try:
            self.options.validate()
        except (TypeError, ValueError) as exc:
            raise RequestError(str(exc)) from exc

    # ------------------------------------------------------------- rendering
    def to_source(self) -> str:
        """The DSL text of this request (renders the structured spec)."""
        if self.source is not None:
            return self.source
        lines: List[str] = []
        for name, spec in (self.operands or {}).items():
            try:
                rows = int(spec["rows"])
                columns = int(spec.get("columns", rows))
            except (KeyError, TypeError, ValueError) as exc:
                raise RequestError(f"operand {name!r}: bad dimensions") from exc
            properties = ", ".join(spec.get("properties", ()))
            lines.append(f"Matrix {name} ({rows}, {columns}) <{properties}>")
        for assignment in self.assignments or ():
            try:
                lines.append(f"{assignment['target']} := {assignment['expression']}")
            except (KeyError, TypeError) as exc:
                raise RequestError(
                    "assignments need 'target' and 'expression' keys"
                ) from exc
        return "\n".join(lines) + "\n"

    # ----------------------------------------------------------------- wire
    def to_dict(self) -> dict:
        payload: dict = {
            "request_id": self.request_id,
            "options": self.options.to_wire(),
        }
        if self.source is not None:
            payload["source"] = self.source
        if self.operands is not None:
            payload["operands"] = self.operands
        if self.assignments is not None:
            payload["assignments"] = self.assignments
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping) -> "CompileRequest":
        if not isinstance(payload, Mapping):
            raise RequestError("request body must be a JSON object")
        unknown = set(payload) - _WIRE_KEYS - set(_LEGACY_OPTION_KEYS)
        if unknown:
            raise RequestError(f"unknown request fields: {sorted(unknown)}")
        legacy_present = [key for key in _LEGACY_OPTION_KEYS if key in payload]
        if legacy_present and "options" in payload:
            raise RequestError(
                f"flat option fields {legacy_present} cannot be combined with "
                f"a nested 'options' object"
            )
        try:
            if legacy_present:
                warn_legacy_wire(
                    "flat CompileRequest wire fields "
                    "(metric/solver/emit/prune/use_match_cache)",
                    "a nested 'options' object (CompileOptions.to_wire())",
                )
                options = CompileOptions(
                    metric=payload.get("metric", "flops"),
                    solver=payload.get("solver", "gmc"),
                    emit=tuple(payload.get("emit", ())),
                    prune=bool(payload.get("prune", True)),
                    match_cache=bool(payload.get("use_match_cache", True)),
                )
            elif "options" in payload:
                options = CompileOptions.from_wire(payload["options"])
            else:
                options = CompileOptions()
        except RequestError:
            raise
        except (TypeError, ValueError) as exc:
            raise RequestError(str(exc)) from exc
        request = cls(
            source=payload.get("source"),
            operands=payload.get("operands"),
            assignments=payload.get("assignments"),
            options=options,
            request_id=str(payload.get("request_id") or uuid.uuid4().hex),
        )
        request.validate()
        return request


@dataclass
class AssignmentResult:
    """The compilation result for one assignment of a request."""

    target: str
    expression: str
    kernels: List[str]
    parenthesization: str
    cost: float
    flops: float
    generation_time_s: float
    code: Dict[str, str] = field(default_factory=dict)
    #: ``False`` when the solver's per-request deadline expired and the
    #: plan is the best-so-far rather than the proven optimum.
    complete: bool = True
    #: ``True`` for segments the DAG decomposition created (extracted
    #: non-chain subtrees, shared subexpressions) rather than user
    #: assignments; their ``_sN`` targets are referenced by later entries.
    synthetic: bool = False

    def to_dict(self) -> dict:
        return {
            "target": self.target,
            "expression": self.expression,
            "kernels": list(self.kernels),
            "parenthesization": self.parenthesization,
            "cost": self.cost,
            "flops": self.flops,
            "generation_time_s": self.generation_time_s,
            "code": dict(self.code),
            "complete": self.complete,
            "synthetic": self.synthetic,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "AssignmentResult":
        return cls(
            target=payload["target"],
            expression=payload["expression"],
            kernels=list(payload["kernels"]),
            parenthesization=payload["parenthesization"],
            cost=payload["cost"],
            flops=payload["flops"],
            generation_time_s=payload["generation_time_s"],
            code=dict(payload.get("code", {})),
            complete=bool(payload.get("complete", True)),
            synthetic=bool(payload.get("synthetic", False)),
        )


@dataclass
class CompileResponse:
    """The result of one :class:`CompileRequest`."""

    request_id: str
    ok: bool
    assignments: List[AssignmentResult] = field(default_factory=list)
    total_flops: float = 0.0
    error: Optional[str] = None
    worker: Optional[int] = None
    timing: Dict[str, float] = field(default_factory=dict)
    #: Deep-profile payload when the request set ``options.profile``:
    #: ``{"top_functions": [...], "collapsed": "<flamegraph.pl text>"}``.
    profile: Optional[dict] = None

    def assignment(self, target: str) -> AssignmentResult:
        for result in self.assignments:
            if result.target == target:
                return result
        available = ", ".join(repr(r.target) for r in self.assignments) or "<none>"
        raise KeyError(f"no assignment {target!r}; available targets: {available}")

    @property
    def kernel_sequences(self) -> Dict[str, List[str]]:
        return {result.target: list(result.kernels) for result in self.assignments}

    def to_dict(self) -> dict:
        payload = {
            "request_id": self.request_id,
            "ok": self.ok,
            "assignments": [result.to_dict() for result in self.assignments],
            "total_flops": self.total_flops,
            "error": self.error,
            "worker": self.worker,
            "timing": dict(self.timing),
        }
        if self.profile is not None:
            payload["profile"] = dict(self.profile)
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping) -> "CompileResponse":
        return cls(
            request_id=payload["request_id"],
            ok=payload["ok"],
            assignments=[
                AssignmentResult.from_dict(entry)
                for entry in payload.get("assignments", ())
            ],
            total_flops=payload.get("total_flops", 0.0),
            error=payload.get("error"),
            worker=payload.get("worker"),
            timing=dict(payload.get("timing", {})),
            profile=(
                dict(payload["profile"]) if payload.get("profile") else None
            ),
        )


# ---------------------------------------------------------------------------
# Execution (shared by the in-process executor and the pool workers).
# ---------------------------------------------------------------------------

def execute_request(
    request: CompileRequest,
    catalog=None,
    metrics=None,
    worker: Optional[int] = None,
    *,
    compiler: Optional[Compiler] = None,
) -> CompileResponse:
    """Run *request* through a :class:`Compiler` session and respond.

    *compiler* (keyword-only) is the executor's warm session -- each pool
    worker holds one; omitting it runs on a throwaway session against the
    default catalog.  The positional parameters keep the pre-session
    signature ``(request, catalog, metrics, worker)``, so legacy callers
    bind exactly as before: *catalog*/*metrics* are the deprecated
    pre-session spelling and build an equivalent session (*metrics* becomes
    the session's live metric-instance cache, so the caller's name-keyed
    dict is reused -- and extended in place -- exactly as before).  Errors
    never propagate -- they are folded into an ``ok=False`` response so a
    malformed request cannot take down a worker.
    """
    started = time.perf_counter()
    try:
        if compiler is None and isinstance(catalog, Compiler):
            # Misplaced session: a Compiler in the catalog slot is a caller
            # mixing the two signatures; accept it rather than crash.
            compiler, catalog = catalog, None
        if compiler is None:
            if catalog is not None or metrics is not None:
                warn_legacy(
                    "execute_request(request, catalog=..., metrics=...)",
                    "execute_request(request, compiler=Compiler(...))",
                )
            compiler = Compiler(CompileOptions(catalog=catalog))
            if metrics is not None:
                compiler._metrics = metrics
        request.validate()
        source = request.to_source()
        parse_started = time.perf_counter()
        program = parse_program(source)
        parse_s = time.perf_counter() - parse_started

        solve_started = time.perf_counter()
        profile: Optional[dict] = None
        if request.options.profile:
            from ..obs.profile import profile_call, profile_payload

            compiled, profiler = profile_call(
                lambda: compiler.compile(program, options=request.options)
            )
            profile = profile_payload(profiler)
        else:
            compiled = compiler.compile(program, options=request.options)
        if getattr(compiled, "trace", None) is not None:
            # Tag the span tree with the service request id so exported
            # traces join with the structured log lines for this request.
            compiled.trace.request_id = request.request_id
        results: List[AssignmentResult] = []
        for entry in compiled:
            code = {name: entry.emit(name) for name in request.options.emit}
            try:
                cost = float(entry.solution.optimal_cost)  # type: ignore[arg-type]
            except (TypeError, ValueError):
                cost = float("nan")
            results.append(
                AssignmentResult(
                    target=entry.target,
                    expression=str(entry.expression),
                    kernels=list(entry.program.kernel_names),
                    parenthesization=entry.solution.parenthesization(),
                    cost=cost,
                    flops=entry.program.total_flops,
                    generation_time_s=getattr(entry.solution, "generation_time", 0.0),
                    code=code,
                    complete=bool(getattr(entry.solution, "complete", True)),
                    synthetic=bool(getattr(entry, "synthetic", False)),
                )
            )
        solve_s = time.perf_counter() - solve_started
        total_s = time.perf_counter() - started
        if analytics_enabled():
            # The heavy-hitter key is the request's name-abstracted
            # signature tuple -- the same value affinity_key() computes,
            # but read off the already-parsed program (no re-parse on the
            # hot path).  A request counts as a plan hit when no segment
            # needed a cold DP solve.
            signature = _request_signature(source, program)
            plan_hit = bool(compiled.assignments) and all(
                getattr(entry.solution, "from_plan_cache", False)
                or not entry.program.calls
                for entry in compiled
            )
            analytics = workload_analytics()
            analytics.record_request(
                signature, plan_hit=plan_hit, latency_s=total_s
            )
            analytics.observe_latencies(
                "compile_phase_latency_seconds",
                "phase",
                (("parse", parse_s), ("solve", solve_s)),
            )
        return CompileResponse(
            request_id=request.request_id,
            ok=True,
            assignments=results,
            total_flops=sum(result.flops for result in results),
            worker=worker,
            timing={
                "parse_s": parse_s,
                "solve_s": solve_s,
                "total_s": total_s,
            },
            profile=profile,
        )
    except Exception as exc:  # noqa: BLE001 -- fold into the response
        return CompileResponse(
            request_id=request.request_id,
            ok=False,
            error=f"{type(exc).__name__}: {exc}",
            worker=worker,
            timing={"total_s": time.perf_counter() - started},
        )


#: Source-text -> signature-string memo for the analytics hot path.  A
#: signature walk over a fresh parse tree costs ~10us; warm serve traffic
#: repeats identical request texts, so keying by the exact source makes
#: the per-request analytics cost a dict probe.  (Structurally similar
#: requests under fresh names miss here and pay the walk -- but those
#: requests also pay a full parse, so the relative cost stays negligible.)
#: Wholesale clear at capacity: the memo is tiny and refills in one warm
#: round trip, which beats per-entry LRU bookkeeping on every hit.
_SIGNATURE_MEMO: Dict[str, str] = {}
_SIGNATURE_MEMO_MAX = 4096


def _request_signature(source: str, program) -> str:
    signature = _SIGNATURE_MEMO.get(source)
    if signature is None:
        signature = signature_repr(
            tuple(expr.signature() for _, expr in program.assignments)
        )
        if len(_SIGNATURE_MEMO) >= _SIGNATURE_MEMO_MAX:
            _SIGNATURE_MEMO.clear()
        _SIGNATURE_MEMO[source] = signature
    return signature


def affinity_key(request: CompileRequest) -> str:
    """A stable key equal for structurally similar requests.

    Structurally similar chains (same shapes, properties and equality
    structure, arbitrary operand names) share their name-abstracted
    expression signatures, so routing by this key lands them on the worker
    whose signature-keyed match cache is already warm for them.  Requests
    that fail to parse fall back to their raw text (they will fail
    identically on any worker).

    This parses the request in the dispatching process (the worker parses
    again); that is deliberate -- parsing is orders of magnitude cheaper
    than solving, and no text-level normalization reproduces the
    name-abstracted signature the match cache is keyed by.  The parse
    touches the parent's interner/inference caches, both of which are
    bounded (LRU / oldest-chunk eviction), so front-end memory stays
    bounded too.
    """
    try:
        program = parse_program(request.to_source())
        return signature_repr(
            tuple(expr.signature() for _, expr in program.assignments)
        )
    except Exception:  # noqa: BLE001 -- unparseable: any worker will do
        return request.source or repr(
            (request.operands, request.assignments)
        )

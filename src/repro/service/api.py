"""Typed request/response model of the compilation service.

The service front-ends (:mod:`repro.service.http`, the worker pool of
:mod:`repro.service.pool`, and the in-process executor used by tests) all
speak the same two dataclasses:

* :class:`CompileRequest` -- one compilation problem, given either as DSL
  source text (the Fig. 1/2 grammar of :mod:`repro.algebra.dsl`) or as a
  structured operand/assignment spec, plus the pipeline options (cost
  metric, solver, codegen targets, pruning and match-cache toggles);
* :class:`CompileResponse` -- the per-assignment kernel sequences,
  parenthesizations, costs, optional generated code, and timing.

Both serialize to plain JSON-compatible dicts (``to_dict``/``from_dict``),
which is also the wire format between the pool parent and its worker
processes -- workers never unpickle custom classes, so the pool works under
every multiprocessing start method.

:func:`execute_request` is the single execution path shared by every
executor: it runs the same pipeline as
:func:`repro.frontend.compiler.compile_source`, so service responses are
bit-identical to direct library calls (asserted in ``tests/test_service.py``
and by ``scripts/ci_service_check.py``).
"""

from __future__ import annotations

import time
import uuid
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..algebra.dsl import ParseError, parse_program
from ..codegen.julia import generate_julia
from ..codegen.python_numpy import generate_numpy
from ..core.gmc import GMCAlgorithm
from ..core.topdown import TopDownGMC
from ..cost.metrics import CostMetric, resolve_metric
from ..kernels.catalog import KernelCatalog, default_catalog
from ..matching.match_cache import match_caching_disabled

__all__ = [
    "RequestError",
    "CompileRequest",
    "AssignmentResult",
    "CompileResponse",
    "execute_request",
    "affinity_key",
]

#: Codegen targets a request may ask for.
EMIT_TARGETS = ("julia", "numpy")

#: Solvers a request may select.
SOLVERS = ("gmc", "topdown")

#: Metric spellings accepted by :func:`repro.cost.metrics.resolve_metric`.
METRICS = ("flops", "time", "memory", "accuracy", "kernels")


class RequestError(ValueError):
    """Raised when a request is malformed (maps to HTTP 400)."""


@dataclass
class CompileRequest:
    """One compilation problem plus pipeline options.

    Exactly one of ``source`` (DSL text) or ``operands``+``assignments``
    (structured spec) must be provided.  The structured spec is rendered to
    DSL text and parsed by the same parser, so both forms are equivalent:

    ``operands``
        maps operand name to ``{"rows": int, "columns": int,
        "properties": [str, ...]}`` (``columns`` defaults to ``rows``);
    ``assignments``
        a list of ``{"target": str, "expression": str}`` where the
        expression uses the Fig. 1 grammar (``A^-1 * B * C^T``).
    """

    source: Optional[str] = None
    operands: Optional[Dict[str, dict]] = None
    assignments: Optional[List[dict]] = None
    metric: str = "flops"
    solver: str = "gmc"
    emit: Tuple[str, ...] = ()
    prune: bool = True
    use_match_cache: bool = True
    request_id: str = field(default_factory=lambda: uuid.uuid4().hex)

    # ------------------------------------------------------------ validation
    def validate(self) -> None:
        """Raise :class:`RequestError` on any malformed field."""
        if self.source is None and not (self.operands and self.assignments):
            raise RequestError(
                "request needs either 'source' or 'operands' + 'assignments'"
            )
        if self.source is not None and (self.operands or self.assignments):
            raise RequestError("'source' excludes 'operands'/'assignments'")
        if self.source is not None and not isinstance(self.source, str):
            raise RequestError("'source' must be a string of DSL text")
        if self.metric not in METRICS:
            raise RequestError(
                f"unknown metric {self.metric!r}; expected one of {METRICS}"
            )
        if self.solver not in SOLVERS:
            raise RequestError(
                f"unknown solver {self.solver!r}; expected one of {SOLVERS}"
            )
        for target in self.emit:
            if target not in EMIT_TARGETS:
                raise RequestError(
                    f"unknown emit target {target!r}; expected subset of {EMIT_TARGETS}"
                )

    # ------------------------------------------------------------- rendering
    def to_source(self) -> str:
        """The DSL text of this request (renders the structured spec)."""
        if self.source is not None:
            return self.source
        lines: List[str] = []
        for name, spec in (self.operands or {}).items():
            try:
                rows = int(spec["rows"])
                columns = int(spec.get("columns", rows))
            except (KeyError, TypeError, ValueError) as exc:
                raise RequestError(f"operand {name!r}: bad dimensions") from exc
            properties = ", ".join(spec.get("properties", ()))
            lines.append(f"Matrix {name} ({rows}, {columns}) <{properties}>")
        for assignment in self.assignments or ():
            try:
                lines.append(f"{assignment['target']} := {assignment['expression']}")
            except (KeyError, TypeError) as exc:
                raise RequestError(
                    "assignments need 'target' and 'expression' keys"
                ) from exc
        return "\n".join(lines) + "\n"

    # ----------------------------------------------------------------- wire
    def to_dict(self) -> dict:
        payload: dict = {
            "request_id": self.request_id,
            "metric": self.metric,
            "solver": self.solver,
            "emit": list(self.emit),
            "prune": self.prune,
            "use_match_cache": self.use_match_cache,
        }
        if self.source is not None:
            payload["source"] = self.source
        if self.operands is not None:
            payload["operands"] = self.operands
        if self.assignments is not None:
            payload["assignments"] = self.assignments
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping) -> "CompileRequest":
        if not isinstance(payload, Mapping):
            raise RequestError("request body must be a JSON object")
        known = {
            "source",
            "operands",
            "assignments",
            "metric",
            "solver",
            "emit",
            "prune",
            "use_match_cache",
            "request_id",
        }
        unknown = set(payload) - known
        if unknown:
            raise RequestError(f"unknown request fields: {sorted(unknown)}")
        request = cls(
            source=payload.get("source"),
            operands=payload.get("operands"),
            assignments=payload.get("assignments"),
            metric=payload.get("metric", "flops"),
            solver=payload.get("solver", "gmc"),
            emit=tuple(payload.get("emit", ())),
            prune=bool(payload.get("prune", True)),
            use_match_cache=bool(payload.get("use_match_cache", True)),
            request_id=str(payload.get("request_id") or uuid.uuid4().hex),
        )
        request.validate()
        return request


@dataclass
class AssignmentResult:
    """The compilation result for one assignment of a request."""

    target: str
    expression: str
    kernels: List[str]
    parenthesization: str
    cost: float
    flops: float
    generation_time_s: float
    code: Dict[str, str] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "target": self.target,
            "expression": self.expression,
            "kernels": list(self.kernels),
            "parenthesization": self.parenthesization,
            "cost": self.cost,
            "flops": self.flops,
            "generation_time_s": self.generation_time_s,
            "code": dict(self.code),
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "AssignmentResult":
        return cls(
            target=payload["target"],
            expression=payload["expression"],
            kernels=list(payload["kernels"]),
            parenthesization=payload["parenthesization"],
            cost=payload["cost"],
            flops=payload["flops"],
            generation_time_s=payload["generation_time_s"],
            code=dict(payload.get("code", {})),
        )


@dataclass
class CompileResponse:
    """The result of one :class:`CompileRequest`."""

    request_id: str
    ok: bool
    assignments: List[AssignmentResult] = field(default_factory=list)
    total_flops: float = 0.0
    error: Optional[str] = None
    worker: Optional[int] = None
    timing: Dict[str, float] = field(default_factory=dict)

    def assignment(self, target: str) -> AssignmentResult:
        for result in self.assignments:
            if result.target == target:
                return result
        raise KeyError(target)

    @property
    def kernel_sequences(self) -> Dict[str, List[str]]:
        return {result.target: list(result.kernels) for result in self.assignments}

    def to_dict(self) -> dict:
        return {
            "request_id": self.request_id,
            "ok": self.ok,
            "assignments": [result.to_dict() for result in self.assignments],
            "total_flops": self.total_flops,
            "error": self.error,
            "worker": self.worker,
            "timing": dict(self.timing),
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "CompileResponse":
        return cls(
            request_id=payload["request_id"],
            ok=payload["ok"],
            assignments=[
                AssignmentResult.from_dict(entry)
                for entry in payload.get("assignments", ())
            ],
            total_flops=payload.get("total_flops", 0.0),
            error=payload.get("error"),
            worker=payload.get("worker"),
            timing=dict(payload.get("timing", {})),
        )


# ---------------------------------------------------------------------------
# Execution (shared by the in-process executor and the pool workers).
# ---------------------------------------------------------------------------

def execute_request(
    request: CompileRequest,
    catalog: Optional[KernelCatalog] = None,
    metrics: Optional[Dict[str, CostMetric]] = None,
    worker: Optional[int] = None,
) -> CompileResponse:
    """Run the full pipeline on *request* and return its response.

    *metrics*, when given, is a per-executor cache of resolved
    :class:`CostMetric` instances keyed by metric name: reusing one instance
    across requests is what keeps the kernel-cost LRU warm, exactly like the
    interner, inference memo and match cache (which are process-global /
    catalog-owned and warm by construction).  Errors never propagate -- they
    are folded into an ``ok=False`` response so a malformed request cannot
    take down a worker.
    """
    started = time.perf_counter()
    try:
        request.validate()
        source = request.to_source()
        parse_started = time.perf_counter()
        program = parse_program(source)
        parse_s = time.perf_counter() - parse_started

        if metrics is not None:
            metric = metrics.get(request.metric)
            if metric is None:
                metric = metrics[request.metric] = resolve_metric(request.metric)
        else:
            metric = resolve_metric(request.metric)
        catalog = catalog if catalog is not None else default_catalog()
        solver_cls = GMCAlgorithm if request.solver == "gmc" else TopDownGMC
        solver = solver_cls(catalog=catalog, metric=metric, prune=request.prune)

        guard = nullcontext() if request.use_match_cache else match_caching_disabled()
        results: List[AssignmentResult] = []
        solve_started = time.perf_counter()
        with guard:
            for target, expression in program.assignments:
                solution = solver.solve(expression)
                kernel_program = solution.program(strategy_name=f"GMC[{target}]")
                code: Dict[str, str] = {}
                if "julia" in request.emit:
                    code["julia"] = generate_julia(
                        kernel_program, function_name=f"compute_{target}"
                    )
                if "numpy" in request.emit:
                    code["numpy"] = generate_numpy(
                        kernel_program, function_name=f"compute_{target.lower()}"
                    )
                try:
                    cost = float(solution.optimal_cost)  # type: ignore[arg-type]
                except (TypeError, ValueError):
                    cost = float("nan")
                results.append(
                    AssignmentResult(
                        target=target,
                        expression=str(expression),
                        kernels=list(kernel_program.kernel_names),
                        parenthesization=solution.parenthesization(),
                        cost=cost,
                        flops=kernel_program.total_flops,
                        generation_time_s=getattr(solution, "generation_time", 0.0),
                        code=code,
                    )
                )
        solve_s = time.perf_counter() - solve_started
        return CompileResponse(
            request_id=request.request_id,
            ok=True,
            assignments=results,
            total_flops=sum(result.flops for result in results),
            worker=worker,
            timing={
                "parse_s": parse_s,
                "solve_s": solve_s,
                "total_s": time.perf_counter() - started,
            },
        )
    except Exception as exc:  # noqa: BLE001 -- fold into the response
        return CompileResponse(
            request_id=request.request_id,
            ok=False,
            error=f"{type(exc).__name__}: {exc}",
            worker=worker,
            timing={"total_s": time.perf_counter() - started},
        )


def affinity_key(request: CompileRequest) -> str:
    """A stable key equal for structurally similar requests.

    Structurally similar chains (same shapes, properties and equality
    structure, arbitrary operand names) share their name-abstracted
    expression signatures, so routing by this key lands them on the worker
    whose signature-keyed match cache is already warm for them.  Requests
    that fail to parse fall back to their raw text (they will fail
    identically on any worker).

    This parses the request in the dispatching process (the worker parses
    again); that is deliberate -- parsing is orders of magnitude cheaper
    than solving, and no text-level normalization reproduces the
    name-abstracted signature the match cache is keyed by.  The parse
    touches the parent's interner/inference caches, both of which are
    bounded (LRU / oldest-chunk eviction), so front-end memory stays
    bounded too.
    """
    try:
        program = parse_program(request.to_source())
        return repr(tuple(expr.signature() for _, expr in program.assignments))
    except Exception:  # noqa: BLE001 -- unparseable: any worker will do
        return request.source or repr(
            (request.operands, request.assignments)
        )

"""The compilation service: batch/server front-end over the GMC compiler.

The paper frames the GMC algorithm as the chain-solving core of a compiler
that users query repeatedly with structurally similar problems.  This
package turns the per-process pipeline of :mod:`repro.frontend` into a
long-running, concurrent service:

* :mod:`repro.service.api` -- typed :class:`CompileRequest` /
  :class:`CompileResponse` model (JSON-dict wire format) and the shared
  execution path;
* :mod:`repro.service.pool` -- :class:`WorkerPool` of persistent
  warm-cache worker processes with signature-affinity routing and
  crash restart, plus the synchronous :class:`InProcessExecutor` fallback;
* :mod:`repro.service.http` -- stdlib HTTP front-end (``POST /compile``,
  ``POST /batch``, ``POST /execute``, ``GET /stats``, ``GET /healthz``),
  wired into the CLI as ``python -m repro.frontend --serve``;
* :mod:`repro.exec` -- the execution tier behind ``POST /execute``:
  standalone-module emitter, module loader/cache, and the
  :class:`~repro.exec.api.ExecuteRequest` /
  :class:`~repro.exec.api.ExecuteResponse` wire model;
* :mod:`repro.telemetry` -- unified snapshot/aggregation of the five cache
  layers (plan cache, match cache, interner, inference memo, kernel-cost
  LRU); it has no service dependencies and lives at the package root
  (``repro.service.telemetry`` remains as a compatibility alias);
* :mod:`repro.persist` -- plan-cache/match-cache snapshots backing warm
  worker boot (``--snapshot-dir`` / ``POST /snapshot``).
"""

from ..options import CompileOptions
from .api import (
    AssignmentResult,
    CompileRequest,
    CompileResponse,
    RequestError,
    affinity_key,
    execute_request,
)
from .pool import InProcessExecutor, PoolSaturatedError, WorkerPool, create_executor

__all__ = [
    "AssignmentResult",
    "CompileOptions",
    "CompileRequest",
    "CompileResponse",
    "PoolSaturatedError",
    "RequestError",
    "affinity_key",
    "execute_request",
    "InProcessExecutor",
    "WorkerPool",
    "create_executor",
]

"""Stdlib HTTP front-end of the compilation service (no new dependencies).

Endpoints (all JSON):

``POST /compile``
    body: one :class:`repro.service.api.CompileRequest` dict -- the problem
    (``source`` or ``operands``+``assignments``) plus a nested ``options``
    object (:meth:`repro.options.CompileOptions.to_wire`; the pre-PR 4 flat
    ``metric``/``solver``/... fields are still accepted with a
    ``DeprecationWarning``).  200 with a
    :class:`~repro.service.api.CompileResponse` dict on success; 400 when
    the request is malformed or the compilation fails (the body still
    carries the full ``ok=False`` response with its ``error`` field).
``POST /batch``
    body: ``{"requests": [<request>, ...]}``.  Always 200 when the batch is
    well-formed; per-request failures are flagged by ``ok`` inside
    ``{"responses": [...], "count": N, "failed": M}``.  When the executor's
    per-worker in-flight bound would be exceeded (backpressure), the whole
    batch -- and likewise a single ``/compile`` -- is rejected with ``429``
    and a ``Retry-After`` header instead of queueing without limit.
``POST /execute``
    body: a ``/compile`` request dict plus a nested ``execute`` object
    (:class:`repro.exec.api.ExecuteRequest`): compile the program AND run
    it through the execution tier -- emit the solved plan as a standalone
    module, import it, execute it against the supplied ``payloads`` (or
    seeded property-respecting random operands) and validate the numerics
    against the direct reference evaluation within ``rtol``.  200 with an
    :class:`~repro.exec.api.ExecuteResponse` dict on success; 400 with the
    full ``ok=False`` response (its ``phase`` names the failing stage) on
    compile/run/validation failure.  Per-phase latencies land in the
    ``repro_execute_phase_seconds`` histogram on ``/metrics``; validation
    failures increment ``repro_execute_validation_failures`` and emit one
    structured warning line.
``POST /profile``
    body: a ``/compile`` request dict; profiling is forced on
    (``options.profile = true``) and the response is ``text/plain``
    collapsed stacks (``frame;frame;frame count_µs`` lines) ready to pipe
    straight into ``flamegraph.pl``.  400 with the JSON ``ok=False``
    response when the compilation fails.
``POST /snapshot``
    persist the executor's cache state (plan cache + match cache) to the
    configured ``--snapshot-dir`` (:mod:`repro.persist.snapshot`); 200 with
    the write metadata, 409 when no snapshot directory is configured.
``GET /stats``
    pooled cache telemetry (see :mod:`repro.service.telemetry`): per-layer
    hit rates, occupancy and eviction counts, per worker and fleet-wide.
``GET /metrics``
    Prometheus text exposition (scrape with any Prometheus-compatible
    agent, or plain ``curl``): every pooled cache-telemetry layer as
    ``repro_<counter>{layer=...}`` gauges, the pool counters as
    ``repro_pool_*`` gauges and the per-endpoint request-latency
    histograms (``repro_request_latency_seconds``), plus streaming
    quantile series (``repro_*_latency_seconds{quantile="0.5|0.95|0.99"}``)
    rendered from the mergeable analytics sketches.
``GET /analytics``
    workload analytics (:mod:`repro.obs.analytics`): top-k heavy-hitter
    request signatures (Space-Saving sketch, merged across pool workers)
    with per-signature request counts, plan-hit rates and mean latencies,
    plus per-phase/per-endpoint latency quantile summaries.
``GET /timeseries``
    time-series ring buffers of key counters (requests, plan hits, 429
    rejections, validation failures) as ``[[unix_time, value], ...]``
    series at the configured resolution/retention.
``GET /healthz``
    liveness: pings every worker (restarting dead ones), 200 when all are
    alive, 503 when degraded.

Every response carries an ``X-Request-Id`` header (echoing the client's
header or the body's ``request_id`` when supplied, freshly generated
otherwise); the same id travels through the pool workers into the
response body and the structured access-log lines (one JSON line per
request through :mod:`repro.obs.logging`, silent unless the process
opted in via ``configure_logging``).

The server is a :class:`http.server.ThreadingHTTPServer`; concurrency comes
from the worker pool behind it (HTTP threads block on queue round-trips,
not on solves).  Start it from the command line via ``python -m
repro.frontend --serve`` or programmatically via :func:`start_server` (tests
use port 0 to get an ephemeral port).
"""

from __future__ import annotations

import json
import math
import threading
import time
import uuid
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple
from urllib.parse import urlparse

from ..obs.analytics import (
    analytics_enabled,
    analytics_report,
    merge_analytics_states,
    render_quantile_lines,
    service_analytics,
    timeseries_report,
)
from ..obs.logging import get_logger, log_rate_limited
from ..obs.metrics import render_prometheus, service_metrics
from .api import CompileRequest, RequestError
from .pool import PoolSaturatedError

__all__ = ["ServiceHTTPServer", "start_server", "run_server"]

#: Largest request body accepted, in bytes (guards the stdlib server
#: against unbounded reads; far above any realistic chain spec).
MAX_BODY_BYTES = 8 * 1024 * 1024

#: Endpoints that get their own latency-histogram label; anything else is
#: pooled under ``other`` so unknown paths cannot grow label cardinality.
_KNOWN_ENDPOINTS = frozenset(
    {
        "/healthz",
        "/stats",
        "/metrics",
        "/compile",
        "/batch",
        "/snapshot",
        "/execute",
        "/analytics",
        "/timeseries",
        "/profile",
    }
)

_LOG = get_logger("service.http")


class ServiceHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one executor."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int], executor) -> None:
        super().__init__(address, _ServiceRequestHandler)
        self.executor = executor


class _ServiceRequestHandler(BaseHTTPRequestHandler):
    server_version = "repro-compilation-service/1.0"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------- plumbing
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        # The stdlib's plain-text access log is replaced by one structured
        # JSON line per request (see _handle); silent unless the hosting
        # process opted in via repro.obs.configure_logging.
        pass

    def _send_json(
        self, status: int, payload: dict, extra_headers: Optional[dict] = None
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self._send_body(status, body, "application/json", extra_headers)

    def _send_text(
        self, status: int, text: str, content_type: str = "text/plain; charset=utf-8"
    ) -> None:
        self._send_body(status, text.encode("utf-8"), content_type, None)

    def _send_body(
        self,
        status: int,
        body: bytes,
        content_type: str,
        extra_headers: Optional[dict],
    ) -> None:
        self._status = status
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        request_id = getattr(self, "_request_id", None)
        if request_id is not None:
            self.send_header("X-Request-Id", request_id)
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> object:
        length = int(self.headers.get("Content-Length", 0) or 0)
        if length <= 0:
            raise RequestError("missing request body")
        if length > MAX_BODY_BYTES:
            # The oversized body is never read; close the keep-alive
            # connection after the 400 so the bytes cannot corrupt the
            # next request on the socket.
            self.close_connection = True
            raise RequestError(f"request body exceeds {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length)
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise RequestError(f"invalid JSON body: {exc}") from exc

    # ------------------------------------------------------------- handlers
    def do_GET(self) -> None:  # noqa: N802 -- stdlib naming
        self._handle("GET", self._handle_get)

    def do_POST(self) -> None:  # noqa: N802 -- stdlib naming
        self._handle("POST", self._handle_post)

    def _handle(self, method: str, inner) -> None:
        """Shared per-request envelope: request id, latency, access log.

        Every response echoes an ``X-Request-Id`` header (the client's, when
        supplied; a fresh one otherwise); every request lands one
        observation in the per-endpoint latency histogram ``/metrics``
        renders and one structured access-log line.
        """
        started = time.perf_counter()
        path = urlparse(self.path).path
        # The header id seeds request-id propagation; /compile replaces it
        # with the response's canonical id (which travels through the pool
        # workers on the request wire).
        self._request_id = self.headers.get("X-Request-Id") or uuid.uuid4().hex
        self._status: Optional[int] = None
        try:
            inner(path)
        finally:
            elapsed = time.perf_counter() - started
            endpoint = path if path in _KNOWN_ENDPOINTS else "other"
            service_metrics().histogram(
                "repro_request_latency_seconds",
                help_text="HTTP request latency by endpoint, in seconds",
                endpoint=endpoint,
                method=method,
            ).observe(elapsed)
            if analytics_enabled():
                # The quantile-sketch twin of the histogram above: true
                # p50/p95/p99 per endpoint rather than bucket edges.
                service_analytics().observe_latency(
                    "endpoint_latency_seconds", "endpoint", endpoint, elapsed
                )
            _LOG.info(
                "http request",
                extra={
                    "method": method,
                    "path": path,
                    "status": self._status,
                    "duration_ms": round(elapsed * 1e3, 3),
                    "request_id": self._request_id,
                },
            )

    def _handle_get(self, path: str) -> None:
        executor = self.server.executor
        try:
            if path == "/healthz":
                health = executor.ping()
                status = 200 if health.get("status") == "ok" else 503
                self._send_json(status, health)
            elif path == "/stats":
                self._send_json(200, executor.stats())
            elif path == "/metrics":
                self._send_text(200, self._render_metrics(executor))
            elif path == "/analytics":
                self._send_json(
                    200,
                    analytics_report(
                        self._pooled_analytics(executor),
                        service_analytics().state(),
                    ),
                )
            elif path == "/timeseries":
                merged = merge_analytics_states(
                    [self._pooled_analytics(executor), service_analytics().state()]
                )
                self._send_json(200, timeseries_report(merged))
            else:
                self._send_json(404, {"error": f"unknown path {path!r}"})
        except Exception as exc:  # noqa: BLE001 -- never drop the connection
            self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})

    @staticmethod
    def _pooled_analytics(executor) -> dict:
        """The fleet-wide ``analytics`` telemetry layer (merged sketches)."""
        stats = executor.stats()
        return (stats.get("caches") or {}).get("analytics") or {}

    def _render_metrics(self, executor) -> str:
        """The ``GET /metrics`` body: Prometheus text exposition of the
        pooled cache-telemetry layers, the pool counters, the HTTP latency
        histograms and the streaming-quantile latency series."""
        stats = executor.stats()
        gauges = {"service_workers": stats.get("workers", 0)}
        for key, value in (stats.get("pool") or {}).items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                gauges[f"pool_{key}"] = value
        body = render_prometheus(
            cache_layers=stats.get("caches") or {},
            registry=service_metrics(),
            extra_gauges=gauges,
        )
        # Quantile gauges use metric names of their own, so appending
        # keeps every metric's samples contiguous as the format requires.
        return body + render_quantile_lines(
            [
                (stats.get("caches") or {}).get("analytics"),
                service_analytics().state(),
            ]
        )

    def _observe_execution(self, response) -> None:
        """Per-phase latency histograms and validation-failure accounting
        for one ``/execute`` response."""
        metrics = service_metrics()
        for key, elapsed in (response.timing or {}).items():
            if not key.endswith("_s"):
                continue
            metrics.histogram(
                "repro_execute_phase_seconds",
                help_text="POST /execute latency by phase, in seconds",
                phase=key[:-2],
            ).observe(elapsed)
            if analytics_enabled():
                service_analytics().observe_latency(
                    "execute_phase_latency_seconds", "phase", key[:-2], elapsed
                )
        # Touched on every execute (not just failures) so the exposition
        # shows an explicit zero sample before the first divergence.
        failures = metrics.counter(
            "repro_execute_validation_failures",
            help_text="Executions whose result diverged from the reference",
        )
        failures.inc(0.0)
        if response.validated is False:
            failures.inc()
            if analytics_enabled():
                service_analytics().record_point("validation_failures")
            # Token-bucket suppressed: a replayed divergent request must
            # not emit one warning line per request.
            log_rate_limited(
                _LOG,
                "warning",
                "execute validation failed",
                key="http-execute-validation",
                request_id=response.request_id,
                engine=response.engine,
                implementation=response.implementation,
                max_rel_error=response.max_rel_error,
                worker=response.worker,
                error=response.error,
            )

    def _handle_post(self, path: str) -> None:
        executor = self.server.executor
        try:
            if path == "/snapshot":
                # No body required: the snapshot target is server-side
                # configuration (--snapshot-dir), not request data.  Any
                # body a client does send must still be drained -- the
                # connection is keep-alive (HTTP/1.1), and unread bytes
                # would be parsed as the start of the next request.
                length = int(self.headers.get("Content-Length", 0) or 0)
                if length > MAX_BODY_BYTES:
                    # Too large to drain: drop the connection after the
                    # error response instead of leaving unread bytes.
                    self.close_connection = True
                    raise RequestError(
                        f"request body exceeds {MAX_BODY_BYTES} bytes"
                    )
                if length > 0:
                    self.rfile.read(length)
                if getattr(executor, "snapshot_dir", None) is None:
                    self._send_json(
                        409,
                        {"error": "no snapshot directory configured (--snapshot-dir)"},
                    )
                else:
                    self._send_json(200, executor.save_snapshot())
                return
            payload = self._read_json()
            if path == "/compile":
                # Propagate the header id into the request wire (unless the
                # body carries its own): it rides through the pool worker
                # into the response and every log line along the way.
                if isinstance(payload, dict) and not payload.get("request_id"):
                    payload = dict(payload, request_id=self._request_id)
                request = CompileRequest.from_dict(payload)
                response = executor.submit(request)
                self._request_id = response.request_id or self._request_id
                self._send_json(200 if response.ok else 400, response.to_dict())
            elif path == "/execute":
                # Imported lazily (repro.exec.api imports this package).
                from ..exec.api import ExecuteRequest

                if isinstance(payload, dict) and not payload.get("request_id"):
                    payload = dict(payload, request_id=self._request_id)
                exec_request = ExecuteRequest.from_dict(payload)
                exec_response = executor.execute(exec_request)
                self._request_id = exec_response.request_id or self._request_id
                self._observe_execution(exec_response)
                self._send_json(
                    200 if exec_response.ok else 400, exec_response.to_dict()
                )
            elif path == "/profile":
                # A /compile request with profiling forced on; returns the
                # collapsed stacks as text/plain, ready to pipe straight
                # into flamegraph.pl.
                if isinstance(payload, dict) and not payload.get("request_id"):
                    payload = dict(payload, request_id=self._request_id)
                request = CompileRequest.from_dict(payload)
                request.options = request.options.replace(profile=True)
                response = executor.submit(request)
                self._request_id = response.request_id or self._request_id
                if not response.ok:
                    self._send_json(400, response.to_dict())
                else:
                    collapsed = (response.profile or {}).get("collapsed", "")
                    self._send_text(200, collapsed)
            elif path == "/batch":
                if not isinstance(payload, dict) or not isinstance(
                    payload.get("requests"), list
                ):
                    raise RequestError("batch body must be {'requests': [...]}")
                requests = [
                    CompileRequest.from_dict(entry) for entry in payload["requests"]
                ]
                responses = executor.compile_batch(requests)
                self._send_json(
                    200,
                    {
                        "responses": [response.to_dict() for response in responses],
                        "count": len(responses),
                        "failed": sum(1 for r in responses if not r.ok),
                    },
                )
            else:
                self._send_json(404, {"error": f"unknown path {path!r}"})
        except PoolSaturatedError as exc:
            if analytics_enabled():
                service_analytics().record_point("rejections_429")
            retry_after = max(1, math.ceil(exc.retry_after))
            self._send_json(
                429,
                {"error": str(exc), "retry_after": retry_after},
                extra_headers={"Retry-After": str(retry_after)},
            )
        except RequestError as exc:
            self._send_json(400, {"error": str(exc)})
        except Exception as exc:  # noqa: BLE001 -- never drop the connection
            self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})


def start_server(
    executor, host: str = "127.0.0.1", port: int = 0
) -> Tuple[ServiceHTTPServer, threading.Thread]:
    """Start a server on a background thread; returns ``(server, thread)``.

    Pass ``port=0`` to bind an ephemeral port; the bound address is at
    ``server.server_address``.  The caller owns shutdown:
    ``server.shutdown(); thread.join(); executor.close()``.
    """
    server = ServiceHTTPServer((host, port), executor)
    thread = threading.Thread(
        target=server.serve_forever, name="repro-service-http", daemon=True
    )
    thread.start()
    return server, thread


def run_server(
    executor, host: str = "127.0.0.1", port: int = 8077
) -> int:
    """Serve until interrupted (the blocking CLI path)."""
    server = ServiceHTTPServer((host, port), executor)
    bound_host, bound_port = server.server_address[:2]
    mode = "in-process" if executor.workers == 0 else f"{executor.workers} workers"
    print(
        f"repro compilation service listening on http://{bound_host}:{bound_port} "
        f"({mode})",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        executor.close()
    return 0

"""Warm-cache execution back-ends: worker pool and in-process executor.

Both executors implement the same duck-typed interface consumed by the HTTP
front-end (:mod:`repro.service.http`) and by library users:

``submit(request) -> CompileResponse``
    compile one request;
``compile_batch(requests) -> List[CompileResponse]``
    compile many requests, responses in submission order;
``execute(request) -> ExecuteResponse``
    compile **and run** one :class:`~repro.exec.api.ExecuteRequest`
    through the execution tier (emit standalone module, import, run,
    validate against the reference) -- the backing of ``POST /execute``;
``stats() / reset_stats()``
    pooled cache telemetry (see :mod:`repro.service.telemetry`);
``ping() / close()``
    liveness probe and shutdown.  Both executors are context managers.

:class:`InProcessExecutor` runs everything synchronously in the calling
process -- no subprocesses, deterministic, used by tier-1 tests and as the
``--in-process`` fallback of the CLI.

:class:`WorkerPool` owns N persistent worker *processes*.  Each worker
builds the default kernel catalog once and keeps every cache layer warm
across requests: the expression interner, the property-inference memo, the
signature-keyed match cache, the whole-plan cache and one kernel-cost LRU
per metric.  Requests are routed by **affinity**: structurally similar
chains share their name-abstracted signature
(:func:`repro.service.api.affinity_key`) and land on the same worker, whose
match cache is already warm for them.  A worker that dies (crash, OOM kill)
is transparently restarted and its in-flight requests are resubmitted, up
to ``max_retries`` per request; requests that keep killing workers come
back as ``ok=False`` responses instead of hanging the caller.

**Warm boot**: when a ``snapshot_dir`` is configured, every worker loads
the directory's cache snapshot (:mod:`repro.persist.snapshot`) at boot --
so a restarted pool answers its first signature-equal request from the
plan cache -- and the pool persists a merged snapshot of all workers on
shutdown (and on demand via :meth:`WorkerPool.save_snapshot`, the backing
of ``POST /snapshot``).  A stale or corrupt snapshot is reported in
``stats()`` and simply boots cold.

**Backpressure**: each worker's in-flight request count is bounded
(``max_inflight_per_worker``); dispatching beyond the bound raises
:class:`PoolSaturatedError`, which the HTTP front-end maps to ``429`` with
a ``Retry-After`` hint, instead of growing the inbox queues without limit.

Wire format: plain dicts (``CompileRequest.to_dict`` /
``CompileResponse.to_dict``) travel over the queues, so workers never
unpickle custom classes and the pool works under ``fork`` and ``spawn``
alike.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from ..core.parallel import set_worker_parallelism_cap
from ..frontend.compiler import Compiler
from ..obs.logging import get_logger
from ..kernels.catalog import KernelCatalog
from ..options import CompileOptions
from ..persist.snapshot import (
    capture_state,
    load_snapshot,
    merge_states,
    snapshot_path,
    write_snapshot,
)
from .. import telemetry
from .api import CompileRequest, CompileResponse, affinity_key, execute_request

_LOG = get_logger("service.pool")

__all__ = [
    "PoolSaturatedError",
    "InProcessExecutor",
    "WorkerPool",
    "create_executor",
]

#: Seconds between liveness checks while a caller waits for a response.
_POLL_INTERVAL = 0.05

#: Default bound on in-flight requests per worker (and for the in-process
#: executor as a whole) before :class:`PoolSaturatedError` pushes back.
DEFAULT_MAX_INFLIGHT = 64


class PoolSaturatedError(RuntimeError):
    """Raised when dispatching would exceed the in-flight request bound.

    ``retry_after`` is the back-off hint (seconds) the HTTP front-end
    forwards as the ``Retry-After`` header of its ``429`` response.
    """

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


def _log_snapshot_load(result: Optional[dict], worker: Optional[int]) -> None:
    """One structured line per snapshot-backed boot (cold boots at INFO --
    a missing snapshot is normal on first start; corrupt ones warn)."""
    if not isinstance(result, dict):
        return
    fields = {"worker": worker, **result}
    if result.get("loaded"):
        _LOG.info("snapshot loaded, booting warm", extra=fields)
    elif result.get("missing"):
        _LOG.info("no snapshot found, booting cold", extra=fields)
    else:
        _LOG.warning("snapshot unusable, booting cold", extra=fields)


def _log_snapshot_save(meta: dict) -> None:
    _LOG.info("snapshot saved", extra=dict(meta))


# ---------------------------------------------------------------------------
# In-process executor (the synchronous fallback).
# ---------------------------------------------------------------------------

class InProcessExecutor:
    """Synchronous executor running compilations in the calling process.

    Thread-safe: concurrent ``submit`` calls (e.g. from the threading HTTP
    server) are serialized around the shared caches -- real parallelism is
    the worker pool's job; this executor's job is determinism and zero
    process overhead for tests and small deployments.
    """

    def __init__(
        self,
        catalog: Optional[KernelCatalog] = None,
        snapshot_dir=None,
        max_inflight: int = DEFAULT_MAX_INFLIGHT,
    ) -> None:
        #: The warm compilation session shared by every request.
        self.compiler = Compiler(CompileOptions(catalog=catalog))
        self._lock = threading.Lock()
        self._gate = threading.Lock()
        self._pending = 0
        self.max_inflight = max_inflight
        self.requests_served = 0
        self.errors = 0
        self.rejections = 0
        self.snapshot_dir = Path(snapshot_dir) if snapshot_dir else None
        #: Boot-time snapshot load result (``None`` without a snapshot dir).
        self.snapshot_load: Optional[dict] = None
        if self.snapshot_dir is not None:
            self.snapshot_load = load_snapshot(
                snapshot_path(self.snapshot_dir),
                self.compiler.plan_cache,
                self.compiler.catalog,
            )
            _log_snapshot_load(self.snapshot_load, worker=None)

    @property
    def workers(self) -> int:
        return 0

    def _execute(self, request: CompileRequest) -> CompileResponse:
        """Run one request on the shared session (serialized, counted)."""
        with self._lock:
            response = execute_request(request, compiler=self.compiler)
            self.requests_served += 1
            if not response.ok:
                self.errors += 1
            return response

    def _reserve(self, count: int) -> None:
        """Claim *count* in-flight slots or raise (all-or-nothing)."""
        with self._gate:
            if self._pending + count > self.max_inflight:
                self.rejections += 1
                _LOG.warning(
                    "pool saturated, request rejected",
                    extra={
                        "pending": self._pending,
                        "requested": count,
                        "max_inflight": self.max_inflight,
                        "rejections": self.rejections,
                    },
                )
                raise PoolSaturatedError(
                    f"{count} request(s) would exceed the in-flight bound "
                    f"({self._pending} pending, bound {self.max_inflight})"
                )
            self._pending += count

    def submit(self, request: CompileRequest, timeout: Optional[float] = None) -> CompileResponse:
        self._reserve(1)
        try:
            return self._execute(request)
        finally:
            with self._gate:
                self._pending -= 1

    def execute(self, request, timeout: Optional[float] = None):
        """Compile-and-run one :class:`~repro.exec.api.ExecuteRequest` on
        the shared warm session (same backpressure as :meth:`submit`)."""
        # Imported lazily: repro.exec.api itself imports this package.
        from ..exec.api import run_execute_request

        self._reserve(1)
        try:
            with self._lock:
                response = run_execute_request(request, compiler=self.compiler)
                self.requests_served += 1
                if not response.ok:
                    self.errors += 1
                return response
        finally:
            with self._gate:
                self._pending -= 1

    def compile_batch(
        self, requests: Sequence[CompileRequest], timeout: Optional[float] = None
    ) -> List[CompileResponse]:
        # All-or-nothing reservation (mirrors WorkerPool): a batch that
        # would overflow the in-flight bound is rejected before anything
        # executes, never half-executed-then-429'd.
        count = len(requests)
        self._reserve(count)
        try:
            return [self._execute(request) for request in requests]
        finally:
            with self._gate:
                self._pending -= count

    def stats(self) -> dict:
        with self._lock:
            caches = self.compiler.cache_stats()
        pooled = telemetry.aggregate([caches])
        return {
            "mode": "in-process",
            "workers": 0,
            "pool": {
                "requests": self.requests_served,
                "errors": self.errors,
                "restarts": 0,
                "rejections": self.rejections,
                "max_inflight_per_worker": self.max_inflight,
            },
            "caches": pooled,
            "snapshot": self.snapshot_load,
            "per_worker": [
                {
                    "worker": None,
                    "requests": self.requests_served,
                    "caches": caches,
                    "snapshot": self.snapshot_load,
                }
            ],
        }

    def analytics(self) -> dict:
        """The workload-analytics sketch state (:mod:`repro.obs.analytics`)
        of this process's compiler session."""
        return (self.stats().get("caches") or {}).get("analytics") or {}

    def reset_stats(self) -> None:
        with self._lock:
            self.compiler.reset_cache_stats()
            self.requests_served = 0
            self.errors = 0
            self.rejections = 0

    def ping(self) -> dict:
        return {"status": "ok", "mode": "in-process", "workers": 0, "alive": 0}

    def save_snapshot(self) -> dict:
        """Persist the session's caches to the configured snapshot dir."""
        if self.snapshot_dir is None:
            raise RuntimeError("no snapshot directory configured")
        with self._lock:
            state = capture_state(self.compiler.plan_cache, self.compiler.catalog)
        return write_snapshot(snapshot_path(self.snapshot_dir), state)

    def close(self) -> None:
        if self.snapshot_dir is not None:
            try:
                meta = self.save_snapshot()
            except Exception as exc:  # noqa: BLE001 -- shutdown must not fail on I/O
                _LOG.warning(
                    "shutdown snapshot save failed",
                    extra={"error": f"{type(exc).__name__}: {exc}"},
                )
            else:
                _log_snapshot_save(meta)

    def __enter__(self) -> "InProcessExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Worker process main loop.
# ---------------------------------------------------------------------------

def _worker_main(
    worker_id: int, inbox, outbox, snapshot_file=None, parallelism_cap=None
) -> None:
    """Serve requests until shutdown; every cache stays warm in between.

    Each worker holds one :class:`~repro.frontend.compiler.Compiler`
    session: the session owns the catalog and the per-metric cost LRUs, and
    with them every cache layer that makes repeated structurally similar
    requests cheap.  With a *snapshot_file*, the worker boots warm by
    loading the plan-cache/match-cache snapshot into the fresh session
    (stale/corrupt snapshots boot cold, reported via ``stats``).
    *parallelism_cap* bounds the worker's intra-solve thread count
    (:func:`repro.core.parallel.set_worker_parallelism_cap`): the pool
    hands each of its ``W`` workers a ``max(1, cores // W)`` share so that
    per-request ``parallelism`` policies never oversubscribe the machine
    by a factor of ``W``.  Messages are ``(kind, token, payload)`` tuples;
    every message except ``shutdown``/``crash`` is answered with
    ``(token, payload)`` on *outbox*.
    """
    if parallelism_cap is not None:
        set_worker_parallelism_cap(parallelism_cap)
    compiler = Compiler()
    snapshot_load = None
    if snapshot_file is not None:
        snapshot_load = load_snapshot(
            snapshot_file, compiler.plan_cache, compiler.catalog
        )
        _log_snapshot_load(snapshot_load, worker=worker_id)
    served = 0
    failed = 0
    while True:
        kind, token, payload = inbox.get()
        if kind == "shutdown":
            break
        if kind == "crash":  # test hook: simulate a hard worker death
            os._exit(17)
        if kind == "request":
            try:
                request = CompileRequest.from_dict(payload)
                response = execute_request(
                    request, compiler=compiler, worker=worker_id
                )
            except Exception as exc:  # noqa: BLE001 -- never kill the loop
                response = CompileResponse(
                    request_id=str((payload or {}).get("request_id", "")),
                    ok=False,
                    error=f"{type(exc).__name__}: {exc}",
                    worker=worker_id,
                )
            served += 1
            if not response.ok:
                failed += 1
            outbox.put((token, response.to_dict()))
        elif kind == "execute":
            # Imported here, not at module top: repro.exec.api imports
            # repro.service.api, whose package init imports this module.
            from ..exec.api import ExecuteRequest, ExecuteResponse, run_execute_request

            try:
                exec_request = ExecuteRequest.from_dict(payload)
                response = run_execute_request(
                    exec_request, compiler=compiler, worker=worker_id
                )
            except Exception as exc:  # noqa: BLE001 -- never kill the loop
                response = ExecuteResponse(
                    request_id=str((payload or {}).get("request_id", "")),
                    ok=False,
                    error=f"{type(exc).__name__}: {exc}",
                    phase="request",
                    worker=worker_id,
                )
            served += 1
            if not response.ok:
                failed += 1
            outbox.put((token, response.to_dict()))
        elif kind == "stats":
            outbox.put(
                (
                    token,
                    {
                        "worker": worker_id,
                        "pid": os.getpid(),
                        "requests": served,
                        "errors": failed,
                        "caches": compiler.cache_stats(),
                        "snapshot": snapshot_load,
                    },
                )
            )
        elif kind == "export_snapshot":
            try:
                payload = capture_state(compiler.plan_cache, compiler.catalog)
            except Exception as exc:  # noqa: BLE001 -- never kill the loop
                payload = {"error": f"{type(exc).__name__}: {exc}"}
            outbox.put((token, payload))
        elif kind == "reset_stats":
            compiler.reset_cache_stats()
            served = 0
            failed = 0
            outbox.put((token, True))
        elif kind == "ping":
            outbox.put((token, {"worker": worker_id, "pid": os.getpid()}))
        else:  # unknown control message: answer rather than wedge the caller
            outbox.put((token, {"error": f"unknown message kind {kind!r}"}))


# ---------------------------------------------------------------------------
# The pool.
# ---------------------------------------------------------------------------

class WorkerPool:
    """A pool of persistent warm-cache compiler worker processes."""

    def __init__(
        self,
        workers: Optional[int] = None,
        start_method: Optional[str] = None,
        request_timeout: float = 300.0,
        max_retries: int = 2,
        snapshot_dir=None,
        max_inflight_per_worker: int = DEFAULT_MAX_INFLIGHT,
    ) -> None:
        count = workers if workers and workers > 0 else min(4, os.cpu_count() or 1)
        #: Fair intra-solve thread share per worker: W processes x N solve
        #: threads must not oversubscribe the machine, so each worker's
        #: ``auto``/``threads:N`` policies are capped at cores // W.
        self.worker_parallelism_cap = max(1, (os.cpu_count() or 1) // count)
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self._ctx = multiprocessing.get_context(start_method)
        self.start_method = start_method
        self.request_timeout = request_timeout
        self.max_retries = max_retries
        self.snapshot_dir = Path(snapshot_dir) if snapshot_dir else None
        self.max_inflight_per_worker = max_inflight_per_worker
        self.restarts = 0
        self.batches = 0
        self.rejections = 0
        #: In-flight *request* count per worker (the backpressure signal;
        #: control messages -- stats/ping/snapshot -- are never counted).
        self._request_load = [0] * count

        self._inboxes = [self._ctx.Queue() for _ in range(count)]
        self._outbox = self._ctx.Queue()
        self._procs: List[Optional[multiprocessing.Process]] = [None] * count
        self._lock = threading.Lock()
        self._tokens = itertools.count()
        self._events: Dict[int, threading.Event] = {}
        self._results: Dict[int, object] = {}
        #: token -> [worker_index, kind, payload, retries] for in-flight work.
        self._inflight: Dict[int, list] = {}
        self._closed = False
        self._closing = False

        for index in range(count):
            self._spawn(index)
        self._collector = threading.Thread(
            target=self._collect, name="repro-service-collector", daemon=True
        )
        self._collector.start()

    # ------------------------------------------------------------ lifecycle
    @property
    def workers(self) -> int:
        return len(self._procs)

    def _spawn(self, index: int) -> None:
        snapshot_file = (
            str(snapshot_path(self.snapshot_dir))
            if self.snapshot_dir is not None
            else None
        )
        proc = self._ctx.Process(
            target=_worker_main,
            args=(
                index,
                self._inboxes[index],
                self._outbox,
                snapshot_file,
                self.worker_parallelism_cap,
            ),
            name=f"repro-service-worker-{index}",
            daemon=True,
        )
        proc.start()
        self._procs[index] = proc

    def close(self) -> None:
        """Shut every worker down and stop the collector.

        With a snapshot directory configured, the merged cache state of all
        workers is persisted first, so the next boot starts warm.  Repeated
        calls are no-ops -- the closing flag is claimed before the snapshot
        save, so a second close never dispatches to already-dead workers.
        """
        with self._lock:
            if self._closed or self._closing:
                return
            self._closing = True
        if self.snapshot_dir is not None:
            try:
                meta = self.save_snapshot()
            except Exception as exc:  # noqa: BLE001 -- shutdown must not fail on I/O
                _LOG.warning(
                    "shutdown snapshot save failed",
                    extra={"error": f"{type(exc).__name__}: {exc}"},
                )
            else:
                _log_snapshot_save(meta)
        with self._lock:
            self._closed = True
        for inbox in self._inboxes:
            try:
                inbox.put(("shutdown", None, None))
            except Exception:  # noqa: BLE001 -- queue may already be broken
                pass
        for proc in self._procs:
            if proc is not None:
                proc.join(timeout=5.0)
                if proc.is_alive():
                    proc.terminate()
                    proc.join(timeout=1.0)
        self._outbox.put(None)
        self._collector.join(timeout=5.0)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------ transport
    def _collect(self) -> None:
        """Single reader of the shared outbox; fills result slots."""
        while True:
            try:
                item = self._outbox.get()
            except Exception:  # noqa: BLE001 -- EOFError/OSError/unpickling
                # A worker hard-killed mid-write can corrupt one queue
                # message (EOFError / unpickling errors).  Losing that
                # message is recoverable -- the waiter times out and the
                # crash path resubmits -- but losing the *collector* would
                # wedge the whole pool, so swallow and keep reading.
                with self._lock:
                    if self._closed:
                        return
                time.sleep(_POLL_INTERVAL)
                continue
            if item is None:
                return
            token, payload = item
            with self._lock:
                event = self._events.get(token)
                if event is None:
                    # Late or duplicate delivery (timed-out waiter, or a
                    # request that ran twice around a crash): drop it.
                    continue
                self._release(self._inflight.pop(token, None))
                self._results[token] = payload
            event.set()

    def _release(self, entry) -> None:
        """Drop an in-flight entry's backpressure reservation (lock held)."""
        if entry is not None and entry[1] in ("request", "execute"):
            self._request_load[entry[0]] -= 1

    def _reserve(self, indices: Sequence[int]) -> None:
        """Reserve in-flight slots on every worker in *indices*, atomically.

        All-or-nothing: a batch whose demand would push any worker past
        ``max_inflight_per_worker`` is rejected as a whole (no partial
        dispatch), which is what lets ``POST /batch`` answer 429 instead of
        returning a half-completed batch.
        """
        demand: Dict[int, int] = {}
        for index in indices:
            demand[index] = demand.get(index, 0) + 1
        with self._lock:
            if self._closed:
                raise RuntimeError("worker pool is closed")
            for index, extra in demand.items():
                load = self._request_load[index]
                if load + extra > self.max_inflight_per_worker:
                    self.rejections += 1
                    _LOG.warning(
                        "pool saturated, request rejected",
                        extra={
                            "worker": index,
                            "queued": load,
                            "requested": extra,
                            "max_inflight_per_worker": self.max_inflight_per_worker,
                            "rejections": self.rejections,
                        },
                    )
                    raise PoolSaturatedError(
                        f"worker {index} would exceed its in-flight bound "
                        f"({load} queued + {extra} new > "
                        f"{self.max_inflight_per_worker})"
                    )
            for index, extra in demand.items():
                self._request_load[index] += extra

    def _dispatch(self, index: int, kind: str, payload) -> int:
        token = next(self._tokens)
        event = threading.Event()
        with self._lock:
            if self._closed:
                raise RuntimeError("worker pool is closed")
            self._events[token] = event
            self._inflight[token] = [index, kind, payload, 0]
        self._inboxes[index].put((kind, token, payload))
        return token

    def _check_workers(self) -> None:
        """Restart dead workers and resubmit (or fail) their in-flight work."""
        with self._lock:
            if self._closed:
                return
            for index, proc in enumerate(self._procs):
                if proc is None or proc.is_alive():
                    continue
                proc.join(timeout=0.1)
                self._spawn(index)
                self.restarts += 1
                _LOG.warning(
                    "worker crashed, restarted transparently",
                    extra={
                        "worker": index,
                        "exitcode": proc.exitcode,
                        "restarts": self.restarts,
                        "inflight_resubmitted": sum(
                            1
                            for entry in self._inflight.values()
                            if entry[0] == index
                        ),
                    },
                )
                for token, entry in list(self._inflight.items()):
                    if entry[0] != index:
                        continue
                    entry[3] += 1
                    if entry[3] > self.max_retries:
                        del self._inflight[token]
                        self._release(entry)
                        self._results[token] = self._failure_payload(entry)
                        event = self._events.get(token)
                        if event is not None:
                            event.set()
                    else:
                        self._inboxes[index].put((entry[1], token, entry[2]))

    @staticmethod
    def _failure_payload(entry: list) -> object:
        index, kind, payload, retries = entry
        message = f"worker {index} crashed {retries} times processing this message"
        if kind == "request":
            return CompileResponse(
                request_id=str((payload or {}).get("request_id", "")),
                ok=False,
                error=message,
                worker=index,
            ).to_dict()
        if kind == "execute":
            from ..exec.api import ExecuteResponse

            return ExecuteResponse(
                request_id=str((payload or {}).get("request_id", "")),
                ok=False,
                error=message,
                phase="request",
                worker=index,
            ).to_dict()
        return {"error": message, "worker": index}

    def _wait(self, token: int, timeout: Optional[float]):
        deadline = time.monotonic() + (
            timeout if timeout is not None else self.request_timeout
        )
        event = self._events[token]
        while not event.wait(_POLL_INTERVAL):
            self._check_workers()
            if time.monotonic() > deadline:
                # Deregister the event in the same critical section as the
                # result/inflight cleanup: a late delivery racing with this
                # cleanup must either land before it (and be popped here) or
                # see no event and be dropped -- never leak a result slot.
                with self._lock:
                    self._events.pop(token, None)
                    entry = self._inflight.pop(token, None)
                    self._release(entry)
                    self._results.pop(token, None)
                return self._timeout_payload(token, entry)
        with self._lock:
            self._events.pop(token, None)
            return self._results.pop(token)

    @staticmethod
    def _timeout_payload(token: int, entry) -> object:
        kind = entry[1] if entry else "request"
        message = "request timed out waiting for a worker"
        if kind == "request":
            payload = entry[2] if entry else None
            return CompileResponse(
                request_id=str((payload or {}).get("request_id", "")),
                ok=False,
                error=message,
            ).to_dict()
        if kind == "execute":
            from ..exec.api import ExecuteResponse

            payload = entry[2] if entry else None
            return ExecuteResponse(
                request_id=str((payload or {}).get("request_id", "")),
                ok=False,
                error=message,
                phase="request",
            ).to_dict()
        return {"error": message}

    # -------------------------------------------------------------- routing
    def worker_for(self, request: CompileRequest) -> int:
        """Affinity routing: structurally similar requests share a worker."""
        key = affinity_key(request)
        # Stable across processes and runs (unlike ``hash`` on strings).
        digest = 0
        for char in key:
            digest = (digest * 1000003 + ord(char)) & 0xFFFFFFFF
        return digest % len(self._procs)

    # ------------------------------------------------------------------ API
    def submit(
        self, request: CompileRequest, timeout: Optional[float] = None
    ) -> CompileResponse:
        index = self.worker_for(request)
        self._reserve([index])
        token = self._dispatch(index, "request", request.to_dict())
        return CompileResponse.from_dict(self._wait(token, timeout))

    def execute(self, request, timeout: Optional[float] = None):
        """Compile-and-run one :class:`~repro.exec.api.ExecuteRequest`.

        Routed by the *compile* half's affinity key, so an execute lands on
        the worker whose plan/match caches -- and emitted-module cache --
        are already warm for structurally similar programs.  Counts against
        the same per-worker in-flight bound as :meth:`submit`.
        """
        from ..exec.api import ExecuteResponse

        index = self.worker_for(request.compile)
        self._reserve([index])
        token = self._dispatch(index, "execute", request.to_dict())
        return ExecuteResponse.from_dict(self._wait(token, timeout))

    def compile_batch(
        self, requests: Sequence[CompileRequest], timeout: Optional[float] = None
    ) -> List[CompileResponse]:
        """Compile many requests concurrently across the pool.

        All requests are dispatched before any response is awaited, so the
        batch spreads over every worker the affinity map names; responses
        come back in submission order.  A batch that would overflow any
        worker's in-flight bound raises :class:`PoolSaturatedError` before
        dispatching anything.
        """
        indices = [self.worker_for(request) for request in requests]
        self._reserve(indices)
        with self._lock:
            self.batches += 1
        tokens = [
            self._dispatch(index, "request", request.to_dict())
            for index, request in zip(indices, requests)
        ]
        return [
            CompileResponse.from_dict(self._wait(token, timeout)) for token in tokens
        ]

    def stats(self, timeout: float = 30.0) -> dict:
        """Pooled cache telemetry: per-worker snapshots plus fleet totals."""
        tokens = [
            self._dispatch(index, "stats", None) for index in range(self.workers)
        ]
        per_worker = [self._wait(token, timeout) for token in tokens]
        usable = [
            entry
            for entry in per_worker
            if isinstance(entry, dict) and "caches" in entry
        ]
        pooled = telemetry.aggregate([entry["caches"] for entry in usable])
        snapshots = [entry.get("snapshot") for entry in usable]
        loaded = [snap for snap in snapshots if snap and snap.get("loaded")]
        return {
            "mode": "pool",
            "workers": self.workers,
            "start_method": self.start_method,
            "pool": {
                "requests": sum(entry.get("requests", 0) for entry in usable),
                "errors": sum(entry.get("errors", 0) for entry in usable),
                "restarts": self.restarts,
                "batches": self.batches,
                "rejections": self.rejections,
                "max_inflight_per_worker": self.max_inflight_per_worker,
            },
            "caches": pooled,
            "snapshot": {
                "dir": str(self.snapshot_dir) if self.snapshot_dir else None,
                "workers_loaded": len(loaded),
                "workers_cold": len(snapshots) - len(loaded),
                "per_worker": snapshots,
            },
            "per_worker": per_worker,
        }

    def analytics(self, timeout: float = 30.0) -> dict:
        """Fleet-wide workload-analytics state: every worker's sketches,
        merged (heavy-hitter counters unite, quantile buckets add,
        time-series slots align by absolute index)."""
        return (self.stats(timeout).get("caches") or {}).get("analytics") or {}

    def save_snapshot(self, timeout: float = 60.0) -> dict:
        """Merge every worker's cache state and persist it atomically.

        The backing of ``POST /snapshot``; also runs automatically on
        :meth:`close` when a snapshot directory is configured.
        """
        if self.snapshot_dir is None:
            raise RuntimeError("no snapshot directory configured")
        tokens = [
            self._dispatch(index, "export_snapshot", None)
            for index in range(self.workers)
        ]
        states = [self._wait(token, timeout) for token in tokens]
        usable = [
            state
            for state in states
            if isinstance(state, dict) and "plan_entries" in state
        ]
        if not usable:
            raise RuntimeError("no worker returned a snapshot state")
        merged = merge_states(usable)
        meta = write_snapshot(snapshot_path(self.snapshot_dir), merged)
        meta["workers_exported"] = len(usable)
        return meta

    def reset_stats(self, timeout: float = 30.0) -> None:
        tokens = [
            self._dispatch(index, "reset_stats", None)
            for index in range(self.workers)
        ]
        for token in tokens:
            self._wait(token, timeout)

    def ping(self, timeout: float = 10.0) -> dict:
        """Probe every worker (dead ones are restarted by the wait loop)."""
        tokens = [
            self._dispatch(index, "ping", None) for index in range(self.workers)
        ]
        replies = [self._wait(token, timeout) for token in tokens]
        alive = sum(
            1 for reply in replies if isinstance(reply, dict) and "pid" in reply
        )
        return {
            "status": "ok" if alive == self.workers else "degraded",
            "mode": "pool",
            "workers": self.workers,
            "alive": alive,
            "restarts": self.restarts,
        }

    # ------------------------------------------------------------ test hooks
    def crash_worker(self, index: int, wait: float = 10.0) -> None:
        """Make worker *index* die hard (``os._exit``); used by tests."""
        proc = self._procs[index]
        self._inboxes[index].put(("crash", None, None))
        if proc is not None:
            proc.join(timeout=wait)


def create_executor(
    workers: Optional[int] = None,
    in_process: bool = False,
    snapshot_dir=None,
    **pool_options,
):
    """Build the right executor: a pool, or the in-process fallback.

    ``in_process=True`` or ``workers=0`` selects :class:`InProcessExecutor`
    (no subprocesses -- what tier-1 tests use); anything else builds a
    :class:`WorkerPool` with *workers* processes (default: ``min(4,
    cpu_count)``).  *snapshot_dir* enables snapshot-backed warm boot for
    either executor (load at boot, persist on shutdown / ``POST
    /snapshot``).
    """
    if in_process or (workers is not None and workers <= 0):
        return InProcessExecutor(snapshot_dir=snapshot_dir)
    return WorkerPool(workers=workers, snapshot_dir=snapshot_dir, **pool_options)

"""Warm-cache execution back-ends: worker pool and in-process executor.

Both executors implement the same duck-typed interface consumed by the HTTP
front-end (:mod:`repro.service.http`) and by library users:

``submit(request) -> CompileResponse``
    compile one request;
``compile_batch(requests) -> List[CompileResponse]``
    compile many requests, responses in submission order;
``stats() / reset_stats()``
    pooled cache telemetry (see :mod:`repro.service.telemetry`);
``ping() / close()``
    liveness probe and shutdown.  Both executors are context managers.

:class:`InProcessExecutor` runs everything synchronously in the calling
process -- no subprocesses, deterministic, used by tier-1 tests and as the
``--in-process`` fallback of the CLI.

:class:`WorkerPool` owns N persistent worker *processes*.  Each worker
builds the default kernel catalog once and keeps every cache layer warm
across requests: the expression interner, the property-inference memo, the
signature-keyed match cache and one kernel-cost LRU per metric.  Requests
are routed by **affinity**: structurally similar chains share their
name-abstracted signature (:func:`repro.service.api.affinity_key`) and land
on the same worker, whose match cache is already warm for them.  A worker
that dies (crash, OOM kill) is transparently restarted and its in-flight
requests are resubmitted, up to ``max_retries`` per request; requests that
keep killing workers come back as ``ok=False`` responses instead of hanging
the caller.

Wire format: plain dicts (``CompileRequest.to_dict`` /
``CompileResponse.to_dict``) travel over the queues, so workers never
unpickle custom classes and the pool works under ``fork`` and ``spawn``
alike.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import threading
import time
from typing import Dict, List, Optional, Sequence

from ..frontend.compiler import Compiler
from ..kernels.catalog import KernelCatalog
from ..options import CompileOptions
from .. import telemetry
from .api import CompileRequest, CompileResponse, affinity_key, execute_request

__all__ = ["InProcessExecutor", "WorkerPool", "create_executor"]

#: Seconds between liveness checks while a caller waits for a response.
_POLL_INTERVAL = 0.05


# ---------------------------------------------------------------------------
# In-process executor (the synchronous fallback).
# ---------------------------------------------------------------------------

class InProcessExecutor:
    """Synchronous executor running compilations in the calling process.

    Thread-safe: concurrent ``submit`` calls (e.g. from the threading HTTP
    server) are serialized around the shared caches -- real parallelism is
    the worker pool's job; this executor's job is determinism and zero
    process overhead for tests and small deployments.
    """

    def __init__(self, catalog: Optional[KernelCatalog] = None) -> None:
        #: The warm compilation session shared by every request.
        self.compiler = Compiler(CompileOptions(catalog=catalog))
        self._lock = threading.Lock()
        self.requests_served = 0
        self.errors = 0

    @property
    def workers(self) -> int:
        return 0

    def submit(self, request: CompileRequest, timeout: Optional[float] = None) -> CompileResponse:
        with self._lock:
            response = execute_request(request, compiler=self.compiler)
            self.requests_served += 1
            if not response.ok:
                self.errors += 1
            return response

    def compile_batch(
        self, requests: Sequence[CompileRequest], timeout: Optional[float] = None
    ) -> List[CompileResponse]:
        return [self.submit(request) for request in requests]

    def stats(self) -> dict:
        with self._lock:
            caches = self.compiler.cache_stats()
        pooled = telemetry.aggregate([caches])
        return {
            "mode": "in-process",
            "workers": 0,
            "pool": {
                "requests": self.requests_served,
                "errors": self.errors,
                "restarts": 0,
            },
            "caches": pooled,
            "per_worker": [
                {"worker": None, "requests": self.requests_served, "caches": caches}
            ],
        }

    def reset_stats(self) -> None:
        with self._lock:
            self.compiler.reset_cache_stats()
            self.requests_served = 0
            self.errors = 0

    def ping(self) -> dict:
        return {"status": "ok", "mode": "in-process", "workers": 0, "alive": 0}

    def close(self) -> None:
        pass

    def __enter__(self) -> "InProcessExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Worker process main loop.
# ---------------------------------------------------------------------------

def _worker_main(worker_id: int, inbox, outbox) -> None:
    """Serve requests until shutdown; every cache stays warm in between.

    Each worker holds one :class:`~repro.frontend.compiler.Compiler`
    session: the session owns the catalog and the per-metric cost LRUs, and
    with them every cache layer that makes repeated structurally similar
    requests cheap.  Messages are ``(kind, token, payload)`` tuples; every
    message except ``shutdown``/``crash`` is answered with ``(token,
    payload)`` on *outbox*.
    """
    compiler = Compiler()
    served = 0
    failed = 0
    while True:
        kind, token, payload = inbox.get()
        if kind == "shutdown":
            break
        if kind == "crash":  # test hook: simulate a hard worker death
            os._exit(17)
        if kind == "request":
            try:
                request = CompileRequest.from_dict(payload)
                response = execute_request(
                    request, compiler=compiler, worker=worker_id
                )
            except Exception as exc:  # noqa: BLE001 -- never kill the loop
                response = CompileResponse(
                    request_id=str((payload or {}).get("request_id", "")),
                    ok=False,
                    error=f"{type(exc).__name__}: {exc}",
                    worker=worker_id,
                )
            served += 1
            if not response.ok:
                failed += 1
            outbox.put((token, response.to_dict()))
        elif kind == "stats":
            outbox.put(
                (
                    token,
                    {
                        "worker": worker_id,
                        "pid": os.getpid(),
                        "requests": served,
                        "errors": failed,
                        "caches": compiler.cache_stats(),
                    },
                )
            )
        elif kind == "reset_stats":
            compiler.reset_cache_stats()
            served = 0
            failed = 0
            outbox.put((token, True))
        elif kind == "ping":
            outbox.put((token, {"worker": worker_id, "pid": os.getpid()}))
        else:  # unknown control message: answer rather than wedge the caller
            outbox.put((token, {"error": f"unknown message kind {kind!r}"}))


# ---------------------------------------------------------------------------
# The pool.
# ---------------------------------------------------------------------------

class WorkerPool:
    """A pool of persistent warm-cache compiler worker processes."""

    def __init__(
        self,
        workers: Optional[int] = None,
        start_method: Optional[str] = None,
        request_timeout: float = 300.0,
        max_retries: int = 2,
    ) -> None:
        count = workers if workers and workers > 0 else min(4, os.cpu_count() or 1)
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self._ctx = multiprocessing.get_context(start_method)
        self.start_method = start_method
        self.request_timeout = request_timeout
        self.max_retries = max_retries
        self.restarts = 0
        self.batches = 0

        self._inboxes = [self._ctx.Queue() for _ in range(count)]
        self._outbox = self._ctx.Queue()
        self._procs: List[Optional[multiprocessing.Process]] = [None] * count
        self._lock = threading.Lock()
        self._tokens = itertools.count()
        self._events: Dict[int, threading.Event] = {}
        self._results: Dict[int, object] = {}
        #: token -> [worker_index, kind, payload, retries] for in-flight work.
        self._inflight: Dict[int, list] = {}
        self._closed = False

        for index in range(count):
            self._spawn(index)
        self._collector = threading.Thread(
            target=self._collect, name="repro-service-collector", daemon=True
        )
        self._collector.start()

    # ------------------------------------------------------------ lifecycle
    @property
    def workers(self) -> int:
        return len(self._procs)

    def _spawn(self, index: int) -> None:
        proc = self._ctx.Process(
            target=_worker_main,
            args=(index, self._inboxes[index], self._outbox),
            name=f"repro-service-worker-{index}",
            daemon=True,
        )
        proc.start()
        self._procs[index] = proc

    def close(self) -> None:
        """Shut every worker down and stop the collector."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for inbox in self._inboxes:
            try:
                inbox.put(("shutdown", None, None))
            except Exception:  # noqa: BLE001 -- queue may already be broken
                pass
        for proc in self._procs:
            if proc is not None:
                proc.join(timeout=5.0)
                if proc.is_alive():
                    proc.terminate()
                    proc.join(timeout=1.0)
        self._outbox.put(None)
        self._collector.join(timeout=5.0)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------ transport
    def _collect(self) -> None:
        """Single reader of the shared outbox; fills result slots."""
        while True:
            try:
                item = self._outbox.get()
            except Exception:  # noqa: BLE001 -- EOFError/OSError/unpickling
                # A worker hard-killed mid-write can corrupt one queue
                # message (EOFError / unpickling errors).  Losing that
                # message is recoverable -- the waiter times out and the
                # crash path resubmits -- but losing the *collector* would
                # wedge the whole pool, so swallow and keep reading.
                with self._lock:
                    if self._closed:
                        return
                time.sleep(_POLL_INTERVAL)
                continue
            if item is None:
                return
            token, payload = item
            with self._lock:
                event = self._events.get(token)
                if event is None:
                    # Late or duplicate delivery (timed-out waiter, or a
                    # request that ran twice around a crash): drop it.
                    continue
                self._inflight.pop(token, None)
                self._results[token] = payload
            event.set()

    def _dispatch(self, index: int, kind: str, payload) -> int:
        token = next(self._tokens)
        event = threading.Event()
        with self._lock:
            if self._closed:
                raise RuntimeError("worker pool is closed")
            self._events[token] = event
            self._inflight[token] = [index, kind, payload, 0]
        self._inboxes[index].put((kind, token, payload))
        return token

    def _check_workers(self) -> None:
        """Restart dead workers and resubmit (or fail) their in-flight work."""
        with self._lock:
            if self._closed:
                return
            for index, proc in enumerate(self._procs):
                if proc is None or proc.is_alive():
                    continue
                proc.join(timeout=0.1)
                self._spawn(index)
                self.restarts += 1
                for token, entry in list(self._inflight.items()):
                    if entry[0] != index:
                        continue
                    entry[3] += 1
                    if entry[3] > self.max_retries:
                        del self._inflight[token]
                        self._results[token] = self._failure_payload(entry)
                        event = self._events.get(token)
                        if event is not None:
                            event.set()
                    else:
                        self._inboxes[index].put((entry[1], token, entry[2]))

    @staticmethod
    def _failure_payload(entry: list) -> object:
        index, kind, payload, retries = entry
        message = f"worker {index} crashed {retries} times processing this message"
        if kind == "request":
            return CompileResponse(
                request_id=str((payload or {}).get("request_id", "")),
                ok=False,
                error=message,
                worker=index,
            ).to_dict()
        return {"error": message, "worker": index}

    def _wait(self, token: int, timeout: Optional[float]):
        deadline = time.monotonic() + (
            timeout if timeout is not None else self.request_timeout
        )
        event = self._events[token]
        while not event.wait(_POLL_INTERVAL):
            self._check_workers()
            if time.monotonic() > deadline:
                # Deregister the event in the same critical section as the
                # result/inflight cleanup: a late delivery racing with this
                # cleanup must either land before it (and be popped here) or
                # see no event and be dropped -- never leak a result slot.
                with self._lock:
                    self._events.pop(token, None)
                    entry = self._inflight.pop(token, None)
                    self._results.pop(token, None)
                return self._timeout_payload(token, entry)
        with self._lock:
            self._events.pop(token, None)
            return self._results.pop(token)

    @staticmethod
    def _timeout_payload(token: int, entry) -> object:
        kind = entry[1] if entry else "request"
        message = "request timed out waiting for a worker"
        if kind == "request":
            payload = entry[2] if entry else None
            return CompileResponse(
                request_id=str((payload or {}).get("request_id", "")),
                ok=False,
                error=message,
            ).to_dict()
        return {"error": message}

    # -------------------------------------------------------------- routing
    def worker_for(self, request: CompileRequest) -> int:
        """Affinity routing: structurally similar requests share a worker."""
        key = affinity_key(request)
        # Stable across processes and runs (unlike ``hash`` on strings).
        digest = 0
        for char in key:
            digest = (digest * 1000003 + ord(char)) & 0xFFFFFFFF
        return digest % len(self._procs)

    # ------------------------------------------------------------------ API
    def submit(
        self, request: CompileRequest, timeout: Optional[float] = None
    ) -> CompileResponse:
        token = self._dispatch(self.worker_for(request), "request", request.to_dict())
        return CompileResponse.from_dict(self._wait(token, timeout))

    def compile_batch(
        self, requests: Sequence[CompileRequest], timeout: Optional[float] = None
    ) -> List[CompileResponse]:
        """Compile many requests concurrently across the pool.

        All requests are dispatched before any response is awaited, so the
        batch spreads over every worker the affinity map names; responses
        come back in submission order.
        """
        with self._lock:
            self.batches += 1
        tokens = [
            self._dispatch(self.worker_for(request), "request", request.to_dict())
            for request in requests
        ]
        return [
            CompileResponse.from_dict(self._wait(token, timeout)) for token in tokens
        ]

    def stats(self, timeout: float = 30.0) -> dict:
        """Pooled cache telemetry: per-worker snapshots plus fleet totals."""
        tokens = [
            self._dispatch(index, "stats", None) for index in range(self.workers)
        ]
        per_worker = [self._wait(token, timeout) for token in tokens]
        usable = [
            entry
            for entry in per_worker
            if isinstance(entry, dict) and "caches" in entry
        ]
        pooled = telemetry.aggregate([entry["caches"] for entry in usable])
        return {
            "mode": "pool",
            "workers": self.workers,
            "start_method": self.start_method,
            "pool": {
                "requests": sum(entry.get("requests", 0) for entry in usable),
                "errors": sum(entry.get("errors", 0) for entry in usable),
                "restarts": self.restarts,
                "batches": self.batches,
            },
            "caches": pooled,
            "per_worker": per_worker,
        }

    def reset_stats(self, timeout: float = 30.0) -> None:
        tokens = [
            self._dispatch(index, "reset_stats", None)
            for index in range(self.workers)
        ]
        for token in tokens:
            self._wait(token, timeout)

    def ping(self, timeout: float = 10.0) -> dict:
        """Probe every worker (dead ones are restarted by the wait loop)."""
        tokens = [
            self._dispatch(index, "ping", None) for index in range(self.workers)
        ]
        replies = [self._wait(token, timeout) for token in tokens]
        alive = sum(
            1 for reply in replies if isinstance(reply, dict) and "pid" in reply
        )
        return {
            "status": "ok" if alive == self.workers else "degraded",
            "mode": "pool",
            "workers": self.workers,
            "alive": alive,
            "restarts": self.restarts,
        }

    # ------------------------------------------------------------ test hooks
    def crash_worker(self, index: int, wait: float = 10.0) -> None:
        """Make worker *index* die hard (``os._exit``); used by tests."""
        proc = self._procs[index]
        self._inboxes[index].put(("crash", None, None))
        if proc is not None:
            proc.join(timeout=wait)


def create_executor(
    workers: Optional[int] = None,
    in_process: bool = False,
    **pool_options,
):
    """Build the right executor: a pool, or the in-process fallback.

    ``in_process=True`` or ``workers=0`` selects :class:`InProcessExecutor`
    (no subprocesses -- what tier-1 tests use); anything else builds a
    :class:`WorkerPool` with *workers* processes (default: ``min(4,
    cpu_count)``).
    """
    if in_process or (workers is not None and workers <= 0):
        return InProcessExecutor()
    return WorkerPool(workers=workers, **pool_options)

"""Compatibility alias: the telemetry module moved to :mod:`repro.telemetry`.

The snapshot/reset/aggregate helpers have no service dependencies (they
only read the cache layers in algebra/cost/kernels), so they now live at
the package root where the :class:`repro.Compiler` session can use them
without reaching up into the service package.  This module keeps the old
``repro.service.telemetry`` import path working.
"""

from ..telemetry import CACHE_LAYERS, aggregate, reset, snapshot

__all__ = ["CACHE_LAYERS", "snapshot", "reset", "aggregate"]

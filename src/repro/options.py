"""Unified compilation options: the single configuration surface.

Every front door of the compiler -- the Python API
(:class:`repro.frontend.Compiler`), the command line
(``python -m repro.frontend``), the HTTP service (:mod:`repro.service`) and
the benchmark/experiment scripts -- configures the pipeline through one
frozen :class:`CompileOptions` value instead of loose keyword arguments and
process-global toggles.  The options object names:

* the **solver** (``"gmc"`` bottom-up or ``"topdown"`` memoized),
* the **cost metric** (a name understood by
  :func:`repro.cost.metrics.resolve_metric`, or a live
  :class:`~repro.cost.metrics.CostMetric` instance),
* the **kernel catalog** (``None`` selects the shared default catalog),
* the DP **split pruning** and the signature-keyed **match cache** toggles,
* the signature-keyed whole-**plan cache** toggle (``plan_cache``; see
  :mod:`repro.persist.plan_cache`),
* the **emit** targets (names registered with
  :func:`repro.codegen.register_emitter`),
* a per-request **deadline budget** (``deadline_s``; enforced at DP cell
  boundaries -- expiring returns the best-so-far solution marked
  ``complete=False``), and
* the kernel-cost **cache sizing** (``cost_cache_size``).

Options are validated eagerly at construction, are immutable (derive
variants with :meth:`CompileOptions.replace`) and serialize losslessly to
the JSON wire format of the compilation service
(:meth:`CompileOptions.to_wire` / :meth:`CompileOptions.from_wire`).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace as _dataclass_replace
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from .cost.metrics import CostMetric, resolve_metric

__all__ = ["SOLVERS", "CompileOptions", "warn_legacy", "warn_legacy_wire"]

#: Solver names a :class:`CompileOptions` may select.
SOLVERS = ("gmc", "topdown")

#: Upper bound on :attr:`CompileOptions.cost_cache_size`.  The field is
#: client-controlled on the service wire; an unbounded value would let a
#: remote client effectively disable kernel-cost LRU eviction in a
#: long-lived worker (10x the metric default is plenty for tuning).
MAX_COST_CACHE_SIZE = 1_000_000

#: Keys of the JSON wire form of :class:`CompileOptions`.
_WIRE_KEYS = (
    "solver",
    "metric",
    "emit",
    "prune",
    "match_cache",
    "plan_cache",
    "deadline_s",
    "cost_cache_size",
    "parallelism",
    "trace",
    "profile",
)


def warn_legacy(old: str, new: str, stacklevel: int = 3) -> None:
    """Emit the one :class:`DeprecationWarning` of a legacy call-shape shim.

    *stacklevel* defaults to 3 so the warning is attributed to the caller of
    the shim, never to the shim itself: ``scripts/ci_api_check.py`` runs the
    test suite with deprecation warnings escalated to errors for ``repro.*``
    modules, which keeps the library from calling its own deprecated paths
    while external callers merely see a warning.
    """
    warnings.warn(
        f"{old} is deprecated; use {new} instead",
        DeprecationWarning,
        stacklevel=stacklevel,
    )


def warn_legacy_wire(old: str, new: str) -> None:
    """Like :func:`warn_legacy`, for deprecated *wire payloads*.

    A legacy JSON dict originates from the remote client, not from the code
    that happens to deserialize it, so the warning is attributed to a
    synthetic ``legacy_wire`` module rather than to the repro frame calling
    ``from_dict`` -- the service's HTTP handler and pool workers routinely
    deserialize client payloads and must not fail the internal-deprecation
    CI gate on a client's behalf.
    """
    warnings.warn_explicit(
        f"{old} is deprecated; use {new} instead",
        DeprecationWarning,
        filename="<legacy wire payload>",
        lineno=0,
        module="legacy_wire",
    )


@dataclass(frozen=True)
class CompileOptions:
    """Immutable configuration of one compilation pipeline.

    Example
    -------
    >>> options = CompileOptions(solver="topdown", metric="time", prune=False)
    >>> options.replace(prune=True).prune
    True
    """

    #: DP solver: ``"gmc"`` (bottom-up, paper Fig. 4) or ``"topdown"``.
    solver: str = "gmc"
    #: Cost metric: a resolvable name or a live :class:`CostMetric`.
    metric: Union[str, CostMetric] = "flops"
    #: Kernel catalog; ``None`` selects the shared default catalog.
    catalog: Optional[Any] = None
    #: Skip splits whose lower-bounded cost cannot beat the best-so-far.
    prune: bool = True
    #: Serve ``catalog.match`` through the signature-keyed match cache.
    match_cache: bool = True
    #: Consult the session's whole-plan cache (:mod:`repro.persist`) before
    #: dispatching to a solver; a hit skips the entire dynamic program.
    plan_cache: bool = True
    #: Code emitters to run, by registered name (``"julia"``, ``"numpy"``,
    #: or ``"module"`` -- the standalone importable module of the execution
    #: tier, :mod:`repro.exec`).
    emit: Tuple[str, ...] = ()
    #: Per-request time budget in seconds: the DP loops check it at cell
    #: boundaries and return the best-so-far solution with
    #: ``complete=False`` once it expires.
    deadline_s: Optional[float] = None
    #: Override for the per-metric kernel-cost LRU capacity.
    cost_cache_size: Optional[int] = None
    #: Intra-solve parallelism policy (:mod:`repro.core.parallel`):
    #: ``"serial"`` (the reference DP loops), ``"threads:N"`` (dispatch each
    #: anti-diagonal across N persistent threads) or ``"auto"`` (one thread
    #: per available core, respecting the service pool's per-worker cap).
    #: The policy never changes the solution -- parallel and serial solves
    #: are bit-identical -- so it is excluded from the plan-cache
    #: fingerprint.
    parallelism: str = "serial"
    #: Record a span tree for the compilation (:mod:`repro.obs.trace`):
    #: per-segment phases with cache-hit provenance and per-anti-diagonal DP
    #: spans, exposed as ``CompilationResult.trace``.  Diagnostic only -- it
    #: never changes the solution, so (like ``parallelism``) it is excluded
    #: from the plan-cache fingerprint.  Off by default; the disabled hot
    #: path pays no per-cell cost.
    trace: bool = False
    #: Run the solve under ``cProfile`` (:mod:`repro.obs.profile`) and
    #: attach the top functions plus ``flamegraph.pl``-compatible
    #: collapsed stacks to the response (``CompileResponse.profile``;
    #: ``POST /profile`` returns the collapsed text directly).  Diagnostic
    #: only -- like ``trace``/``parallelism`` it never changes the
    #: solution and is excluded from the plan-cache fingerprint.
    profile: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "emit", tuple(self.emit))
        self.validate()

    # ------------------------------------------------------------ validation
    def validate(self) -> None:
        """Raise :class:`ValueError`/:class:`TypeError` on any bad field."""
        if self.solver not in SOLVERS:
            raise ValueError(
                f"unknown solver {self.solver!r}; expected one of {SOLVERS}"
            )
        if not isinstance(self.metric, CostMetric):
            resolve_metric(self.metric)  # raises on unknown names/types
        from .codegen import available_emitters  # deferred: avoids import cycle

        known = available_emitters()
        for target in self.emit:
            if target not in known:
                raise ValueError(
                    f"unknown emit target {target!r}; registered emitters: {known}"
                )
        if self.deadline_s is not None:
            deadline = float(self.deadline_s)
            if not deadline > 0:
                raise ValueError(f"deadline_s must be positive, got {deadline!r}")
        if self.cost_cache_size is not None:
            if (
                not isinstance(self.cost_cache_size, int)
                or not 1 <= self.cost_cache_size <= MAX_COST_CACHE_SIZE
            ):
                raise ValueError(
                    f"cost_cache_size must be an int in [1, {MAX_COST_CACHE_SIZE}], "
                    f"got {self.cost_cache_size!r}"
                )
        if self.catalog is not None and not hasattr(self.catalog, "match"):
            raise TypeError(f"catalog {self.catalog!r} has no match() method")
        from .core.parallel import parse_parallelism  # deferred: import cycle

        parse_parallelism(self.parallelism)  # raises on bad policies

    # -------------------------------------------------------------- deriving
    def replace(self, **changes) -> "CompileOptions":
        """A copy with *changes* applied (and re-validated)."""
        return _dataclass_replace(self, **changes)

    # ------------------------------------------------------------ resolution
    @property
    def metric_name(self) -> str:
        """The metric's wire name (``.name`` for live instances)."""
        return self.metric if isinstance(self.metric, str) else self.metric.name

    def resolve_metric(self) -> CostMetric:
        """A :class:`CostMetric` instance for :attr:`metric`.

        Live instances are returned untouched -- they are caller-owned and
        possibly shared across solvers, so :attr:`cost_cache_size` is only
        applied to instances this call constructs from a metric *name*.
        """
        if isinstance(self.metric, CostMetric):
            return self.metric
        metric = resolve_metric(self.metric)
        if self.cost_cache_size is not None:
            metric.cost_cache_size = self.cost_cache_size
        return metric

    def resolve_catalog(self):
        """The catalog to compile against (default catalog when unset)."""
        if self.catalog is not None:
            return self.catalog
        from .kernels.catalog import default_catalog  # deferred: import cycle

        return default_catalog()

    # ----------------------------------------------------------------- wire
    def to_wire(self) -> Dict[str, object]:
        """The JSON-compatible dict form used by the compilation service.

        The catalog is process-local state and never travels on the wire; a
        live metric instance is reduced to its :attr:`metric_name`.
        """
        payload: Dict[str, object] = {
            "solver": self.solver,
            "metric": self.metric_name,
            "emit": list(self.emit),
            "prune": self.prune,
            "match_cache": self.match_cache,
            "plan_cache": self.plan_cache,
        }
        if self.deadline_s is not None:
            payload["deadline_s"] = self.deadline_s
        if self.cost_cache_size is not None:
            payload["cost_cache_size"] = self.cost_cache_size
        if self.parallelism != "serial":
            payload["parallelism"] = self.parallelism
        if self.trace:
            payload["trace"] = True
        if self.profile:
            payload["profile"] = True
        return payload

    @classmethod
    def from_wire(cls, payload: Mapping) -> "CompileOptions":
        """Rebuild options from :meth:`to_wire` output (strict on keys and
        on boolean types: ``"false"`` is a client bug, not ``True``)."""
        if not isinstance(payload, Mapping):
            raise ValueError("options must be a JSON object")
        unknown = set(payload) - set(_WIRE_KEYS)
        if unknown:
            raise ValueError(f"unknown option fields: {sorted(unknown)}")

        def wire_bool(key: str, default: bool = True) -> bool:
            value = payload.get(key, default)
            if not isinstance(value, bool):
                raise ValueError(f"option {key!r} must be a boolean, got {value!r}")
            return value

        deadline = payload.get("deadline_s")
        cache_size = payload.get("cost_cache_size")
        return cls(
            solver=payload.get("solver", "gmc"),
            metric=payload.get("metric", "flops"),
            emit=tuple(payload.get("emit", ())),
            prune=wire_bool("prune"),
            match_cache=wire_bool("match_cache"),
            plan_cache=wire_bool("plan_cache"),
            deadline_s=None if deadline is None else float(deadline),
            cost_cache_size=None if cache_size is None else int(cache_size),
            parallelism=payload.get("parallelism", "serial"),
            trace=wire_bool("trace", default=False),
            profile=wire_bool("profile", default=False),
        )

"""Intra-solve parallel execution backend for the DP solvers.

One cold solve of a long chain is a single dynamic program whose table is
filled anti-diagonal by anti-diagonal: all cells ``(i, j)`` with the same
subchain length ``j - i`` only read cells of strictly shorter subchains, so
the cells of one diagonal are mutually independent.  This module turns each
diagonal into an explicit work queue of cell tasks and dispatches it across
an execution backend:

* :class:`SerialBackend` runs the queue in submission order in the calling
  thread (the reference execution tier);
* :class:`ThreadBackend` dispatches the queue across a persistent
  :class:`~concurrent.futures.ThreadPoolExecutor`.

Backends are duck-typed (``workers`` + ``run(tasks)``), so a process- or
subinterpreter-based backend can slot in later without touching the
solvers.

Two properties make the parallel tier *bit-identical* to the serial
reference loop of :class:`repro.core.gmc.GMCAlgorithm`:

**Lexicographic cell semantics.**  The serial loop scans splits in
ascending ``k`` and accepts strictly better costs, so the recorded choice
is the smallest ``k`` attaining the minimal cost -- the lexicographic
argmin of ``(cost, k)``.  The parallel evaluator preserves exactly that
invariant regardless of evaluation order: candidates publish into a
:class:`SharedBound` that keeps the lexicographically smallest
``(cost, k)``, and a candidate is pruned only when its lower bound
*strictly* exceeds the published cost, or ties it with a larger ``k``
(either way it provably cannot change the argmin).  Cost values themselves
are accumulated with the same ``combine(combine(left, right), kernel))``
association as the serial loop, so floats come out bit-equal.

**Bound-ordered evaluation.**  With pruning enabled, a cell's candidates
are evaluated cheapest-lower-bound first.  Once one candidate has been
evaluated, every remaining candidate whose bound exceeds the best cost is
dropped in a single cut -- the same optimum is found after evaluating far
fewer splits than the ascending-``k`` reference order.

**Decision memoization.**  The per-split kernel decision -- collect every
matching kernel, price each one, keep the metric-minimal choice -- is a
pure function of the subject's shape/property signature (the same
soundness argument the match cache rests on, see
:class:`KernelDecisionMemo`), so the workers of one solve share a
signature-keyed memo of finished decisions: a hit skips the match walk,
every per-kernel cost evaluation and the argmin, and merely re-binds the
winning substitution.

Bound-ordered evaluation and decision memoization are where the
single-core wall-clock win of ``threads:N`` comes from; on multi-core
machines the thread pool additionally overlaps independent cells.

The deadline of :attr:`repro.options.CompileOptions.deadline_s` stays
cooperative: every worker polls one shared :class:`DeadlineChecker` (a
strided, adaptive ``time.monotonic`` gate).  Cells are all-or-nothing --
when the budget expires mid-diagonal, fully evaluated cells of that
diagonal are committed, aborted cells are discarded, and the solve returns
``complete=False``; a half-written cell is never observable.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..algebra.expression import Matrix
from ..algebra.inference import registry_is_customized, registry_version
from ..algebra.operators import Times
from ..matching.discrimination_net import _flatten_subject
from ..matching.match_cache import _binding_slots
from ..matching.patterns import Substitution, Wildcard

__all__ = [
    "MAX_THREADS",
    "parse_parallelism",
    "resolve_worker_count",
    "set_worker_parallelism_cap",
    "worker_parallelism_cap",
    "DeadlineChecker",
    "SharedBound",
    "WorkCounters",
    "solver_work_telemetry",
    "KernelDecisionMemo",
    "make_decision_memo",
    "SerialBackend",
    "ThreadBackend",
    "get_backend",
    "shutdown_backends",
    "DiagonalEnv",
    "run_diagonals",
]

#: Upper bound on an explicit ``threads:N`` request (the policy travels on
#: the service wire, so a remote client must not be able to ask a worker
#: for an absurd pool).
MAX_THREADS = 64


# ---------------------------------------------------------------------------
# Parallelism policy: "serial" | "threads:N" | "auto".
# ---------------------------------------------------------------------------

def parse_parallelism(spec: str) -> Tuple[str, int]:
    """Validate a ``CompileOptions.parallelism`` policy string.

    Returns ``(mode, count)`` where *mode* is ``"serial"``, ``"threads"``
    or ``"auto"`` (*count* is meaningful only for ``"threads"``).  Raises
    :class:`TypeError`/:class:`ValueError` on anything else -- this is the
    validator behind :meth:`CompileOptions.validate`.
    """
    if not isinstance(spec, str):
        raise TypeError(f"parallelism must be a string policy, got {spec!r}")
    if spec == "serial":
        return ("serial", 1)
    if spec == "auto":
        return ("auto", 0)
    if spec.startswith("threads:"):
        suffix = spec[len("threads:"):]
        try:
            count = int(suffix)
        except ValueError:
            count = -1
        if not 1 <= count <= MAX_THREADS:
            raise ValueError(
                f"parallelism {spec!r} must name an int in [1, {MAX_THREADS}]"
            )
        return ("threads", count)
    raise ValueError(
        f"unknown parallelism {spec!r}; expected 'serial', 'auto' or 'threads:N'"
    )


#: Per-process cap on intra-solve workers, set by service pool workers so
#: that W pool processes x N solve threads never oversubscribes the
#: machine (``None`` = uncapped).
_WORKER_CAP: Optional[int] = None


def set_worker_parallelism_cap(cap: Optional[int]) -> None:
    """Bound this process's intra-solve thread count (``None`` removes it).

    Called by :func:`repro.service.pool._worker_main`: a pool of ``W``
    workers caps each worker at ``max(1, cores // W)`` so ``auto`` resolves
    to the worker's fair share instead of every worker claiming all cores.
    """
    global _WORKER_CAP
    if cap is not None:
        cap = max(1, int(cap))
    _WORKER_CAP = cap


def worker_parallelism_cap() -> Optional[int]:
    """The current per-process intra-solve worker cap (``None`` = uncapped)."""
    return _WORKER_CAP


def resolve_worker_count(spec: str) -> int:
    """The effective intra-solve worker count for a policy string.

    ``serial`` is 1; ``auto`` is the process cap when one is set (pool
    workers), else ``os.cpu_count()``; ``threads:N`` is ``N`` clamped to
    the process cap.
    """
    mode, count = parse_parallelism(spec)
    if mode == "serial":
        return 1
    cap = _WORKER_CAP
    if mode == "auto":
        return cap if cap is not None else max(1, os.cpu_count() or 1)
    return count if cap is None else min(count, cap)


# ---------------------------------------------------------------------------
# Cooperative, strided deadline checking.
# ---------------------------------------------------------------------------

class DeadlineChecker:
    """A shared, strided ``time.monotonic`` gate for ``deadline_s``.

    One checker is created per solve and polled by every worker evaluating
    its cells.  To keep the poll cheap, the clock is only read every
    *stride* calls; the stride adapts to the observed time between clock
    reads so cheap cells amortize the syscall while expensive cells keep
    the truncation point tight (target: one clock read every
    ~``_TARGET_S`` seconds, stride clamped to [1, ``_MAX_STRIDE``]).  The
    very first call always reads the clock, so an already-expired budget
    truncates before any work happens (the truncation-point tests rely on
    this).  Expiry is sticky and safe to observe from any thread.
    """

    __slots__ = ("deadline", "_stride", "_budget", "_expired", "_last_check")

    _MAX_STRIDE = 64
    _TARGET_S = 0.002

    def __init__(self, deadline_s: Optional[float]) -> None:
        self.deadline = (
            None if deadline_s is None else time.monotonic() + deadline_s
        )
        self._stride = 1
        self._budget = 0  # calls left before the next real clock read
        self._expired = False
        self._last_check: Optional[float] = None

    def expired(self) -> bool:
        """Whether the budget has run out (strided clock reads)."""
        if self.deadline is None:
            return False
        if self._expired:
            return True
        if self._budget > 0:
            self._budget -= 1
            return False
        now = time.monotonic()
        if now > self.deadline:
            self._expired = True
            return True
        last = self._last_check
        self._last_check = now
        if last is not None:
            elapsed = now - last
            if elapsed < self._TARGET_S / 4 and self._stride < self._MAX_STRIDE:
                self._stride *= 2
            elif elapsed > self._TARGET_S and self._stride > 1:
                self._stride //= 2
        self._budget = self._stride - 1
        return False


# ---------------------------------------------------------------------------
# Shared best-so-far bound.
# ---------------------------------------------------------------------------

class SharedBound:
    """Thread-safe lexicographic minimum over published ``(cost, k)`` pairs.

    Workers evaluating candidates of the same DP cell publish improvements
    here; concurrent readers prune against the current best without a lock
    (the entry is one immutable tuple, swapped atomically).  The kept entry
    is the lexicographically smallest ``(cost, k)`` -- exactly the choice
    the serial ascending-``k`` reference loop records.
    """

    __slots__ = ("_lock", "_entry")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entry: Optional[Tuple[object, int, tuple]] = None

    def get(self) -> Optional[Tuple[object, int, tuple]]:
        """The current ``(cost, k, payload)`` entry (``None`` when empty)."""
        return self._entry

    def offer(self, cost: object, k: int, payload: tuple) -> bool:
        """Publish a candidate; keep it iff ``(cost, k)`` improves the best."""
        with self._lock:
            current = self._entry
            if (
                current is None
                or cost < current[0]
                or (not current[0] < cost and k < current[1])
            ):
                self._entry = (cost, k, payload)
                return True
            return False


# ---------------------------------------------------------------------------
# Solver work counters + process-global telemetry.
# ---------------------------------------------------------------------------

class WorkCounters:
    """Per-solve work counters surfaced on the solution objects.

    ``cells_evaluated`` counts DP cells whose split loop ran to completion;
    ``cells_pruned`` counts split *candidates* skipped by the lower-bound
    prune inside those cells; ``diagonals`` counts anti-diagonals entered;
    ``memo_hits`` / ``memo_misses`` count :class:`KernelDecisionMemo`
    lookups (zero on the serial tier, which never builds a memo).
    """

    __slots__ = ("cells_evaluated", "cells_pruned", "diagonals", "memo_hits", "memo_misses")

    def __init__(self) -> None:
        self.cells_evaluated = 0
        self.cells_pruned = 0
        self.diagonals = 0
        self.memo_hits = 0
        self.memo_misses = 0


class SolverWorkTelemetry:
    """Process-global accumulator behind the ``solver`` telemetry layer.

    Follows the uniform ``stats()`` / ``reset_stats()`` protocol of the
    cache layers (:mod:`repro.telemetry`), so solver work aggregates across
    pool workers exactly like cache counters do.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.reset_stats()

    def record(self, counters: WorkCounters) -> None:
        with self._lock:
            self.solves += 1
            self.cells_evaluated += counters.cells_evaluated
            self.cells_pruned += counters.cells_pruned
            self.diagonals += counters.diagonals
            self.hits += counters.memo_hits
            self.misses += counters.memo_misses

    def stats(self) -> Dict[str, object]:
        # ``hits``/``misses`` are decision-memo lookups (the layer's only
        # cache-like component); the remaining keys count raw solver work.
        with self._lock:
            total = self.hits + self.misses
            return {
                "layer": "solver",
                "solves": self.solves,
                "cells_evaluated": self.cells_evaluated,
                "cells_pruned": self.cells_pruned,
                "diagonals": self.diagonals,
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": self.hits / total if total else 0.0,
            }

    def reset_stats(self) -> None:
        self.solves = 0
        self.cells_evaluated = 0
        self.cells_pruned = 0
        self.diagonals = 0
        self.hits = 0
        self.misses = 0


_WORK_TELEMETRY = SolverWorkTelemetry()


def solver_work_telemetry() -> SolverWorkTelemetry:
    """The process-wide solver work accumulator (telemetry layer ``solver``)."""
    return _WORK_TELEMETRY


# ---------------------------------------------------------------------------
# Signature-keyed memoization of whole kernel decisions.
# ---------------------------------------------------------------------------

#: Memo value for "no kernel matches this signature".
_NO_KERNEL = object()

#: Preallocated cross-equality tokens for the ubiquitous one-leaf case.
_CROSS_EQ = (0,)
_CROSS_NE = (-1,)


class KernelDecisionMemo:
    """A per-solve memo of finished best-kernel decisions for DP splits.

    The solvers answer "which kernel computes ``Times(left, right)``, and
    at what cost?" by collecting every matching kernel, pricing each with
    the metric, and reducing to the minimal ``(cost, specialization, id)``
    key.  The *outcome* of that whole decision depends only on the
    subject's shape/property
    :meth:`~repro.algebra.expression.Expression.signature`:
    signature-equal subjects match exactly the same kernels (the match
    cache's soundness argument), and a :attr:`CostMetric.signature_pure
    <repro.cost.metrics.CostMetric.signature_pure>` metric prices a kernel
    from operand dimensions and properties alone -- both captured by the
    signature.  The deterministic tie-break (constraint count, kernel id)
    is subject-independent, so the winning kernel and its cost are a pure
    function of the signature.

    The memo is keyed *without building the subject*: the signature of
    ``Times(left, right)`` is determined by the operands' own (per-node
    cached) signatures plus the cross-operand leaf-equality pattern, so
    :meth:`decide_pair` keys on ``(left.signature(), right.signature(),
    cross)``.  A hit skips the ``Times`` construction, the subject
    signature walk, the match, every per-kernel substitution re-binding
    and cost evaluation, and the argmin; only the *winner's* substitution
    is re-bound, against a node list synthesized from the operands' cached
    flattenings (``_flatten_subject`` of a product is its root followed by
    the children's flattenings, and no pattern binds the root).  This is
    the accelerated tier's biggest single-core saving: the reference loop
    re-prices structurally repeated splits -- ubiquitous in chains whose
    operands share dimensions -- on every cell, because its kernel-cost
    memo keys on concrete substitutions over freshly named temporaries.

    One memo serves one solve and is shared by its worker threads: single
    dict operations are atomic under the GIL, and a racy duplicate
    computation converges to the identical value (signature-purity), so
    lost updates are harmless.  Construction is gated by
    :func:`make_decision_memo` on the same conditions under which the
    match cache trusts signatures; the watched net/registry versions are
    re-checked on every lookup, mirroring the match cache's invalidation.
    """

    __slots__ = (
        "_fallback",
        "_net",
        "_entries",
        "_leaves",
        "_net_version",
        "_registry_version",
        "hits",
        "misses",
    )

    def __init__(self, net, fallback) -> None:
        self._fallback = fallback
        self._net = net
        self._entries: Dict[tuple, object] = {}
        # id(operand) -> (operand, leaf structural keys, has_wildcard).
        # Holding the operand keeps its id stable for the memo's lifetime.
        self._leaves: Dict[int, tuple] = {}
        self._net_version = net.version
        self._registry_version = registry_version()
        self.hits = 0
        self.misses = 0

    def _leaf_info(self, operand) -> Tuple[tuple, bool]:
        """The operand's leaf structural keys and whether it holds wildcards."""
        cached = self._leaves.get(id(operand))
        if cached is not None:
            return cached[1], cached[2]
        keys = []
        wild = False
        for node in _flatten_subject(operand)[0]:
            if isinstance(node, Matrix):
                keys.append(node.structural_key())
            elif isinstance(node, Wildcard):
                wild = True
        info = (tuple(keys), wild)
        self._leaves[id(operand)] = (operand, info[0], wild)
        return info

    def decide_pair(
        self, left, right
    ) -> Optional[Tuple[object, Substitution, object, Optional[object]]]:
        """The decision for ``Times(left, right)``, memoized by pair key.

        Returns ``None`` when no kernel matches, else ``(kernel,
        substitution, kernel_cost, expr)`` where *expr* is the built
        subject on a miss and ``None`` on a hit (callers construct it
        lazily, only for candidates that survive the cost merge).
        """
        if (
            self._registry_version != registry_version()
            or self._net_version != self._net.version
        ):
            self._entries.clear()
            self._net_version = self._net.version
            self._registry_version = registry_version()
        left_keys, left_wild = self._leaf_info(left)
        right_keys, right_wild = self._leaf_info(right)
        if left_wild or right_wild:
            expr = Times(left, right)
            matched = self._fallback(expr)
            return None if matched is None else matched + (expr,)
        # The subject signature is (left sig, right sig, cross-operand
        # leaf-equality pattern): intra-operand equality patterns live in
        # the operand signatures, and each right leaf's combined
        # first-occurrence index is fixed by the first equal left leaf.
        if len(left_keys) == 1 and len(right_keys) == 1:
            cross = _CROSS_EQ if left_keys[0] == right_keys[0] else _CROSS_NE
        else:
            cross = tuple(
                next((p for p, lk in enumerate(left_keys) if lk == rk), -1)
                for rk in right_keys
            )
        key = (left.signature(), right.signature(), cross)
        entry = self._entries.get(key)
        if entry is not None:
            self.hits += 1
            if entry is _NO_KERNEL:
                return None
            kernel, slots, kernel_cost = entry
            # _flatten_subject(Times(left, right)) is [root] + flat(left)
            # + flat(right), and no pattern binds the root (the pattern's
            # own Times operator consumes it), so the recorded slots
            # resolve against a synthesized list -- no subject needed.
            nodes = [None]
            nodes += _flatten_subject(left)[0]
            nodes += _flatten_subject(right)[0]
            return (
                kernel,
                Substitution._from_owned_dict(
                    {name: nodes[position] for name, position in slots}
                ),
                kernel_cost,
                None,
            )
        self.misses += 1
        expr = Times(left, right)
        matched = self._fallback(expr)
        if matched is None:
            self._entries[key] = _NO_KERNEL
            return None
        kernel, substitution, kernel_cost = matched
        slots = _binding_slots(_flatten_subject(expr)[0], substitution)
        if slots is not None and all(position > 0 for _, position in slots):
            self._entries[key] = (kernel, slots, kernel_cost)
        return (kernel, substitution, kernel_cost, expr)


def make_decision_memo(catalog, metric, fallback) -> Optional[KernelDecisionMemo]:
    """Build a :class:`KernelDecisionMemo` over a solver's kernel picker.

    Returns ``None`` whenever signatures cannot be trusted to determine
    the decision -- the gate mirrors the match cache's bypass rules, plus
    the metric-side purity flag:

    * the metric must be :attr:`~repro.cost.metrics.CostMetric.cacheable`
      and :attr:`~repro.cost.metrics.CostMetric.signature_pure`;
    * the predicate registry must not be customized (user predicates may
      observe what the signature abstracts away);
    * the catalog's net must expose the structural-safety flags and have
      neither concrete-leaf patterns nor opaque predicates.
    """
    if not (getattr(metric, "cacheable", False) and getattr(metric, "signature_pure", False)):
        return None
    if registry_is_customized():
        return None
    net = getattr(catalog, "net", None)
    if (
        net is None
        or getattr(net, "has_concrete_leaf_patterns", True)
        or getattr(net, "has_opaque_predicates", True)
    ):
        return None
    return KernelDecisionMemo(net, fallback)


# ---------------------------------------------------------------------------
# Execution backends.
# ---------------------------------------------------------------------------

def _invoke(task: Callable[[], object]) -> object:
    return task()


class SerialBackend:
    """Run a work queue in submission order in the calling thread."""

    name = "serial"
    workers = 1

    def run(self, tasks: Sequence[Callable[[], object]]) -> List[object]:
        return [task() for task in tasks]


class ThreadBackend:
    """Dispatch a work queue across a persistent thread pool.

    The pool outlives individual solves (thread spin-up is paid once per
    process, not once per diagonal).  ``run`` preserves submission order in
    its result list.
    """

    name = "threads"

    def __init__(self, workers: int) -> None:
        self.workers = int(workers)
        self._pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-dp"
        )

    def run(self, tasks: Sequence[Callable[[], object]]) -> List[object]:
        if len(tasks) == 1:
            return [tasks[0]()]
        # The driving thread would otherwise block on the pool: run the
        # first task inline and offload only the rest.
        futures = [self._pool.submit(_invoke, task) for task in tasks[1:]]
        results = [tasks[0]()]
        results.extend(future.result() for future in futures)
        return results

    def close(self) -> None:
        self._pool.shutdown(wait=False)


_SERIAL_BACKEND = SerialBackend()
_THREAD_BACKENDS: Dict[int, ThreadBackend] = {}
_BACKENDS_LOCK = threading.Lock()


def get_backend(workers: int):
    """The persistent backend for an effective worker count."""
    if workers <= 1:
        return _SERIAL_BACKEND
    with _BACKENDS_LOCK:
        backend = _THREAD_BACKENDS.get(workers)
        if backend is None:
            backend = _THREAD_BACKENDS[workers] = ThreadBackend(workers)
        return backend


def shutdown_backends() -> None:
    """Tear down every persistent thread pool (test/teardown hook)."""
    with _BACKENDS_LOCK:
        for backend in _THREAD_BACKENDS.values():
            backend.close()
        _THREAD_BACKENDS.clear()


# ---------------------------------------------------------------------------
# The anti-diagonal work-queue runner.
# ---------------------------------------------------------------------------

#: Outcome marker for a cell whose evaluation the deadline aborted.
_ABORTED = object()


class DiagonalEnv:
    """The solver-side callbacks the diagonal runner drives.

    * ``costs`` is the 2-D best-cost table (workers only read cells of
      strictly shorter subchains, which previous diagonals committed);
    * ``operand(i, j)`` is the symbolic operand of subchain ``M[i..j]``;
    * ``best_kernel(expr)`` is the solver's deterministic kernel pick;
    * ``decide_pair(left, right)`` is an optional memoized fast path over
      ``best_kernel`` (see :class:`KernelDecisionMemo`; ``None`` routes
      every split through ``best_kernel``);
    * ``commit(i, j, entry)`` records a finished cell -- called on the
      driving thread only, in ascending ``i`` order, with *entry* either
      ``None`` (no computable split) or ``(cost, k, (kernel, substitution,
      expression, kernel_cost))``.
    """

    __slots__ = (
        "n", "costs", "metric", "prune", "best_kernel", "decide_pair", "operand", "commit"
    )

    def __init__(
        self, *, n, costs, metric, prune, best_kernel, operand, commit, decide_pair=None
    ):
        self.n = n
        self.costs = costs
        self.metric = metric
        self.prune = prune
        self.best_kernel = best_kernel
        self.decide_pair = decide_pair
        self.operand = operand
        self.commit = commit


def _evaluate_splits(
    env: DiagonalEnv,
    i: int,
    j: int,
    ks: Sequence[int],
    shared: SharedBound,
    checker: DeadlineChecker,
) -> Tuple[bool, int]:
    """Evaluate split candidates *ks* of cell ``(i, j)`` into *shared*.

    Returns ``(aborted, splits_pruned)``.  With pruning enabled the
    candidates are visited cheapest-lower-bound first; a candidate is
    skipped only when it provably cannot change the lexicographic
    ``(cost, k)`` argmin (strictly worse bound, or an equal bound at a
    larger ``k`` -- see the module docstring), so any interleaving of
    concurrent calls over one :class:`SharedBound` reproduces the serial
    reference choice exactly.
    """
    metric = env.metric
    costs = env.costs
    live = []
    for k in ks:
        left_cost = costs[i][k]
        right_cost = costs[k + 1][j]
        if metric.is_infinite(left_cost) or metric.is_infinite(right_cost):
            continue
        live.append((k, left_cost, right_cost))
    if not live:
        return (False, 0)

    use_bounds = False
    if env.prune:
        lower_bound = metric.lower_bound
        decorated = [
            (lower_bound(lc, rc), k, lc, rc) for (k, lc, rc) in live
        ]
        if all(entry[0] is not None for entry in decorated):
            use_bounds = True
            # Distinct k values break every (bound, k) tie, so plain tuple
            # order sorts by (bound, k) without a key function.
            live = sorted(decorated)

    pruned = 0
    operand = env.operand
    best_kernel = env.best_kernel
    decide_pair = env.decide_pair
    combine = metric.combine
    is_infinite = metric.is_infinite
    get_bound = shared.get
    # With no budget set the checker is a constant False; skip the call.
    expired = checker.expired if checker.deadline is not None else None
    for position, item in enumerate(live):
        if expired is not None and expired():
            return (True, pruned)
        if use_bounds:
            bound, k, left_cost, right_cost = item
            entry = get_bound()
            if entry is not None:
                best_cost, best_k = entry[0], entry[1]
                if best_cost < bound:
                    # Candidates are bound-sorted: everything left provably
                    # costs more than the published best.  One cut.
                    pruned += len(live) - position
                    break
                if not bound < best_cost and k > best_k:
                    # Equal bound, larger k: at best a tie the (cost, k)
                    # merge would discard anyway.
                    pruned += 1
                    continue
        else:
            k, left_cost, right_cost = item
        left_nd = operand(i, k)
        right_nd = operand(k + 1, j)
        if decide_pair is not None:
            decision = decide_pair(left_nd, right_nd)
            if decision is None:
                continue
            kernel, substitution, kernel_cost, expr = decision
        else:
            expr = Times(left_nd, right_nd)
            matched = best_kernel(expr)
            if matched is None:
                continue
            kernel, substitution, kernel_cost = matched
        cost = combine(combine(left_cost, right_cost), kernel_cost)
        if is_infinite(cost):
            continue
        entry = get_bound()
        if entry is not None and not (
            cost < entry[0] or (not entry[0] < cost and k < entry[1])
        ):
            # The published best already beats (cost, k); the offer would
            # be rejected, so skip it -- and skip materializing the
            # subject on memo hits.  Sound under concurrency: the bound
            # only ever improves.
            continue
        if expr is None:
            expr = Times(left_nd, right_nd)
        shared.offer(cost, k, (kernel, substitution, expr, kernel_cost))
    return (False, pruned)


def _run_one_diagonal(
    env: DiagonalEnv,
    cells: List[Tuple[int, int]],
    backend,
    checker: DeadlineChecker,
    counters: WorkCounters,
) -> bool:
    """Evaluate and commit one anti-diagonal; False once the deadline hits."""
    workers = backend.workers
    shared: Dict[Tuple[int, int], SharedBound] = {
        cell: SharedBound() for cell in cells
    }
    aborted: Dict[Tuple[int, int], bool] = {}
    pruned: Dict[Tuple[int, int], int] = {cell: 0 for cell in cells}

    if len(cells) >= workers:
        # Cell granularity: round-robin the cells over the workers; each
        # cell is evaluated by exactly one task (its SharedBound is then
        # simply the cell-local best).
        def run_slice(slice_cells: List[Tuple[int, int]]):
            outcome = {}
            for (i, j) in slice_cells:
                was_aborted, cell_pruned = _evaluate_splits(
                    env, i, j, range(i, j), shared[(i, j)], checker
                )
                outcome[(i, j)] = (was_aborted, cell_pruned)
                if was_aborted:
                    break
            return outcome

        slices = [cells[w::workers] for w in range(workers)]
        tasks = [
            (lambda s=s: run_slice(s)) for s in slices if s
        ]
        for outcome in backend.run(tasks):
            for cell, (was_aborted, cell_pruned) in outcome.items():
                aborted[cell] = was_aborted
                pruned[cell] = cell_pruned
    else:
        # Fewer cells than workers (the top of the table): chunk each
        # cell's split range across the workers; chunks of one cell share
        # its SharedBound, so an improvement published by one worker
        # prunes the candidates of every other worker on that cell.
        chunks_per_cell = max(1, -(-workers // len(cells)))
        tasks = []
        task_cells = []
        for (i, j) in cells:
            ks = list(range(i, j))
            for chunk in range(chunks_per_cell):
                chunk_ks = ks[chunk::chunks_per_cell]
                if not chunk_ks:
                    continue
                tasks.append(
                    lambda i=i, j=j, chunk_ks=chunk_ks: _evaluate_splits(
                        env, i, j, chunk_ks, shared[(i, j)], checker
                    )
                )
                task_cells.append((i, j))
        for cell, (was_aborted, chunk_pruned) in zip(
            task_cells, backend.run(tasks)
        ):
            aborted[cell] = aborted.get(cell, False) or was_aborted
            pruned[cell] += chunk_pruned

    expired = False
    for cell in cells:
        # A cell some task never reached (slice abandoned after an abort)
        # has no outcome recorded: treat it like an aborted cell.
        if aborted.get(cell, True):
            expired = True
            continue
        i, j = cell
        counters.cells_evaluated += 1
        counters.cells_pruned += pruned[cell]
        env.commit(i, j, shared[cell].get())
    return not expired


def run_diagonals(
    env: DiagonalEnv,
    backend,
    checker: DeadlineChecker,
    counters: WorkCounters,
    tracer=None,
) -> bool:
    """Fill the DP tables diagonal by diagonal through *backend*.

    Returns the ``complete`` flag: ``False`` when the deadline expired --
    every fully evaluated cell up to that point has been committed, no
    partially evaluated cell has.

    *tracer* (a :class:`repro.obs.trace.Tracer`, or ``None``) records one
    ``diagonal`` span per anti-diagonal with the work-counter deltas
    attached.  Spans are opened and closed on this (orchestrating) thread;
    cell tasks running inside *backend* never touch the tracer, so the
    strictly-nested stack discipline holds.  The ``None`` test per diagonal
    is the traced-off path's entire cost here.
    """
    complete = True
    if tracer is not None:
        tracer.begin("dp_fill", n=env.n, parallel=True)
    for length in range(1, env.n):
        counters.diagonals += 1
        cells = [(i, i + length) for i in range(env.n - length)]
        if tracer is None:
            if not _run_one_diagonal(env, cells, backend, checker, counters):
                complete = False
                break
        else:
            cells0 = counters.cells_evaluated
            pruned0 = counters.cells_pruned
            tracer.begin("diagonal", length=length, cells=len(cells))
            done = _run_one_diagonal(env, cells, backend, checker, counters)
            tracer.end(
                cells_evaluated=counters.cells_evaluated - cells0,
                cells_pruned=counters.cells_pruned - pruned0,
            )
            if not done:
                complete = False
                break
    if tracer is not None:
        tracer.end(complete=complete)
    return complete

"""Top-down (memoized) variant of the Generalized Matrix Chain algorithm.

Section 2 of the paper notes that the classic matrix chain problem "can be
elegantly solved with a dynamic programming approach, both in a top-down and
a bottom-up fashion"; the paper then presents the bottom-up generalization
(Fig. 4), which :class:`repro.core.gmc.GMCAlgorithm` implements.  This module
provides the equivalent *top-down memoized* formulation of the generalized
algorithm.  It computes exactly the same optimal cost and kernel sequence --
the tests assert this on random chains -- but explores sub-chains lazily,
which can skip work when large parts of the chain are forced by
uncomputability (infinite-cost sub-chains) and which some users find easier
to extend.

The implementation intentionally shares the kernel-selection and
property-inference machinery with the bottom-up algorithm so that the two can
only differ in traversal order, never in modelling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple, Union

from ..algebra.expression import Expression, Matrix, Temporary
from ..algebra.inference import infer_properties
from ..algebra.interning import intern
from ..algebra.operators import Times
from ..cost.metrics import CostMetric
from ..kernels.catalog import KernelCatalog
from ..kernels.kernel import Kernel, KernelCall, Program
from ..matching.patterns import Substitution
from ..options import CompileOptions
from .gmc import (
    _UNSET,
    ChainLike,
    UncomputableChainError,
    _coerce_chain,
    _uncomputable_message,
    coerce_solver_options,
)
from .parallel import (
    DeadlineChecker,
    DiagonalEnv,
    WorkCounters,
    get_backend,
    make_decision_memo,
    resolve_worker_count,
    run_diagonals,
    solver_work_telemetry,
)


@dataclass
class _SubChain:
    """Memoized solution of one sub-chain ``M[i..j]``.

    ``operand`` is ``None`` for uncomputable cells: a dead cell never
    materializes a temporary (nor pays its property inference).
    """

    cost: object
    split: int
    kernel: Optional[Kernel]
    substitution: Optional[Substitution]
    expression: Optional[Expression]
    kernel_cost: object
    operand: Optional[Matrix]


@dataclass
class TopDownSolution:
    """Result of the top-down solver (a lighter cousin of ``GMCSolution``)."""

    factors: Tuple[Expression, ...]
    expression: Expression
    metric: CostMetric
    catalog: KernelCatalog
    table: Dict[Tuple[int, int], _SubChain]
    #: ``False`` when the per-request deadline expired mid-solve (the table
    #: holds the best-so-far exploration state).
    complete: bool = True
    #: Solver work counters (see :mod:`repro.core.parallel`): DP cells whose
    #: split loop ran to completion, split candidates skipped by the
    #: lower-bound prune, and anti-diagonals entered (0 for the lazy
    #: serial recursion, which has no diagonal structure).
    cells_evaluated: int = 0
    cells_pruned: int = 0
    diagonals: int = 0

    @property
    def length(self) -> int:
        return len(self.factors)

    @property
    def optimal_cost(self) -> object:
        if self.length == 1:
            return self.metric.zero
        return self.table[(0, self.length - 1)].cost

    @property
    def computable(self) -> bool:
        return not self.metric.is_infinite(self.optimal_cost)

    def kernel_calls(self) -> List[KernelCall]:
        """The optimal kernel-call list, materialized once and reused."""
        calls = getattr(self, "_calls_cache", None)
        if calls is None:
            calls = list(self.construct_solution())
            self._calls_cache = calls
        return calls

    def construct_solution(self, i: int = 0, j: Optional[int] = None) -> Iterator[KernelCall]:
        """Yield the kernel calls of the optimal solution (Fig. 7 order)."""
        if j is None:
            j = self.length - 1
        if i == j:
            return
        if not self.computable:
            raise UncomputableChainError(
                _uncomputable_message(self),
                signature=self.expression.signature(),
            )
        cell = self.table[(i, j)]
        yield from self.construct_solution(i, cell.split)
        yield from self.construct_solution(cell.split + 1, j)
        yield KernelCall(
            kernel=cell.kernel,
            substitution=cell.substitution,
            output=cell.operand,
            expression=cell.expression,
            flops=cell.kernel.flops(cell.substitution),
            cost=cell.kernel_cost,
        )

    def program(self, strategy_name: str = "GMC (top-down)") -> Program:
        calls = list(self.kernel_calls())
        output = calls[-1].output if calls else (
            self.factors[0] if isinstance(self.factors[0], Matrix) else None
        )
        return Program(
            calls=calls,
            output=output,
            expression=self.expression,
            strategy=strategy_name,
        )

    @property
    def total_flops(self) -> float:
        return sum(call.flops for call in self.kernel_calls())

    def kernel_sequence(self) -> List[str]:
        return [call.kernel.display_name for call in self.kernel_calls()]

    def parenthesization(self) -> str:
        def render(i: int, j: int) -> str:
            if i == j:
                return str(self.factors[i])
            cell = self.table[(i, j)]
            if cell.kernel is None:
                return "<uncomputable>"
            return f"({render(i, cell.split)} * {render(cell.split + 1, j)})"

        if self.length == 1:
            return str(self.factors[0])
        return render(0, self.length - 1)


class TopDownGMC:
    """Top-down memoized formulation of the GMC algorithm.

    Produces the same optimal solutions as :class:`GMCAlgorithm`; see the
    module docstring for when the traversal order matters.  Configured by
    one :class:`~repro.options.CompileOptions` value exactly like
    :class:`GMCAlgorithm` (the loose ``catalog=/metric=/prune=`` keywords
    remain as a deprecated shim).
    """

    def __init__(
        self,
        options: Optional[CompileOptions] = None,
        metric=_UNSET,
        prune=_UNSET,
        *,
        catalog=_UNSET,
    ) -> None:
        self.options = coerce_solver_options(
            type(self).__name__, options, metric, prune, catalog
        )
        self.catalog: KernelCatalog = self.options.resolve_catalog()
        self.metric: CostMetric = self.options.resolve_metric()
        self.prune: bool = self.options.prune
        self.use_match_cache: bool = self.options.match_cache
        self.deadline_s = self.options.deadline_s
        self.parallelism: str = self.options.parallelism
        #: Optional :class:`repro.obs.trace.Tracer` (see GMCAlgorithm.tracer):
        #: ``None`` keeps the memoized recursion untouched.
        self.tracer = None

    def solve(self, chain: ChainLike) -> TopDownSolution:
        tracer = self.tracer
        if tracer is None:
            return self._solve(chain)
        tracer.begin("solve", solver="topdown", parallelism=self.parallelism)
        try:
            solution = self._solve(chain)
        except BaseException:
            tracer.end()
            raise
        tracer.end(
            n=solution.length,
            metric=self.metric.name,
            complete=solution.complete,
            computable=solution.computable,
            cells_evaluated=solution.cells_evaluated,
            cells_pruned=solution.cells_pruned,
            diagonals=solution.diagonals,
        )
        return solution

    def _solve(self, chain: ChainLike) -> TopDownSolution:
        factors, expression = _coerce_chain(chain)
        # Hash-cons the factors (see GMCAlgorithm._solve_factors): sub-chains
        # then share canonical nodes and inference memoizes by identity.
        factors = tuple(intern(factor) for factor in factors)
        checker = DeadlineChecker(self.deadline_s)
        work = WorkCounters()
        workers = resolve_worker_count(self.parallelism)
        if workers > 1:
            return self._solve_parallel(factors, expression, workers, checker, work)
        table: Dict[Tuple[int, int], _SubChain] = {}
        operands: Dict[Tuple[int, int], Matrix] = {}
        state = {"expired": False}

        def operand_for(i: int, j: int) -> Matrix:
            """The symbolic operand representing M[i..j] (leaf or temporary)."""
            if i == j:
                return factors[i]  # type: ignore[return-value]
            key = (i, j)
            if key not in operands:
                sub_chain = intern(Times(*factors[i : j + 1]))
                operands[key] = Temporary(
                    rows=sub_chain.rows,
                    columns=sub_chain.columns,
                    properties=infer_properties(sub_chain),
                    origin=sub_chain,
                )
            return operands[key]

        def lookup(i: int, j: int) -> object:
            """Minimal cost of computing M[i..j] (memoized)."""
            if i == j:
                return self.metric.zero
            key = (i, j)
            if key in table:
                return table[key].cost
            best = _SubChain(
                cost=self.metric.infinity,
                split=-1,
                kernel=None,
                substitution=None,
                expression=None,
                kernel_cost=self.metric.infinity,
                # Lazily filled below: dead cells never create a temporary.
                operand=None,
            )
            for k in range(i, j):
                # Deadline enforcement (``options.deadline_s``): checked at
                # every cell boundary of the memoized recursion (strided
                # clock reads, see DeadlineChecker); once the budget expires
                # every in-flight cell keeps its best-so-far decision and no
                # further split is explored.
                if state["expired"]:
                    break
                if checker.expired():
                    state["expired"] = True
                    break
                left_cost = lookup(i, k)
                right_cost = lookup(k + 1, j)
                # Uncomputability propagation: dead sub-chains never reach
                # kernel matching.
                if self.metric.is_infinite(left_cost) or self.metric.is_infinite(right_cost):
                    continue
                if self.prune and best.kernel is not None:
                    # Lower-bound pruning (see GMCAlgorithm): a split whose
                    # bound cannot beat the best-so-far is skipped before
                    # matching.
                    bound = self.metric.lower_bound(left_cost, right_cost)
                    if bound is not None and not bound < best.cost:
                        work.cells_pruned += 1
                        continue
                expr = Times(operand_for(i, k), operand_for(k + 1, j))
                choice = self._best_kernel(expr)
                if choice is None:
                    continue
                kernel, substitution, kernel_cost = choice
                cost = self.metric.combine(
                    self.metric.combine(left_cost, right_cost), kernel_cost
                )
                if cost < best.cost:
                    best = _SubChain(
                        cost=cost,
                        split=k,
                        kernel=kernel,
                        substitution=substitution,
                        expression=expr,
                        kernel_cost=kernel_cost,
                        operand=operand_for(i, j),
                    )
            table[key] = best
            work.cells_evaluated += 1
            return best.cost

        if self.tracer is None:
            lookup(0, len(factors) - 1)
        else:
            # The lazy recursion has no diagonal structure; one aggregate
            # span covers the whole memoized exploration.
            with self.tracer.span("memoized_recursion", n=len(factors)) as span:
                lookup(0, len(factors) - 1)
                span.attrs["cells_evaluated"] = work.cells_evaluated
                span.attrs["cells_pruned"] = work.cells_pruned
        solver_work_telemetry().record(work)
        return TopDownSolution(
            factors=factors,
            expression=expression,
            metric=self.metric,
            catalog=self.catalog,
            table=table,
            complete=not state["expired"],
            cells_evaluated=work.cells_evaluated,
            cells_pruned=work.cells_pruned,
            diagonals=work.diagonals,
        )

    def _solve_parallel(
        self,
        factors: Tuple[Expression, ...],
        expression: Expression,
        workers: int,
        checker: DeadlineChecker,
        work: WorkCounters,
    ) -> TopDownSolution:
        """Parallel tier: fill the memo table bottom-up by anti-diagonals.

        The lazy recursion has no independent work to hand a thread pool
        (every cell transitively awaits its sub-cells), so the parallel
        policy evaluates the same per-cell decision problem in bottom-up
        anti-diagonal order through the shared diagonal runner.  The table
        may gain entries the lazy exploration would have skipped; the
        optimal cost and kernel sequence are unchanged (the per-cell
        semantics are identical, see :mod:`repro.core.parallel`).
        """
        n = len(factors)
        metric = self.metric
        costs = [
            [metric.zero if i == j else metric.infinity for j in range(n)]
            for i in range(n)
        ]
        table: Dict[Tuple[int, int], _SubChain] = {}
        operands: Dict[Tuple[int, int], Matrix] = {}

        def operand(i: int, j: int) -> Matrix:
            if i == j:
                return factors[i]  # type: ignore[return-value]
            # Only committed (computable) cells are ever dereferenced: a
            # worker reaches (i, j) through a finite costs[i][j].
            return operands[(i, j)]

        def commit(i: int, j: int, entry) -> None:
            if entry is None:
                # Mirror the serial recursion: an explored cell with no
                # computable split still records its infinite best.
                table[(i, j)] = _SubChain(
                    cost=metric.infinity,
                    split=-1,
                    kernel=None,
                    substitution=None,
                    expression=None,
                    kernel_cost=metric.infinity,
                    operand=None,
                )
                return
            cost, k, (kernel, substitution, expr, kernel_cost) = entry
            sub_chain = intern(Times(*factors[i : j + 1]))
            cell_operand = Temporary(
                rows=sub_chain.rows,
                columns=sub_chain.columns,
                properties=infer_properties(sub_chain),
                origin=sub_chain,
            )
            operands[(i, j)] = cell_operand
            costs[i][j] = cost
            table[(i, j)] = _SubChain(
                cost=cost,
                split=k,
                kernel=kernel,
                substitution=substitution,
                expression=expr,
                kernel_cost=kernel_cost,
                operand=cell_operand,
            )

        # Signature-keyed decision memo (see GMCAlgorithm._fill_parallel);
        # None when signatures are untrusted, routing through the raw picker.
        memo = (
            make_decision_memo(self.catalog, metric, self._best_kernel)
            if self.use_match_cache
            else None
        )

        env = DiagonalEnv(
            n=n,
            costs=costs,
            metric=metric,
            prune=self.prune,
            best_kernel=self._best_kernel,
            decide_pair=memo.decide_pair if memo is not None else None,
            operand=operand,
            commit=commit,
        )
        complete = run_diagonals(
            env, get_backend(workers), checker, work, tracer=self.tracer
        )
        if memo is not None:
            work.memo_hits += memo.hits
            work.memo_misses += memo.misses
        if n > 1 and (0, n - 1) not in table:
            # Deadline expired before the top diagonal: keep the accessors
            # (optimal_cost/computable) total, exactly like the serial
            # recursion's always-stored top cell.
            table[(0, n - 1)] = _SubChain(
                cost=metric.infinity,
                split=-1,
                kernel=None,
                substitution=None,
                expression=None,
                kernel_cost=metric.infinity,
                operand=None,
            )
        solver_work_telemetry().record(work)
        return TopDownSolution(
            factors=factors,
            expression=expression,
            metric=metric,
            catalog=self.catalog,
            table=table,
            complete=complete,
            cells_evaluated=work.cells_evaluated,
            cells_pruned=work.cells_pruned,
            diagonals=work.diagonals,
        )

    def _best_kernel(
        self, expr: Expression
    ) -> Optional[Tuple[Kernel, Substitution, object]]:
        best: Optional[Tuple[Kernel, Substitution, object]] = None
        best_key: Optional[Tuple] = None
        for kernel, substitution in self.catalog.match(
            expr, use_cache=self.use_match_cache
        ):
            kernel_cost = self.metric.kernel_cost_cached(kernel, substitution)
            key = (kernel_cost, -len(kernel.pattern.constraints), kernel.id)
            if best_key is None or key < best_key:
                best_key = key
                best = (kernel, substitution, kernel_cost)
        return best

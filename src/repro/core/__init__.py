"""Chain algorithms: the classic matrix chain DP and the GMC algorithm.

* :mod:`repro.core.mcp` -- the standard matrix chain problem (Section 2):
  bottom-up DP, memoized DP, brute-force oracle, heuristics.
* :mod:`repro.core.gmc` -- the Generalized Matrix Chain algorithm
  (Section 3): the paper's contribution.
* :mod:`repro.core.segments` -- decomposition of assignment DAGs
  (multi-assignment programs, references, non-chain subtrees, shared
  subexpressions) into ordered chain segments the solvers accept.

Convenience functions
---------------------

:func:`solve_chain` and :func:`generate_program` wrap the most common use:
hand in an expression (or DSL text plus operand definitions), get back the
solved chain or the generated kernel program.
"""

from typing import Optional, Union

from ..algebra.expression import Expression
from ..cost.metrics import CostMetric
from ..kernels.catalog import KernelCatalog
from ..kernels.kernel import Program
from ..options import CompileOptions
from .gmc import GMCAlgorithm, GMCSolution, UncomputableChainError
from .segments import (
    ChainSegment,
    SegmentPlan,
    SegmentTelemetry,
    UncomputableSegmentError,
    decompose_program,
    segment_telemetry,
)
from .topdown import TopDownGMC, TopDownSolution
from .mcp import (
    MatrixChainDP,
    brute_force_optimal_cost,
    catalan_number,
    chin_heuristic,
    left_to_right_cost,
    matrix_chain_order,
    memoized_matrix_chain,
    parenthesization_cost,
    right_to_left_cost,
)


def make_solver(options: Optional[CompileOptions] = None):
    """Build the solver named by ``options.solver`` (the single place the
    solver-name -> class mapping lives; every entry point routes through it).
    """
    options = options if options is not None else CompileOptions()
    solver_cls = TopDownGMC if options.solver == "topdown" else GMCAlgorithm
    return solver_cls(options)


def _convenience_options(
    metric: Union[CostMetric, str, None],
    catalog: Optional[KernelCatalog],
    options: Optional[CompileOptions],
) -> CompileOptions:
    if options is not None:
        if metric is not None or catalog is not None:
            raise TypeError("pass either options or metric=/catalog=, not both")
        return options
    return CompileOptions(
        metric="flops" if metric is None else metric, catalog=catalog
    )


def solve_chain(
    chain: Expression,
    metric: Union[CostMetric, str, None] = None,
    catalog: Optional[KernelCatalog] = None,
    *,
    options: Optional[CompileOptions] = None,
) -> GMCSolution:
    """Solve a generalized matrix chain and return the full solution object."""
    return make_solver(_convenience_options(metric, catalog, options)).solve(chain)


def generate_program(
    chain: Expression,
    metric: Union[CostMetric, str, None] = None,
    catalog: Optional[KernelCatalog] = None,
    *,
    options: Optional[CompileOptions] = None,
) -> Program:
    """Solve a generalized matrix chain and return the optimal kernel program."""
    return make_solver(_convenience_options(metric, catalog, options)).generate(chain)


__all__ = [
    "GMCAlgorithm",
    "GMCSolution",
    "TopDownGMC",
    "TopDownSolution",
    "UncomputableChainError",
    "UncomputableSegmentError",
    "ChainSegment",
    "SegmentPlan",
    "SegmentTelemetry",
    "decompose_program",
    "segment_telemetry",
    "make_solver",
    "MatrixChainDP",
    "matrix_chain_order",
    "memoized_matrix_chain",
    "brute_force_optimal_cost",
    "parenthesization_cost",
    "catalan_number",
    "chin_heuristic",
    "left_to_right_cost",
    "right_to_left_cost",
    "solve_chain",
    "generate_program",
]

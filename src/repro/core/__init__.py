"""Chain algorithms: the classic matrix chain DP and the GMC algorithm.

* :mod:`repro.core.mcp` -- the standard matrix chain problem (Section 2):
  bottom-up DP, memoized DP, brute-force oracle, heuristics.
* :mod:`repro.core.gmc` -- the Generalized Matrix Chain algorithm
  (Section 3): the paper's contribution.

Convenience functions
---------------------

:func:`solve_chain` and :func:`generate_program` wrap the most common use:
hand in an expression (or DSL text plus operand definitions), get back the
solved chain or the generated kernel program.
"""

from typing import Optional, Union

from ..algebra.expression import Expression
from ..cost.metrics import CostMetric
from ..kernels.catalog import KernelCatalog
from ..kernels.kernel import Program
from .gmc import GMCAlgorithm, GMCSolution, UncomputableChainError
from .topdown import TopDownGMC, TopDownSolution
from .mcp import (
    MatrixChainDP,
    brute_force_optimal_cost,
    catalan_number,
    chin_heuristic,
    left_to_right_cost,
    matrix_chain_order,
    memoized_matrix_chain,
    parenthesization_cost,
    right_to_left_cost,
)


def solve_chain(
    chain: Expression,
    metric: Union[CostMetric, str, None] = None,
    catalog: Optional[KernelCatalog] = None,
) -> GMCSolution:
    """Solve a generalized matrix chain and return the full solution object."""
    return GMCAlgorithm(catalog=catalog, metric=metric).solve(chain)


def generate_program(
    chain: Expression,
    metric: Union[CostMetric, str, None] = None,
    catalog: Optional[KernelCatalog] = None,
) -> Program:
    """Solve a generalized matrix chain and return the optimal kernel program."""
    return GMCAlgorithm(catalog=catalog, metric=metric).generate(chain)


__all__ = [
    "GMCAlgorithm",
    "GMCSolution",
    "TopDownGMC",
    "TopDownSolution",
    "UncomputableChainError",
    "MatrixChainDP",
    "matrix_chain_order",
    "memoized_matrix_chain",
    "brute_force_optimal_cost",
    "parenthesization_cost",
    "catalan_number",
    "chin_heuristic",
    "left_to_right_cost",
    "right_to_left_cost",
    "solve_chain",
    "generate_program",
]

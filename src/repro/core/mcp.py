"""The standard matrix chain problem (MCP) and its classic algorithms.

Section 2 of the paper summarizes the textbook bottom-up dynamic programming
algorithm (Cormen et al.) that the GMC algorithm generalizes; this module
implements it together with several related algorithms that the paper's
related-work section mentions, so that they can be compared and used as
baselines and test oracles:

* :func:`matrix_chain_order` / :class:`MatrixChainDP` -- the O(n^3) bottom-up
  DP of Fig. 3.
* :func:`memoized_matrix_chain` -- the equivalent top-down memoized variant.
* :func:`brute_force_optimal_cost` -- exhaustive enumeration over all
  parenthesizations (Catalan-number many); the test oracle.
* :func:`chin_heuristic` -- Chin's O(n) near-optimal heuristic [Chin 1978],
  representative of the approximation algorithms cited in Section 1.2.
* :func:`left_to_right_cost` / :func:`right_to_left_cost` -- the evaluation
  orders used by Matlab/Julia-style libraries (Section 4).

All functions operate on the ``sizes`` array of the paper: for a chain of
``n`` matrices, ``sizes`` has ``n + 1`` entries and matrix ``i`` has shape
``sizes[i] x sizes[i+1]``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence, Tuple


def _validate_sizes(sizes: Sequence[int]) -> Tuple[int, ...]:
    if len(sizes) < 2:
        raise ValueError("a matrix chain needs at least one matrix (two sizes)")
    cleaned = tuple(int(s) for s in sizes)
    if any(s <= 0 for s in cleaned):
        raise ValueError(f"matrix dimensions must be positive, got {cleaned}")
    return cleaned


def product_flops(m: int, k: int, n: int) -> float:
    """FLOPs of a general ``(m x k) (k x n)`` product (paper footnote 2)."""
    return 2.0 * m * k * n


def matrix_chain_order(sizes: Sequence[int]) -> Tuple[List[List[float]], List[List[int]]]:
    """The bottom-up dynamic programming algorithm of Fig. 3.

    Returns the pair ``(costs, solution)`` where ``costs[i][j]`` is the
    minimal FLOP count for the sub-chain ``M[i..j]`` and ``solution[i][j]``
    is the optimal split point ``k``.
    """
    sizes = _validate_sizes(sizes)
    n = len(sizes) - 1
    costs = [[0.0 if i == j else math.inf for j in range(n)] for i in range(n)]
    solution = [[-1 for _ in range(n)] for _ in range(n)]
    for length in range(1, n):
        for i in range(0, n - length):
            j = i + length
            for k in range(i, j):
                split_cost = product_flops(sizes[i], sizes[k + 1], sizes[j + 1])
                cost = costs[i][k] + costs[k + 1][j] + split_cost
                if cost < costs[i][j]:
                    costs[i][j] = cost
                    solution[i][j] = k
    return costs, solution


def memoized_matrix_chain(sizes: Sequence[int]) -> float:
    """Top-down memoized variant; returns the optimal FLOP count."""
    sizes = _validate_sizes(sizes)
    n = len(sizes) - 1
    memo: Dict[Tuple[int, int], float] = {}

    def lookup(i: int, j: int) -> float:
        if i == j:
            return 0.0
        key = (i, j)
        if key in memo:
            return memo[key]
        best = math.inf
        for k in range(i, j):
            cost = (
                lookup(i, k)
                + lookup(k + 1, j)
                + product_flops(sizes[i], sizes[k + 1], sizes[j + 1])
            )
            best = min(best, cost)
        memo[key] = best
        return best

    return lookup(0, n - 1)


# ---------------------------------------------------------------------------
# Exhaustive enumeration (test oracle)
# ---------------------------------------------------------------------------

def catalan_number(n: int) -> int:
    """The number of distinct parenthesizations of a chain of ``n + 1`` factors."""
    return math.comb(2 * n, n) // (n + 1)


def enumerate_parenthesizations(i: int, j: int) -> Iterator[object]:
    """Yield every parenthesization of ``M[i..j]`` as a nested tuple tree.

    A leaf is the integer index of the matrix; an inner node is a pair
    ``(left_tree, right_tree)``.
    """
    if i == j:
        yield i
        return
    for k in range(i, j):
        for left in enumerate_parenthesizations(i, k):
            for right in enumerate_parenthesizations(k + 1, j):
                yield (left, right)


def _tree_cost(tree: object, sizes: Sequence[int]) -> Tuple[float, int, int]:
    if isinstance(tree, int):
        return 0.0, sizes[tree], sizes[tree + 1]
    left, right = tree
    left_cost, left_rows, left_cols = _tree_cost(left, sizes)
    right_cost, right_rows, right_cols = _tree_cost(right, sizes)
    if left_cols != right_rows:
        raise ValueError("non-conforming parenthesization tree")
    cost = left_cost + right_cost + product_flops(left_rows, left_cols, right_cols)
    return cost, left_rows, right_cols


def parenthesization_cost(tree: object, sizes: Sequence[int]) -> float:
    """FLOP count of evaluating the chain according to a specific tree."""
    return _tree_cost(tree, _validate_sizes(sizes))[0]


def brute_force_optimal_cost(sizes: Sequence[int]) -> float:
    """Optimal FLOP count by exhaustive enumeration (exponential; for tests)."""
    sizes = _validate_sizes(sizes)
    n = len(sizes) - 1
    best = math.inf
    for tree in enumerate_parenthesizations(0, n - 1):
        best = min(best, parenthesization_cost(tree, sizes))
    return best if n > 1 else 0.0


# ---------------------------------------------------------------------------
# Simple evaluation orders and heuristics
# ---------------------------------------------------------------------------

def left_to_right_cost(sizes: Sequence[int]) -> float:
    """Cost of the strictly left-to-right evaluation used by Matlab/Julia."""
    sizes = _validate_sizes(sizes)
    n = len(sizes) - 1
    cost = 0.0
    rows = sizes[0]
    cols = sizes[1]
    for index in range(1, n):
        cost += product_flops(rows, cols, sizes[index + 1])
        cols = sizes[index + 1]
    return cost


def right_to_left_cost(sizes: Sequence[int]) -> float:
    """Cost of the strictly right-to-left evaluation."""
    sizes = _validate_sizes(sizes)
    n = len(sizes) - 1
    cost = 0.0
    rows = sizes[n - 1]
    for index in range(n - 2, -1, -1):
        cost += product_flops(sizes[index], sizes[index + 1], sizes[n])
    return cost


def left_to_right_tree(n: int) -> object:
    """The parenthesization tree of left-to-right evaluation for ``n`` factors."""
    tree: object = 0
    for index in range(1, n):
        tree = (tree, index)
    return tree


def right_to_left_tree(n: int) -> object:
    tree: object = n - 1
    for index in range(n - 2, -1, -1):
        tree = (index, tree)
    return tree


def chin_heuristic(sizes: Sequence[int]) -> Tuple[float, object]:
    """A greedy near-optimal heuristic in the spirit of Chin [Chin 1978].

    The heuristic repeatedly multiplies the pair of adjacent matrices whose
    product is locally cheapest relative to the operand sizes it touches.
    It is exact on many practical chains and close to optimal otherwise;
    here it serves as a representative of the linear-time approximation
    algorithms discussed in the paper's related-work section.
    """
    sizes = list(_validate_sizes(sizes))
    n = len(sizes) - 1
    if n == 1:
        return 0.0, 0
    trees: List[object] = list(range(n))
    total = 0.0
    while len(trees) > 1:
        best_index = 0
        best_score = math.inf
        for index in range(len(trees) - 1):
            m, k, p = sizes[index], sizes[index + 1], sizes[index + 2]
            # Local benefit of eliminating dimension k now: the cost of the
            # product relative to the sizes of its operands.
            score = product_flops(m, k, p) / (m * k + k * p)
            if score < best_score:
                best_score = score
                best_index = index
        m, k, p = sizes[best_index], sizes[best_index + 1], sizes[best_index + 2]
        total += product_flops(m, k, p)
        trees[best_index : best_index + 2] = [(trees[best_index], trees[best_index + 1])]
        del sizes[best_index + 1]
    return total, trees[0]


# ---------------------------------------------------------------------------
# A friendly wrapper class
# ---------------------------------------------------------------------------

@dataclass
class MatrixChainDP:
    """Object-style interface to the classic matrix chain algorithm.

    >>> dp = MatrixChainDP([10, 100, 5, 50])
    >>> dp.optimal_cost
    7500.0
    >>> dp.parenthesization()
    '((M0 * M1) * M2)'
    """

    sizes: Sequence[int]
    costs: List[List[float]] = field(init=False, repr=False)
    solution: List[List[int]] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.sizes = _validate_sizes(self.sizes)
        self.costs, self.solution = matrix_chain_order(self.sizes)

    @property
    def length(self) -> int:
        return len(self.sizes) - 1

    @property
    def optimal_cost(self) -> float:
        if self.length == 1:
            return 0.0
        return self.costs[0][self.length - 1]

    def split(self, i: int, j: int) -> int:
        return self.solution[i][j]

    def parenthesization(self, names: Sequence[str] = ()) -> str:
        """Render the optimal parenthesization, e.g. ``((M0 * M1) * M2)``."""
        labels = list(names) if names else [f"M{i}" for i in range(self.length)]
        if len(labels) != self.length:
            raise ValueError("one name per chain factor is required")

        def render(i: int, j: int) -> str:
            if i == j:
                return labels[i]
            k = self.solution[i][j]
            return f"({render(i, k)} * {render(k + 1, j)})"

        return render(0, self.length - 1)

    def tree(self) -> object:
        """The optimal parenthesization as a nested tuple tree."""

        def build(i: int, j: int) -> object:
            if i == j:
                return i
            k = self.solution[i][j]
            return (build(i, k), build(k + 1, j))

        return build(0, self.length - 1)

    def multiplication_order(self) -> List[Tuple[int, int, int]]:
        """The product steps ``(i, k, j)`` in dependency order."""
        steps: List[Tuple[int, int, int]] = []

        def visit(i: int, j: int) -> None:
            if i == j:
                return
            k = self.solution[i][j]
            visit(i, k)
            visit(k + 1, j)
            steps.append((i, k, j))

        visit(0, self.length - 1)
        return steps

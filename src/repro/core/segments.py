"""Decomposition of assignment DAGs into ordered matrix-chain segments.

The GMC solvers (:mod:`repro.core.gmc`, :mod:`repro.core.topdown`) eat one
*matrix chain* at a time, but the programs the paper motivates -- the
ensemble Kalman filter, the generalized eigenproblem, Jacobian blocks of a
symbolic model -- are expression *DAGs*: several assignments, later
right-hand sides referencing earlier targets, and sub-expressions (inverses
of non-square products, shared sub-products) that no single chain can
express.  This module is the bridge: it normalizes an arbitrary assignment
DAG into an ordered list of :class:`ChainSegment` values, each of which *is*
a canonical chain the unchanged solvers accept.

Decomposition performs three rewrites, in one pass over the program:

* **reference resolution** -- a :class:`~repro.algebra.expression.Reference`
  leaf (the DSL's spelling of "use the result of an earlier assignment") is
  replaced by the producing segment's *result operand*: a
  :class:`~repro.algebra.expression.Temporary` named after the segment whose
  properties are **inferred** from the segment's chain, so downstream
  segments see e.g. the symmetry of ``H P H^T`` and match SYMM/SYSV kernels;
* **non-chain extraction** -- a unary operator around a product that cannot
  be pushed to the leaves (``(A B)^-1`` with non-square ``A``, ``B``) makes
  the inner product its own segment; the unary then wraps the segment's
  square result operand, which is a valid chain factor;
* **hash-consed common-subexpression identification** -- segments are keyed
  by their interned canonical chain (and source) expression; a sub-expression
  that appears again -- as a later assignment's right-hand side or inside
  another extraction -- reuses the existing segment's result operand instead
  of being solved twice.

Segments come out in dependency order (a segment only references results of
earlier segments), so the per-segment kernel programs concatenate into one
topologically ordered program (see
:meth:`repro.frontend.compiler.CompilationResult.stitched_program`).  Each
segment is solved independently, which is what lets every segment hit the
session's plan cache on its own signature -- the amortization lever for
structurally-sibling DAG traffic (Jacobian workloads).

The process-global :class:`SegmentTelemetry` joins the uniform ``stats()``
protocol (:mod:`repro.telemetry`, layer ``"segments"``): programs
decomposed, segments produced, synthetic segments, CSE reuses, and the
per-segment plan-cache hits/misses recorded by the compiler.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..algebra.dsl import Program as ParsedProgram
from ..algebra.expression import (
    Expression,
    Matrix,
    Reference,
    ShapeError,
    Temporary,
    signature_digest,
)
from ..algebra.inference import infer_properties
from ..algebra.interning import intern
from ..algebra.operators import Inverse, InverseTranspose, Plus, Times, Transpose
from ..algebra.simplify import NormalizationError, is_chain_factor, normalize
from .gmc import UncomputableChainError

__all__ = [
    "ChainSegment",
    "SegmentPlan",
    "UncomputableSegmentError",
    "decompose_program",
    "SegmentTelemetry",
    "segment_telemetry",
]

_UNARY_TYPES = (Transpose, Inverse, InverseTranspose)


class UncomputableSegmentError(UncomputableChainError):
    """DAG-level counterpart of :class:`UncomputableChainError`.

    Raised when a segment of a decomposed program cannot be computed --
    because its sub-expression has no kernel mapping (sums: no addition
    kernels are registered), because it references an undefined target, or
    because the chain solver reported the segment's chain uncomputable.  The
    message and the ``segment`` / ``signature`` attributes identify *which*
    segment and *which* name-abstracted sub-expression signature failed, not
    just a DP cell index.
    """


@dataclass
class ChainSegment:
    """One chain-shaped unit of work of a decomposed program.

    Attributes
    ----------
    target:
        Result name: the assignment target for user segments, a synthesized
        ``_sN`` name for extracted/CSE segments.
    expression:
        The canonical chain expression to solve.  Leaves are declared
        operands or result operands of *earlier* segments.
    source:
        The sub-expression as written (references unresolved) -- kept for
        diagnostics and reports.
    result:
        The operand later segments (and the stitched program) use for this
        segment's value: a named :class:`Temporary` with inferred properties
        for multi-factor chains, the single chain factor itself otherwise
        (trivial segments are aliases, not computations).
    synthetic:
        ``True`` for segments the decomposition created (extractions, CSE),
        ``False`` for user assignment targets.
    uses:
        How many later occurrences reused this segment's result through
        common-subexpression identification (references excluded for
        trivial segments -- an alias reuse saves no solve).
    """

    target: str
    expression: Expression
    source: Expression
    result: Expression
    synthetic: bool
    uses: int = 0

    @property
    def factors(self) -> Tuple[Expression, ...]:
        if isinstance(self.expression, Times):
            return self.expression.children
        return (self.expression,)

    @property
    def trivial(self) -> bool:
        """A single-factor segment: an alias, nothing for the DP to solve."""
        return len(self.factors) < 2

    def __str__(self) -> str:
        kind = "synthetic" if self.synthetic else "target"
        return f"segment {self.target} ({kind}): {self.expression}"


@dataclass
class SegmentPlan:
    """The ordered chain segments of one assignment program."""

    operands: Dict[str, Matrix]
    segments: List[ChainSegment] = field(default_factory=list)

    @property
    def targets(self) -> Tuple[str, ...]:
        """User assignment targets, in program order."""
        return tuple(s.target for s in self.segments if not s.synthetic)

    @property
    def synthetic_count(self) -> int:
        return sum(1 for s in self.segments if s.synthetic)

    @property
    def cse_reuses(self) -> int:
        """Total sub-expression occurrences served by an existing segment."""
        return sum(s.uses for s in self.segments)

    def segment(self, target: str) -> ChainSegment:
        """The segment producing *target* (latest definition wins)."""
        for seg in reversed(self.segments):
            if seg.target == target:
                return seg
        available = ", ".join(repr(s.target) for s in self.segments) or "<none>"
        raise KeyError(f"no segment {target!r}; available: {available}")

    def __iter__(self):
        return iter(self.segments)

    def __len__(self) -> int:
        return len(self.segments)


class _Decomposer:
    """One-pass DAG-to-segments rewriter (see module docstring)."""

    def __init__(self, program: ParsedProgram) -> None:
        self.operands: Dict[str, Matrix] = dict(program.operands)
        self.segments: List[ChainSegment] = []
        #: Latest segment per assignment target (reference resolution).
        self.by_target: Dict[str, ChainSegment] = {}
        #: Hash-consed CSE map: interned canonical (source or chain)
        #: expression -> producing segment.
        self.by_source: Dict[Expression, ChainSegment] = {}
        self._used_names = set(self.operands) | {t for t, _ in program.assignments}
        self._synth_counter = 0

    # ------------------------------------------------------------------- API
    def run(self, program: ParsedProgram) -> SegmentPlan:
        for target, expr in program.assignments:
            chain = self._chainify(expr, target)
            seg = self._make_segment(target, chain, expr, synthetic=False)
            self.by_target[target] = seg
        return SegmentPlan(operands=self.operands, segments=self.segments)

    # ------------------------------------------------------------- rewriting
    def _chainify(self, expr: Expression, target: str) -> Expression:
        """Rewrite *expr* into chain form, creating segments as needed."""
        reused = self._reuse(expr)
        if reused is not None:
            return reused
        if isinstance(expr, Reference):
            producer = self.by_target.get(expr.name)
            if producer is None:
                raise UncomputableSegmentError(
                    f"segment {target!r}: reference to undefined target "
                    f"{expr.name!r} (targets must be assigned before use)",
                    segment=target,
                )
            if not producer.trivial:
                producer.uses += 1
            return producer.result
        if isinstance(expr, Matrix):
            return expr
        if isinstance(expr, Plus):
            raise UncomputableSegmentError(
                f"segment {target!r}: sum sub-expression {expr} (signature "
                f"{signature_digest(expr)}) cannot be decomposed into matrix-"
                f"chain segments: no addition kernels are registered",
                segment=target,
                signature=expr.signature(),
            )
        if isinstance(expr, Times):
            return Times(*[self._chainify(child, target) for child in expr.children])
        if isinstance(expr, _UNARY_TYPES):
            inner = self._chainify(expr.operand, target)
            rebuilt = type(expr)(inner)
            pushed = self._push_down(rebuilt)
            if pushed is not None:
                return pushed
            # The unary cannot be distributed over the inner product (e.g.
            # ``(A B)^-1`` with non-square factors): the product becomes its
            # own segment and the unary wraps its square result operand.
            producer = self._extract(inner)
            return normalize(type(expr)(producer.result))
        raise UncomputableSegmentError(
            f"segment {target!r}: unsupported node {type(expr).__name__} in "
            f"{expr} (signature {signature_digest(expr)})",
            segment=target,
            signature=expr.signature(),
        )

    def _reuse(self, expr: Expression) -> Optional[Expression]:
        """The existing segment result for *expr*, when one was registered."""
        seg = self.by_source.get(intern(expr))
        if seg is None:
            return None
        if not seg.trivial:
            seg.uses += 1
        return seg.result

    @staticmethod
    def _push_down(rebuilt: Expression) -> Optional[Expression]:
        """Normalize *rebuilt*; ``None`` when it does not reach chain form."""
        try:
            normalized = normalize(rebuilt)
        except (ShapeError, NormalizationError):
            return None
        factors = (
            normalized.children if isinstance(normalized, Times) else (normalized,)
        )
        if all(is_chain_factor(f) for f in factors):
            return normalized
        return None

    def _extract(self, inner: Expression) -> ChainSegment:
        seg = self.by_source.get(intern(inner))
        if seg is not None:
            if not seg.trivial:
                seg.uses += 1
            return seg
        return self._make_segment(
            self._fresh_name(), inner, inner, synthetic=True
        )

    # ------------------------------------------------------------- segments
    def _make_segment(
        self, target: str, chain: Expression, source: Expression, synthetic: bool
    ) -> ChainSegment:
        factors = chain.children if isinstance(chain, Times) else (chain,)
        if len(factors) >= 2:
            result: Expression = Temporary(
                rows=chain.rows,
                columns=chain.columns,
                properties=infer_properties(intern(chain)),
                origin=chain,
                name=target,
            )
        else:
            result = factors[0]
        seg = ChainSegment(
            target=target,
            expression=chain,
            source=source,
            result=result,
            synthetic=synthetic,
        )
        self.segments.append(seg)
        if len(factors) >= 2:
            # Hash-consed CSE registration: later occurrences of either the
            # written form (references unresolved) or the canonical chain
            # reuse this segment's result instead of being solved again.
            self.by_source.setdefault(intern(source), seg)
            self.by_source.setdefault(intern(chain), seg)
        return seg

    def _fresh_name(self) -> str:
        while True:
            self._synth_counter += 1
            name = f"_s{self._synth_counter}"
            if name not in self._used_names:
                self._used_names.add(name)
                return name


def decompose_program(program: ParsedProgram) -> SegmentPlan:
    """Normalize an assignment DAG into ordered chain segments.

    Raises :class:`UncomputableSegmentError` for programs no segment plan can
    compute (sums, references to undefined targets).  Shape errors in the
    written expressions (e.g. inverting a genuinely non-square
    sub-expression) propagate as
    :class:`~repro.algebra.expression.ShapeError` exactly as they do from the
    expression constructors.
    """
    plan = _Decomposer(program).run(program)
    segment_telemetry().record_plan(plan)
    return plan


# ---------------------------------------------------------------------------
# Telemetry (uniform stats protocol, layer "segments").
# ---------------------------------------------------------------------------

class SegmentTelemetry:
    """Process-global counters of the DAG-decomposition pipeline.

    ``hits``/``misses`` are *per-segment plan-cache* outcomes as recorded by
    the compiler loop -- the plan-cache layer counts the same lookups from
    the cache's side; this layer scopes them to segment traffic and adds the
    decomposition shape counters (programs, segments, synthetic, CSE
    reuses).  Thread-safe: service workers decompose concurrently.
    """

    layer = "segments"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.programs = 0
        self.segments = 0
        self.synthetic = 0
        self.cse_reuses = 0
        self.hits = 0
        self.misses = 0

    def record_plan(self, plan: SegmentPlan) -> None:
        with self._lock:
            self.programs += 1
            self.segments += len(plan.segments)
            self.synthetic += plan.synthetic_count
            self.cse_reuses += plan.cse_reuses

    def record_lookup(self, hit: bool) -> None:
        with self._lock:
            if hit:
                self.hits += 1
            else:
                self.misses += 1

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        """Plain-dict counters (uniform cache-stats protocol)."""
        with self._lock:
            return {
                "layer": self.layer,
                "programs": self.programs,
                "segments": self.segments,
                "synthetic": self.synthetic,
                "cse_reuses": self.cse_reuses,
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": self.hit_rate,
            }

    def reset_stats(self) -> None:
        with self._lock:
            self.programs = 0
            self.segments = 0
            self.synthetic = 0
            self.cse_reuses = 0
            self.hits = 0
            self.misses = 0


_TELEMETRY = SegmentTelemetry()


def segment_telemetry() -> SegmentTelemetry:
    """The process-global :class:`SegmentTelemetry` instance."""
    return _TELEMETRY

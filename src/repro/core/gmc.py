"""The Generalized Matrix Chain (GMC) algorithm -- the paper's contribution.

The GMC algorithm (paper Section 3, Fig. 4) extends the classic matrix chain
dynamic program to chains whose factors may be transposed and/or inverted and
whose operands carry structural properties.  Instead of a single scalar cost
per product, every candidate split is mapped -- by syntactic pattern matching
against the kernel catalog -- to the set of kernels that can compute it, and
the metric-minimal kernel is chosen.  Properties are inferred symbolically
for every intermediate result so that specialized kernels remain applicable
deeper in the chain.

The implementation follows the pseudocode of Fig. 4 closely.  The DP tables
are:

``tmps[i][j]``
    The symbolic operand representing the sub-chain ``M[i..j]``: the wrapped
    input factor when ``i == j``, otherwise a
    :class:`~repro.algebra.expression.Temporary` annotated with the inferred
    properties of the sub-chain (``None`` for uncomputable cells, which
    never materialize a temporary).
``costs[i][j]``
    The minimal accumulated metric value for computing ``M[i..j]``.
``choices[i][j]``
    The kernel (and its substitution) chosen for the top-level operation of
    the optimal computation of ``M[i..j]``.
``splits[i][j]``
    The optimal split point ``k`` (the role of the ``s`` table in CLRS).

Deviations from the pseudocode, all discussed in the paper:

* property inference runs once per ``(i, j)`` cell (on the sub-chain
  expression) instead of once per split, realizing the ``O(n^3 + n^2 p)``
  refinement of Section 3.4; cells with no computable split skip it
  entirely (no temporary is materialized for a provably dead cell);
* the metric is arbitrary (Section 3.3), not hard-wired to FLOPs;
* when no kernel matches a split the split simply gets infinite cost; the
  chain as a whole is still solved when another parenthesization is
  computable (completeness discussion of Section 3.4);
* splits whose accumulated lower bound (:meth:`CostMetric.lower_bound` over
  the already-known sub-chain costs) cannot beat the cell's best-so-far are
  pruned before kernel matching -- a Hu/Shing-flavoured dominance reduction
  generalized to property-dependent kernel costs (disable with
  ``GMCAlgorithm(prune=False)`` to force the exhaustive reference loop).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple, Union

from ..algebra.expression import Expression, Matrix, Temporary, signature_digest
from ..algebra.inference import infer_properties
from ..algebra.interning import intern
from ..algebra.operators import Times
from ..algebra.simplify import as_chain, unary_decomposition
from ..cost.metrics import CostMetric
from ..kernels.catalog import KernelCatalog
from ..kernels.kernel import Kernel, KernelCall, Program
from ..matching.patterns import Substitution
from ..options import CompileOptions, warn_legacy
from .parallel import (
    DeadlineChecker,
    DiagonalEnv,
    WorkCounters,
    get_backend,
    make_decision_memo,
    resolve_worker_count,
    run_diagonals,
    solver_work_telemetry,
)

#: Sentinel distinguishing "argument not passed" from explicit ``None``.
_UNSET = object()


def coerce_solver_options(
    cls_name: str,
    options,
    metric,
    prune,
    catalog,
) -> CompileOptions:
    """Shared constructor shim of the solver classes.

    The canonical call-shape is ``Solver(CompileOptions(...))`` (or the bare
    ``Solver()``); the pre-options loose keywords ``catalog=/metric=/prune=``
    (and a positional catalog) still work through this shim but raise one
    :class:`DeprecationWarning` per construction.
    """
    if isinstance(options, KernelCatalog):  # legacy positional catalog
        catalog, options = options, None
    legacy = {
        name: value
        for name, value in (("catalog", catalog), ("metric", metric), ("prune", prune))
        if value is not _UNSET
    }
    if options is not None and legacy:
        raise TypeError(
            f"{cls_name}() takes either a CompileOptions object or the legacy "
            f"catalog=/metric=/prune= keywords, not both"
        )
    if legacy:
        warn_legacy(
            f"{cls_name}(catalog=..., metric=..., prune=...)",
            f"{cls_name}(CompileOptions(...))",
            stacklevel=4,
        )
        metric_value = legacy.get("metric")
        return CompileOptions(
            metric="flops" if metric_value is None else metric_value,
            catalog=legacy.get("catalog"),
            prune=True if legacy.get("prune") is None else legacy.get("prune", True),
        )
    if options is None:
        return CompileOptions()
    if not isinstance(options, CompileOptions):
        raise TypeError(f"expected CompileOptions, got {options!r}")
    return options


class UncomputableChainError(RuntimeError):
    """Raised when no parenthesization of the chain maps onto the catalog.

    Carries structured context alongside the message: ``segment`` names the
    chain segment of the enclosing program that failed (``None`` outside the
    DAG pipeline) and ``signature`` is the name-abstracted signature of the
    sub-expression that could not be computed, so callers can report *what*
    failed rather than a bare ``(i, j)`` cell index.
    """

    def __init__(
        self,
        message: str,
        *,
        segment: Optional[str] = None,
        signature: object = None,
    ) -> None:
        super().__init__(message)
        self.segment = segment
        self.signature = signature


def _uncomputable_message(solution) -> str:
    """Why a solution has no kernel sequence (catalog gap vs deadline).

    A deadline-truncated solve may be uncomputable merely because the
    budget expired before the top cell was reached (the bottom-up DP fills
    it last); blaming the catalog would mislead the caller into dropping a
    perfectly computable chain.
    """
    if not getattr(solution, "complete", True):
        return (
            f"deadline expired before a complete kernel sequence for "
            f"{solution.expression} was found (best-so-far tables returned, "
            f"complete=False); retry with a larger deadline_s"
        )
    return (
        f"no kernel sequence computes {solution.expression} (signature "
        f"{signature_digest(solution.expression)}) with catalog "
        f"{solution.catalog.name}"
    )


@dataclass
class _CellChoice:
    """The kernel decision recorded for one DP cell."""

    kernel: Kernel
    substitution: Substitution
    expression: Expression
    split: int
    kernel_cost: object


@dataclass
class GMCSolution:
    """The result of running the GMC algorithm on a chain.

    The solution gives access to the optimal cost, the chosen
    parenthesization, the kernel sequence (as a :class:`Program`) and the raw
    DP tables for inspection.
    """

    factors: Tuple[Expression, ...]
    expression: Expression
    metric: CostMetric
    catalog: KernelCatalog
    costs: List[List[object]] = field(repr=False)
    splits: List[List[int]] = field(repr=False)
    choices: List[List[Optional[_CellChoice]]] = field(repr=False)
    tmps: List[List[Optional[Matrix]]] = field(repr=False)
    generation_time: float = 0.0
    #: ``False`` when the per-request deadline (``options.deadline_s``)
    #: expired mid-solve: the tables hold the best-so-far state and cells
    #: past the cutoff were never evaluated.
    complete: bool = True
    #: Solver work counters (see :mod:`repro.core.parallel`): DP cells whose
    #: split loop ran to completion, split candidates skipped by the
    #: lower-bound prune, and anti-diagonals entered.
    cells_evaluated: int = 0
    cells_pruned: int = 0
    diagonals: int = 0

    # ------------------------------------------------------------------ info
    @property
    def length(self) -> int:
        return len(self.factors)

    @property
    def optimal_cost(self) -> object:
        """The metric value of the optimal solution (``inf`` if uncomputable)."""
        if self.length == 1:
            return self.metric.zero
        return self.costs[0][self.length - 1]

    @property
    def computable(self) -> bool:
        """Whether at least one parenthesization mapped onto the catalog."""
        return not self.metric.is_infinite(self.optimal_cost)

    @property
    def output(self) -> Optional[Matrix]:
        return self.tmps[0][self.length - 1]

    # ------------------------------------------------------- solution access
    def kernel_calls(self) -> List[KernelCall]:
        """The kernel calls of the optimal solution, in dependency order.

        The list is materialized from :meth:`construct_solution` once and
        reused by every consumer (:meth:`program`, :attr:`total_flops`,
        :meth:`kernel_sequence`), which previously each re-ran the recursion.
        """
        calls = getattr(self, "_calls_cache", None)
        if calls is None:
            calls = list(self.construct_solution())
            self._calls_cache = calls
        return calls

    def construct_solution(self, i: int = 0, j: Optional[int] = None) -> Iterator[KernelCall]:
        """Yield the kernel calls of the optimal solution in dependency order.

        This is the recursive generator of Fig. 7 of the paper; kernels for
        sub-chains are emitted before the kernel that consumes them.  Callers
        that only need the full list should prefer :meth:`kernel_calls`.
        """
        if j is None:
            j = self.length - 1
        if i == j:
            return
        if not self.computable:
            raise UncomputableChainError(
                _uncomputable_message(self),
                signature=self.expression.signature(),
            )
        choice = self.choices[i][j]
        if choice is None:  # pragma: no cover - guarded by ``computable``
            sub = Times(*self.factors[i : j + 1])
            raise UncomputableChainError(
                f"sub-chain M[{i}..{j}] = {sub} (signature "
                f"{signature_digest(sub)}) is not computable",
                signature=sub.signature(),
            )
        k = choice.split
        yield from self.construct_solution(i, k)
        yield from self.construct_solution(k + 1, j)
        yield KernelCall(
            kernel=choice.kernel,
            substitution=choice.substitution,
            output=self.tmps[i][j],
            expression=choice.expression,
            flops=choice.kernel.flops(choice.substitution),
            cost=choice.kernel_cost,
        )

    def program(self, strategy_name: str = "GMC") -> Program:
        """Materialize the optimal kernel sequence as a :class:`Program`."""
        return Program(
            calls=list(self.kernel_calls()),
            output=self.output,
            expression=self.expression,
            strategy=strategy_name,
        )

    @property
    def total_flops(self) -> float:
        """FLOP count of the chosen solution (regardless of the metric)."""
        return sum(call.flops for call in self.kernel_calls())

    def kernel_sequence(self) -> List[str]:
        """The kernel family names of the solution, in execution order."""
        return [call.kernel.display_name for call in self.kernel_calls()]

    def parenthesization(self) -> str:
        """Render the chosen parenthesization, e.g. ``(A^-1 * (B * C^T))``."""

        def render(i: int, j: int) -> str:
            if i == j:
                return str(self.factors[i])
            choice = self.choices[i][j]
            if choice is None:
                return "<uncomputable>"
            k = choice.split
            return f"({render(i, k)} * {render(k + 1, j)})"

        if self.length == 1:
            return str(self.factors[0])
        return render(0, self.length - 1)

    def __str__(self) -> str:
        lines = [
            f"GMC solution for {self.expression}",
            f"  metric:           {self.metric.name}",
            f"  computable:       {self.computable}",
            f"  optimal cost:     {self.optimal_cost}",
            f"  parenthesization: {self.parenthesization()}",
        ]
        if self.computable:
            lines.append(f"  kernels:          {' -> '.join(self.kernel_sequence())}")
        return "\n".join(lines)


ChainLike = Union[Expression, Sequence[Expression]]


class GMCAlgorithm:
    """The Generalized Matrix Chain algorithm (paper Fig. 4).

    The constructor takes one :class:`~repro.options.CompileOptions` value
    naming the catalog, metric, pruning and match-cache policy (and the
    deadline-budget placeholder); ``GMCAlgorithm()`` uses the defaults.  The
    pre-options loose keywords ``catalog=/metric=/prune=`` still work but
    are deprecated.

    ``options.prune`` skips splits whose lower-bounded accumulated cost
    (:meth:`CostMetric.lower_bound`) already meets or exceeds the cell's
    best-so-far, avoiding their kernel matching entirely.  The optimum is
    unaffected (the bound is sound for every metric that reports one);
    disable it to time or differentially test the exhaustive loop.
    ``options.match_cache`` controls whether ``catalog.match`` is served
    through the signature-keyed match cache.

    Example
    -------
    >>> from repro.algebra import Matrix, Property
    >>> A = Matrix("A", 10, 10, {Property.SPD})
    >>> B = Matrix("B", 10, 4)
    >>> gmc = GMCAlgorithm()
    >>> solution = gmc.solve(A.I * B)
    >>> solution.kernel_sequence()
    ['POSV']
    """

    def __init__(
        self,
        options: Optional[CompileOptions] = None,
        metric=_UNSET,
        prune=_UNSET,
        *,
        catalog=_UNSET,
    ) -> None:
        self.options = coerce_solver_options(
            type(self).__name__, options, metric, prune, catalog
        )
        self.catalog: KernelCatalog = self.options.resolve_catalog()
        self.metric: CostMetric = self.options.resolve_metric()
        self.prune: bool = self.options.prune
        self.use_match_cache: bool = self.options.match_cache
        self.deadline_s = self.options.deadline_s
        self.parallelism: str = self.options.parallelism
        #: Optional :class:`repro.obs.trace.Tracer` recording per-phase spans
        #: of every solve.  ``None`` (the default) keeps the DP loops on the
        #: untraced reference path -- the traced-off overhead the bench gate
        #: measures is one ``is None`` test per solve, never per cell.
        self.tracer = None

    # ------------------------------------------------------------------ API
    def solve(self, chain: ChainLike) -> GMCSolution:
        """Run the dynamic program on a chain and return its solution.

        The input may be an expression (it is normalized into chain form
        first) or an already-normalized sequence of chain factors.
        """
        factors, expression = _coerce_chain(chain)
        start = time.perf_counter()
        tracer = self.tracer
        if tracer is not None:
            tracer.begin(
                "solve",
                solver="gmc",
                n=len(factors),
                metric=self.metric.name,
                parallelism=self.parallelism,
            )
        solution = self._solve_factors(factors, expression)
        solution.generation_time = time.perf_counter() - start
        if tracer is not None:
            tracer.end(
                complete=solution.complete,
                computable=solution.computable,
                cells_evaluated=solution.cells_evaluated,
                cells_pruned=solution.cells_pruned,
                diagonals=solution.diagonals,
            )
        return solution

    def generate(self, chain: ChainLike, strategy_name: str = "GMC") -> Program:
        """Solve the chain and return the optimal kernel program.

        Raises :class:`UncomputableChainError` when the chain cannot be
        mapped onto the catalog.
        """
        solution = self.solve(chain)
        if not solution.computable:
            raise UncomputableChainError(
                _uncomputable_message(solution),
                signature=solution.expression.signature(),
            )
        return solution.program(strategy_name)

    # ------------------------------------------------------------ internals
    def _solve_factors(
        self, factors: Tuple[Expression, ...], expression: Expression
    ) -> GMCSolution:
        # Hash-cons the chain factors so that every sub-chain built below
        # shares canonical nodes; the memoized property inference (and every
        # other expression-keyed cache) then hits by object identity.
        factors = tuple(intern(factor) for factor in factors)
        n = len(factors)
        metric = self.metric
        costs: List[List[object]] = [
            [metric.zero if i == j else metric.infinity for j in range(n)] for i in range(n)
        ]
        splits = [[-1 for _ in range(n)] for _ in range(n)]
        choices: List[List[Optional[_CellChoice]]] = [[None for _ in range(n)] for _ in range(n)]
        tmps: List[List[Optional[Matrix]]] = [[None for _ in range(n)] for _ in range(n)]

        for i, factor in enumerate(factors):
            tmps[i][i] = factor  # type: ignore[assignment]

        checker = DeadlineChecker(self.deadline_s)
        work = WorkCounters()
        workers = resolve_worker_count(self.parallelism)
        tracer = self.tracer
        if workers > 1:
            complete = self._fill_parallel(
                factors, n, costs, splits, choices, tmps, checker, work, workers
            )
        elif tracer is None:
            complete = self._fill_serial(
                factors, n, costs, splits, choices, tmps, checker, work
            )
        else:
            # Traced solves run the identical reference loop one diagonal at
            # a time so each anti-diagonal gets its own span; the untraced
            # branch above never pays for this.
            complete = self._fill_serial_traced(
                factors, n, costs, splits, choices, tmps, checker, work, tracer
            )
        solver_work_telemetry().record(work)

        return GMCSolution(
            factors=factors,
            expression=expression,
            metric=metric,
            catalog=self.catalog,
            costs=costs,
            splits=splits,
            choices=choices,
            tmps=tmps,
            complete=complete,
            cells_evaluated=work.cells_evaluated,
            cells_pruned=work.cells_pruned,
            diagonals=work.diagonals,
        )

    def _fill_serial(
        self, factors, n, costs, splits, choices, tmps, checker, work, lengths=None
    ) -> bool:
        """The serial reference loop (paper Fig. 4, exactly as before).

        This path is deliberately left as the ascending-``k`` reference
        implementation: the parallel tier (:meth:`_fill_parallel`) is
        asserted bit-identical against it, diagonal by diagonal.

        *lengths* restricts the fill to the given anti-diagonals (the traced
        wrapper runs one at a time); ``None`` fills all of them.
        """
        metric = self.metric
        prune = self.prune
        complete = True
        for length in range(1, n) if lengths is None else lengths:
            if not complete:
                break
            # Anti-diagonal ``length``: the work queue of independent cells
            # (i, i + length); the serial tier drains it in ascending i.
            work.diagonals += 1
            for i in range(0, n - length):
                # Deadline enforcement (``options.deadline_s``): checked at
                # every cell boundary (strided clock reads, see
                # DeadlineChecker), so an expired budget abandons the
                # remaining cells and returns the best-so-far tables marked
                # ``complete=False`` instead of silently ignoring the budget.
                if checker.expired():
                    complete = False
                    break
                j = i + length
                work.cells_evaluated += 1
                best_cost = costs[i][j]
                best_choice: Optional[_CellChoice] = None
                for k in range(i, j):
                    left_cost = costs[i][k]
                    right_cost = costs[k + 1][j]
                    # Uncomputability propagation: a split over a dead
                    # sub-chain is dead; it never reaches kernel matching.
                    if metric.is_infinite(left_cost) or metric.is_infinite(right_cost):
                        continue
                    if prune and best_choice is not None:
                        # The accumulated cost of this split is at least the
                        # lower bound; when that already fails to beat the
                        # best-so-far, matching cannot change the outcome.
                        bound = metric.lower_bound(left_cost, right_cost)
                        if bound is not None and not bound < best_cost:
                            work.cells_pruned += 1
                            continue
                    expr = Times(tmps[i][k], tmps[k + 1][j])
                    matched = self._best_kernel(expr)
                    if matched is None:
                        continue
                    kernel, substitution, kernel_cost = matched
                    cost = metric.combine(metric.combine(left_cost, right_cost), kernel_cost)
                    if cost < best_cost:
                        best_cost = cost
                        best_choice = _CellChoice(
                            kernel=kernel,
                            substitution=substitution,
                            expression=expr,
                            split=k,
                            kernel_cost=kernel_cost,
                        )
                if best_choice is not None:
                    self._commit_cell(
                        factors, costs, splits, choices, tmps, i, j, best_cost, best_choice
                    )
        return complete

    def _fill_serial_traced(
        self, factors, n, costs, splits, choices, tmps, checker, work, tracer
    ) -> bool:
        """Traced serial fill: the reference loop, one diagonal per span.

        Each anti-diagonal gets a ``diagonal`` span carrying the
        cells-evaluated / cells-pruned deltas, plus aggregate
        ``kernel_matching`` and ``inference`` child phases accumulated from
        per-cell timing wrappers (installed as instance attributes for the
        duration of this fill only, so untraced solves never see them).
        """
        phase = {"match": 0.0, "infer": 0.0}
        base_best = self._best_kernel
        base_commit = self._commit_cell
        clock = time.perf_counter

        def timed_best(expr):
            started = clock()
            try:
                return base_best(expr)
            finally:
                phase["match"] += clock() - started

        def timed_commit(*args):
            started = clock()
            try:
                return base_commit(*args)
            finally:
                phase["infer"] += clock() - started

        self._best_kernel = timed_best  # type: ignore[method-assign]
        self._commit_cell = timed_commit  # type: ignore[method-assign]
        complete = True
        try:
            with tracer.span("dp_fill", n=n):
                for length in range(1, n):
                    cells0 = work.cells_evaluated
                    pruned0 = work.cells_pruned
                    phase["match"] = phase["infer"] = 0.0
                    span = tracer.begin("diagonal", length=length)
                    complete = self._fill_serial(
                        factors,
                        n,
                        costs,
                        splits,
                        choices,
                        tmps,
                        checker,
                        work,
                        lengths=(length,),
                    )
                    tracer.end(
                        cells_evaluated=work.cells_evaluated - cells0,
                        cells_pruned=work.cells_pruned - pruned0,
                    )
                    tracer.add_phase(
                        span, "kernel_matching", span.start, phase["match"]
                    )
                    tracer.add_phase(
                        span, "inference", span.start + phase["match"], phase["infer"]
                    )
                    if not complete:
                        break
        finally:
            del self._best_kernel
            del self._commit_cell
        return complete

    def _fill_parallel(
        self, factors, n, costs, splits, choices, tmps, checker, work, workers
    ) -> bool:
        """Dispatch each anti-diagonal across the parallel backend.

        Cell tasks only read table state committed by previous diagonals;
        commits happen on this thread, in ascending ``i`` order, after the
        diagonal's queue has drained -- so the tables never hold a
        half-written cell (see :mod:`repro.core.parallel` for why the
        result is bit-identical to :meth:`_fill_serial`).
        """

        def operand(i: int, j: int):
            return tmps[i][j]

        def commit(i: int, j: int, entry) -> None:
            if entry is None:
                return
            best_cost, k, (kernel, substitution, expr, kernel_cost) = entry
            best_choice = _CellChoice(
                kernel=kernel,
                substitution=substitution,
                expression=expr,
                split=k,
                kernel_cost=kernel_cost,
            )
            self._commit_cell(
                factors, costs, splits, choices, tmps, i, j, best_cost, best_choice
            )

        # Memoize whole kernel decisions by split signature (sound under
        # the same conditions as the match cache; the factory returns None
        # otherwise, routing every split through the raw picker).
        memo = (
            make_decision_memo(self.catalog, self.metric, self._best_kernel)
            if self.use_match_cache
            else None
        )

        env = DiagonalEnv(
            n=n,
            costs=costs,
            metric=self.metric,
            prune=self.prune,
            best_kernel=self._best_kernel,
            decide_pair=memo.decide_pair if memo is not None else None,
            operand=operand,
            commit=commit,
        )
        complete = run_diagonals(
            env, get_backend(workers), checker, work, tracer=self.tracer
        )
        if memo is not None:
            work.memo_hits += memo.hits
            work.memo_misses += memo.misses
        return complete

    def _commit_cell(
        self, factors, costs, splits, choices, tmps, i, j, best_cost, best_choice
    ) -> None:
        # Properties of M[i..j] do not depend on the split, so the
        # temporary (and its property inference) is created once per
        # *computable* cell -- the O(n^2 p) refinement of Section 3.4;
        # dead cells never pay inference.  The sub-chain is interned so
        # inference memoizes per canonical node across cells (and
        # repeated solves).
        sub_chain = intern(Times(*factors[i : j + 1]))
        costs[i][j] = best_cost
        splits[i][j] = best_choice.split
        choices[i][j] = best_choice
        tmps[i][j] = Temporary(
            rows=sub_chain.rows,
            columns=sub_chain.columns,
            properties=infer_properties(sub_chain),
            origin=sub_chain,
        )

    def _best_kernel(
        self, expr: Expression
    ) -> Optional[Tuple[Kernel, Substitution, object]]:
        """All kernels matching *expr*, reduced to the metric-minimal one.

        Ties are broken in favour of the kernel with more constraints (the
        more specialized routine) and then by identifier for determinism.
        """
        best: Optional[Tuple[Kernel, Substitution, object]] = None
        best_key: Optional[Tuple] = None
        for kernel, substitution in self.catalog.match(
            expr, use_cache=self.use_match_cache
        ):
            kernel_cost = self.metric.kernel_cost_cached(kernel, substitution)
            key = (kernel_cost, -len(kernel.pattern.constraints), kernel.id)
            if best_key is None or key < best_key:
                best_key = key
                best = (kernel, substitution, kernel_cost)
        return best


def _coerce_chain(chain: ChainLike) -> Tuple[Tuple[Expression, ...], Expression]:
    """Normalize the user input into ``(factors, expression)``."""
    if isinstance(chain, Expression):
        factors = as_chain(chain)
    else:
        factors = tuple(chain)
        for factor in factors:
            if not isinstance(factor, Expression):
                raise TypeError(f"chain factor {factor!r} is not an Expression")
        factors = as_chain(Times(*factors)) if len(factors) > 1 else as_chain(factors[0])
    if not factors:
        raise ValueError("empty chain")
    for factor in factors:
        # ``as_chain`` has already validated the shape of every factor, but a
        # defensive decomposition surfaces unexpected nodes early.
        unary_decomposition(factor)
    expression = Times(*factors) if len(factors) > 1 else factors[0]
    return factors, expression

"""A small textual front-end implementing the grammars of Fig. 1 and Fig. 2.

The paper's compiler (Linnea) accepts two pieces of input: operand
*definitions* (name, size and properties, Fig. 2) and *assignments* whose
right-hand sides are linear-algebra expressions (Fig. 1).  This module
provides an equivalent textual front-end so that examples, tests and the
benchmark harness can state problems the way the paper writes them::

    Matrix A (1000, 1000) <SPD>
    Matrix B (1000, 500) <>
    Matrix C (500, 500) <LowerTriangular>

    X := A^-1 * B * C^T

Grammar (informal)::

    program     ->  (definition | assignment | blank)*
    definition  ->  ("Matrix" | "Vector") NAME "(" INT ["," INT] ")" ["<" properties ">"]
    properties  ->  [NAME ("," NAME)*]
    assignment  ->  NAME ":=" expr
    expr        ->  term ("+" term)*
    term        ->  factor ("*" factor)*
    factor      ->  atom postfix*
    postfix     ->  "^T" | "^-1" | "^-T" | "'"
    atom        ->  NAME | "(" expr ")" | "trans(" expr ")" | "inv(" expr ")"

The parser produces :class:`~repro.algebra.expression.Matrix` leaves and the
operator nodes of :mod:`repro.algebra.operators`; it performs shape checking
through the expression constructors.

**Multi-assignment programs.**  A program may contain several assignments,
and the right-hand side of a later assignment may name an earlier target::

    Matrix Yb (300, 60) <>
    Matrix R (300, 300) <SPD>
    Matrix Xb (400, 60) <>
    Matrix S (60, 60) <SPD>

    W := S * Yb^T * R^-1
    K := Xb * W

Such a use parses to a :class:`~repro.algebra.expression.Reference` leaf
(name + shape of the defining expression); the segment-decomposition layer
(:mod:`repro.core.segments`) later replaces it with the producing segment's
result operand, inferred properties included.  Targets must be defined on an
earlier line than any use (use-before-definition and self-reference are
parse errors), targets may not shadow declared operands, and reassigning a
target makes later references see the latest definition.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from .expression import Expression, Matrix, Reference, Vector
from .operators import Inverse, InverseTranspose, Plus, Times, Transpose
from .properties import Property, PropertyError, parse_property


class ParseError(ValueError):
    """Raised on any syntax or semantic error in DSL input."""

    def __init__(self, message: str, line: Optional[int] = None) -> None:
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)
        self.line = line


# ---------------------------------------------------------------------------
# Tokenizer
# ---------------------------------------------------------------------------

_TOKEN_SPEC = [
    ("ASSIGN", r":="),
    ("INVTRANS", r"\^-T"),
    ("INV", r"\^-1"),
    ("TRANS", r"\^T|'"),
    ("NUMBER", r"\d+"),
    ("NAME", r"[A-Za-z_][A-Za-z_0-9]*"),
    ("LPAREN", r"\("),
    ("RPAREN", r"\)"),
    ("LANGLE", r"<"),
    ("RANGLE", r">"),
    ("COMMA", r","),
    ("PLUS", r"\+"),
    ("STAR", r"\*"),
    ("SKIP", r"[ \t]+"),
    ("COMMENT", r"#[^\n]*"),
    ("MISMATCH", r"."),
]

_TOKEN_RE = re.compile("|".join(f"(?P<{name}>{pattern})" for name, pattern in _TOKEN_SPEC))


@dataclass(frozen=True)
class Token:
    kind: str
    text: str
    line: int


def tokenize(line: str, line_number: int) -> List[Token]:
    """Tokenize a single DSL line."""
    tokens: List[Token] = []
    for match in _TOKEN_RE.finditer(line):
        kind = match.lastgroup or "MISMATCH"
        text = match.group()
        if kind in ("SKIP", "COMMENT"):
            continue
        if kind == "MISMATCH":
            raise ParseError(f"unexpected character {text!r}", line_number)
        tokens.append(Token(kind, text, line_number))
    return tokens


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------

@dataclass
class Program:
    """The result of parsing a DSL program."""

    operands: Dict[str, Matrix] = field(default_factory=dict)
    assignments: List[Tuple[str, Expression]] = field(default_factory=list)

    def expression(self, name: Optional[str] = None) -> Expression:
        """Return the right-hand side of an assignment.

        Without a *name*, the single assignment of the program is returned;
        an error is raised when there are zero or multiple assignments.
        """
        if name is None:
            if len(self.assignments) != 1:
                raise ParseError(
                    f"expected exactly one assignment, found {len(self.assignments)}"
                )
            return self.assignments[0][1]
        for target, expr in self.assignments:
            if target == name:
                return expr
        raise KeyError(name)


class _LineParser:
    """Recursive-descent parser over the token list of one expression.

    *targets* maps already-assigned target names to their right-hand sides;
    a ``NAME`` that is not an operand but is a known target parses to a
    :class:`~repro.algebra.expression.Reference` leaf carrying the target's
    shape (multi-assignment programs: later assignments may use earlier
    results).  Targets assigned on *later* lines are unknown here by
    construction, so use-before-definition is a parse error.
    """

    def __init__(
        self,
        tokens: List[Token],
        operands: Dict[str, Matrix],
        line: int,
        targets: Optional[Dict[str, Expression]] = None,
    ) -> None:
        self._tokens = tokens
        self._operands = operands
        self._targets = targets if targets is not None else {}
        self._line = line
        self._position = 0

    # -- token helpers ------------------------------------------------------
    def _peek(self) -> Optional[Token]:
        if self._position < len(self._tokens):
            return self._tokens[self._position]
        return None

    def _next(self) -> Token:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of line", self._line)
        self._position += 1
        return token

    def _expect(self, kind: str) -> Token:
        token = self._next()
        if token.kind != kind:
            raise ParseError(f"expected {kind}, found {token.text!r}", self._line)
        return token

    def at_end(self) -> bool:
        return self._peek() is None

    # -- grammar ------------------------------------------------------------
    def parse_expression(self) -> Expression:
        terms = [self.parse_term()]
        while self._peek() is not None and self._peek().kind == "PLUS":
            self._next()
            terms.append(self.parse_term())
        if len(terms) == 1:
            return terms[0]
        return Plus(*terms)

    def parse_term(self) -> Expression:
        factors = [self.parse_factor()]
        while True:
            token = self._peek()
            if token is not None and token.kind == "STAR":
                self._next()
                factors.append(self.parse_factor())
            elif token is not None and token.kind in ("NAME", "LPAREN"):
                # Implicit multiplication: "A B" or "A(B + C)".
                factors.append(self.parse_factor())
            else:
                break
        if len(factors) == 1:
            return factors[0]
        return Times(*factors)

    def parse_factor(self) -> Expression:
        expr = self.parse_atom()
        while True:
            token = self._peek()
            if token is None:
                break
            if token.kind == "TRANS":
                self._next()
                expr = Transpose(expr)
            elif token.kind == "INV":
                self._next()
                expr = Inverse(expr)
            elif token.kind == "INVTRANS":
                self._next()
                expr = InverseTranspose(expr)
            else:
                break
        return expr

    def parse_atom(self) -> Expression:
        token = self._next()
        if token.kind == "LPAREN":
            expr = self.parse_expression()
            self._expect("RPAREN")
            return expr
        if token.kind == "NAME":
            lowered = token.text.lower()
            if lowered in ("inv", "trans") and self._peek() is not None and self._peek().kind == "LPAREN":
                self._next()
                inner = self.parse_expression()
                self._expect("RPAREN")
                return Inverse(inner) if lowered == "inv" else Transpose(inner)
            if token.text in self._operands:
                return self._operands[token.text]
            if token.text in self._targets:
                defining = self._targets[token.text]
                return Reference(
                    token.text, defining.rows, defining.columns, origin=defining
                )
            raise ParseError(
                f"undefined operand {token.text!r} (operands must be declared "
                f"and assignment targets defined on an earlier line before "
                f"they can be referenced)",
                self._line,
            )
        raise ParseError(f"unexpected token {token.text!r}", self._line)


def parse_program(source: str) -> Program:
    """Parse a full DSL program (definitions followed by assignments)."""
    program = Program()
    for line_number, raw_line in enumerate(source.splitlines(), start=1):
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        tokens = tokenize(line, line_number)
        if not tokens:
            continue
        head = tokens[0]
        if head.kind == "NAME" and head.text in ("Matrix", "Vector"):
            _parse_definition(tokens, program, line_number)
        else:
            _parse_assignment(tokens, program, line_number)
    return program


def parse_expression(source: str, operands: Dict[str, Matrix]) -> Expression:
    """Parse a single expression against an existing operand dictionary."""
    tokens = tokenize(source, 1)
    parser = _LineParser(tokens, operands, 1)
    expr = parser.parse_expression()
    if not parser.at_end():
        raise ParseError("trailing input after expression", 1)
    return expr


def _parse_definition(tokens: List[Token], program: Program, line: int) -> None:
    iterator: Iterator[Token] = iter(tokens)
    kind_token = next(iterator)
    parser = _LineParser(tokens[1:], program.operands, line)
    name = parser._expect("NAME").text
    parser._expect("LPAREN")
    rows = int(parser._expect("NUMBER").text)
    columns: Optional[int] = None
    token = parser._next()
    if token.kind == "COMMA":
        columns = int(parser._expect("NUMBER").text)
        parser._expect("RPAREN")
    elif token.kind != "RPAREN":
        raise ParseError(f"expected ',' or ')', found {token.text!r}", line)
    properties = set()
    if not parser.at_end():
        parser._expect("LANGLE")
        while True:
            token = parser._next()
            if token.kind == "RANGLE":
                break
            if token.kind == "COMMA":
                continue
            if token.kind != "NAME":
                raise ParseError(f"expected property name, found {token.text!r}", line)
            if token.text.lower() in ("general", "none", "full"):
                continue
            try:
                properties.add(parse_property(token.text))
            except PropertyError as exc:
                raise ParseError(str(exc), line) from exc
        if not parser.at_end():
            raise ParseError("trailing input after property list", line)
    if name in program.operands:
        raise ParseError(f"operand {name!r} defined twice", line)
    if kind_token.text == "Vector":
        if columns is not None and columns != 1:
            operand: Matrix = Matrix(name, rows, columns, properties)
        else:
            operand = Vector(name, rows, properties)
    else:
        if columns is None:
            columns = rows
        operand = Matrix(name, rows, columns, properties)
    program.operands[name] = operand


def _parse_assignment(tokens: List[Token], program: Program, line: int) -> None:
    if len(tokens) < 3 or tokens[0].kind != "NAME" or tokens[1].kind != "ASSIGN":
        raise ParseError("expected 'name := expression' or an operand definition", line)
    target = tokens[0].text
    if target in program.operands:
        raise ParseError(
            f"assignment target {target!r} collides with an operand "
            f"definition; assignment results and declared operands share one "
            f"namespace",
            line,
        )
    # Earlier targets are referenceable from this right-hand side (for a
    # reassigned target the *latest* definition wins, matching sequential
    # assignment semantics).  The target itself is deliberately absent while
    # its own right-hand side parses, so self-references are parse errors.
    targets = {name: expr for name, expr in program.assignments}
    parser = _LineParser(tokens[2:], program.operands, line, targets=targets)
    expr = parser.parse_expression()
    if not parser.at_end():
        raise ParseError("trailing input after expression", line)
    program.assignments.append((target, expr))

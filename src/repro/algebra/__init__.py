"""Symbolic linear-algebra expression language.

This package is the expression substrate of the reproduction: matrices and
vectors annotated with structural properties, the operators of the Linnea
grammar (product, sum, transpose, inverse, inverse-transpose), symbolic
property inference, normalization to canonical chain form and a small
textual DSL front-end.
"""

from .expression import (
    Expression,
    IdentityMatrix,
    Matrix,
    Reference,
    ShapeError,
    Temporary,
    Vector,
    ZeroMatrix,
    signature_digest,
    signature_repr,
)
from .inference import (
    PropertyInference,
    clear_inference_cache,
    has_property,
    has_property_legacy,
    infer_properties,
    infer_properties_legacy,
    inference_engine,
    is_diagonal,
    is_lower_triangular,
    is_spd,
    is_symmetric,
    is_upper_triangular,
    legacy_inference,
    properties_after_inverse,
    properties_after_transpose,
)
from .interning import (
    ExpressionInterner,
    clear_intern_table,
    default_interner,
    intern,
    interning_disabled,
)
from .operators import Inverse, InverseTranspose, Plus, Times, Transpose
from .properties import Property, PropertyError, closure, implies, parse_property
from .simplify import (
    NormalizationError,
    as_chain,
    is_chain_factor,
    normalize,
    unary_decomposition,
    wrap_leaf,
)
from .dsl import ParseError, Program, parse_expression, parse_program

__all__ = [
    "Expression",
    "Matrix",
    "Vector",
    "IdentityMatrix",
    "ZeroMatrix",
    "Temporary",
    "Reference",
    "ShapeError",
    "signature_digest",
    "signature_repr",
    "Times",
    "Plus",
    "Transpose",
    "Inverse",
    "InverseTranspose",
    "Property",
    "PropertyError",
    "closure",
    "implies",
    "parse_property",
    "infer_properties",
    "infer_properties_legacy",
    "has_property",
    "has_property_legacy",
    "PropertyInference",
    "inference_engine",
    "legacy_inference",
    "clear_inference_cache",
    "ExpressionInterner",
    "intern",
    "default_interner",
    "interning_disabled",
    "clear_intern_table",
    "is_lower_triangular",
    "is_upper_triangular",
    "is_diagonal",
    "is_symmetric",
    "is_spd",
    "properties_after_transpose",
    "properties_after_inverse",
    "normalize",
    "as_chain",
    "is_chain_factor",
    "unary_decomposition",
    "wrap_leaf",
    "NormalizationError",
    "ParseError",
    "Program",
    "parse_program",
    "parse_expression",
]

"""Hash-consing of symbolic expressions.

Expressions are immutable and compared structurally, which means the GMC
dynamic program, the baseline simulators and the pattern matcher repeatedly
build *structurally equal but distinct* objects -- the same sub-chain
``Times(A, B, C)`` is reconstructed for every DP cell that contains it, and
masked operand copies recur across baseline builds.  Hash consing (the
standard interning technique of symbolic and compiler systems) maps every
expression to one canonical representative, so that

* structurally equal subtrees become the *same* object, turning deep
  structural equality checks into pointer comparisons (``Expression.__eq__``
  short-circuits on identity), and
* caches keyed by expressions -- most importantly the memoized property
  inference of :mod:`repro.algebra.inference` -- hit by identity instead of
  re-walking trees.

The canonical table is keyed by structural equality, which is cheap here
because every node caches its hash and identity key at construction time
(:meth:`Expression._prime_identity_cache`).

Interning is *optional*: nothing in the algebra layer requires canonical
nodes, and :func:`interning_disabled` turns the construction path into the
identity function (used by benchmarks to measure the legacy behaviour).
"""

from __future__ import annotations

from collections import OrderedDict
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

from .expression import Expression
from .operators import Inverse, InverseTranspose, Plus, Times, Transpose

__all__ = [
    "ExpressionInterner",
    "default_interner",
    "intern",
    "interning_disabled",
    "clear_intern_table",
]


class ExpressionInterner:
    """A canonical table mapping expressions to unique representatives.

    ``intern`` returns the canonical object for an expression, registering it
    (with canonicalized children) on first sight.  The table is an LRU: a
    lookup refreshes the entry, and when the table is full the least recently
    used representative is evicted.  Evicting a canonical node is always
    safe -- a later structurally equal expression simply becomes the new
    representative of its class, and stale references held by parents still
    compare equal structurally -- so a long-running service keeps its hot
    working set shared instead of periodically losing *all* sharing to the
    wholesale reset this table used to perform.
    """

    def __init__(self, max_entries: int = 1_000_000) -> None:
        self._table: "OrderedDict[Expression, Expression]" = OrderedDict()
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._table)

    def clear(self) -> None:
        self._table.clear()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, object]:
        """Plain-dict counters (uniform cache-stats protocol)."""
        return {
            "layer": "interner",
            "size": len(self._table),
            "max_entries": self.max_entries,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "evictions": self.evictions,
        }

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def intern(self, expr: Expression) -> Expression:
        """Return the canonical representative of *expr*.

        Structurally equal inputs yield the identical object.  The canonical
        node always holds canonical children, so identity-based sharing is
        hereditary.
        """
        table = self._table
        found = table.get(expr)
        if found is not None:
            self.hits += 1
            try:
                table.move_to_end(found)
            except KeyError:
                # The intra-solve thread pool shares this table; a
                # concurrent eviction can drop the entry between the get
                # and the LRU touch.  Re-canonicalize it -- the found node
                # is still a valid representative.
                table[found] = found
            return found
        self.misses += 1
        if expr.children:
            canonical_children = tuple(self.intern(child) for child in expr.children)
            if any(new is not old for new, old in zip(canonical_children, expr.children)):
                expr = _rebuild(expr, canonical_children)
        while len(table) >= self.max_entries:
            try:
                table.popitem(last=False)
                self.evictions += 1
            except KeyError:  # emptied by a concurrent solver thread
                break
        table[expr] = expr
        return expr


def _rebuild(expr: Expression, children) -> Expression:
    """Reconstruct a compound node over canonicalized children."""
    if isinstance(expr, (Transpose, Inverse, InverseTranspose)):
        return type(expr)(children[0])
    if isinstance(expr, (Times, Plus)):
        return type(expr)(*children)
    # Unknown compound type (e.g. a user extension): keep the original node;
    # it is still a valid canonical representative of its equivalence class.
    return expr


# ---------------------------------------------------------------------------
# Module-level default interner (shared by the GMC hot path).
# ---------------------------------------------------------------------------

_DEFAULT = ExpressionInterner()
_ACTIVE: Optional[ExpressionInterner] = _DEFAULT


def default_interner() -> ExpressionInterner:
    """The process-wide interner used by :func:`intern`."""
    return _DEFAULT


def intern(expr: Expression) -> Expression:
    """Intern through the active interner; identity when interning is off."""
    active = _ACTIVE
    if active is None:
        return expr
    return active.intern(expr)


@contextmanager
def interning_disabled() -> Iterator[None]:
    """Temporarily make :func:`intern` the identity function.

    Used by the generation-time benchmark to time the non-hash-consed path.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = None
    try:
        yield
    finally:
        _ACTIVE = previous


def clear_intern_table() -> None:
    """Drop all canonical representatives (tests / long-running processes)."""
    _DEFAULT.clear()

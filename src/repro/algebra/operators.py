"""Compound expression nodes: products, sums and unary operators.

These correspond to the operators of the Linnea grammar reproduced in Fig. 1
of the paper::

    expr -> symbol | expr + expr | expr * expr | expr^-1 | expr^T | expr^-T

``Times`` is n-ary and flattens nested products on construction, so a matrix
chain ``A * B * C`` is represented as a single ``Times`` node with three
children -- the canonical input form of the (generalized) matrix chain
problem.  Construction performs conformability checking whenever operand
shapes are known; patterns containing wildcards (unknown shapes) skip the
check.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

from .expression import Expression, ShapeError


class _Compound(Expression):
    """Shared plumbing for operator nodes."""

    __slots__ = ("children",)

    def __init__(self, children: Tuple[Expression, ...]) -> None:
        object.__setattr__(self, "children", children)
        # Children are fully constructed (and their caches primed) at this
        # point, so priming here costs O(#children) per node.
        self._prime_identity_cache()

    def __setattr__(self, key: str, value: object) -> None:  # pragma: no cover
        raise AttributeError(f"{type(self).__name__} instances are immutable")

    def _key(self) -> Tuple:
        return self.children


class Times(_Compound):
    """An n-ary, non-commutative matrix product.

    Nested ``Times`` children are flattened, so ``Times(Times(A, B), C)`` and
    ``Times(A, Times(B, C))`` are the same object structurally -- the
    parenthesization is *not* part of the expression; choosing one is exactly
    the job of the matrix chain algorithms in :mod:`repro.core`.
    """

    __slots__ = ()

    def __init__(self, *operands: Expression) -> None:
        if len(operands) < 2:
            raise ValueError("Times requires at least two operands")
        flat = []
        for operand in operands:
            if not isinstance(operand, Expression):
                raise TypeError(f"operand {operand!r} is not an Expression")
            if isinstance(operand, Times):
                flat.extend(operand.children)
            else:
                flat.append(operand)
        children = tuple(flat)
        _check_product_conformability(children)
        super().__init__(children)

    @property
    def rows(self) -> Optional[int]:
        return self.children[0].rows

    @property
    def columns(self) -> Optional[int]:
        return self.children[-1].columns

    def __str__(self) -> str:
        parts = []
        for child in self.children:
            text = str(child)
            if isinstance(child, (Times, Plus)):
                text = f"({text})"
            parts.append(text)
        return " * ".join(parts)


class Plus(_Compound):
    """An n-ary matrix sum.

    The GMC algorithm itself only deals with products, but sums are part of
    the Linnea input grammar (Fig. 1) and are supported by the expression
    language, the property inference engine and the DSL parser.
    """

    __slots__ = ()

    def __init__(self, *operands: Expression) -> None:
        if len(operands) < 2:
            raise ValueError("Plus requires at least two operands")
        flat = []
        for operand in operands:
            if not isinstance(operand, Expression):
                raise TypeError(f"operand {operand!r} is not an Expression")
            if isinstance(operand, Plus):
                flat.extend(operand.children)
            else:
                flat.append(operand)
        children = tuple(flat)
        _check_sum_conformability(children)
        super().__init__(children)

    @property
    def rows(self) -> Optional[int]:
        for child in self.children:
            if child.rows is not None:
                return child.rows
        return None

    @property
    def columns(self) -> Optional[int]:
        for child in self.children:
            if child.columns is not None:
                return child.columns
        return None

    def __str__(self) -> str:
        return " + ".join(str(child) for child in self.children)


class _Unary(_Compound):
    """Shared plumbing for the unary operators."""

    __slots__ = ()

    def __init__(self, operand: Expression) -> None:
        if not isinstance(operand, Expression):
            raise TypeError(f"operand {operand!r} is not an Expression")
        super().__init__((operand,))

    @property
    def operand(self) -> Expression:
        return self.children[0]


class Transpose(_Unary):
    """The transpose ``A^T`` of an expression."""

    __slots__ = ()

    @property
    def rows(self) -> Optional[int]:
        return self.operand.columns

    @property
    def columns(self) -> Optional[int]:
        return self.operand.rows

    def __str__(self) -> str:
        return f"{_wrap(self.operand)}^T"


class Inverse(_Unary):
    """The inverse ``A^-1`` of an expression.

    Construction requires the operand to be square whenever its shape is
    known; inverting a rectangular operand is a modelling error that should
    surface as early as possible.
    """

    __slots__ = ()

    def __init__(self, operand: Expression) -> None:
        _check_invertible_shape(operand)
        super().__init__(operand)

    @property
    def rows(self) -> Optional[int]:
        return self.operand.rows

    @property
    def columns(self) -> Optional[int]:
        return self.operand.columns

    def __str__(self) -> str:
        return f"{_wrap(self.operand)}^-1"


class InverseTranspose(_Unary):
    """The inverse transpose ``A^-T`` of an expression."""

    __slots__ = ()

    def __init__(self, operand: Expression) -> None:
        _check_invertible_shape(operand)
        super().__init__(operand)

    @property
    def rows(self) -> Optional[int]:
        return self.operand.columns

    @property
    def columns(self) -> Optional[int]:
        return self.operand.rows

    def __str__(self) -> str:
        return f"{_wrap(self.operand)}^-T"


UNARY_TYPES = (Transpose, Inverse, InverseTranspose)


def _wrap(expr: Expression) -> str:
    text = str(expr)
    if isinstance(expr, (Times, Plus)):
        return f"({text})"
    return text


def _check_invertible_shape(operand: Expression) -> None:
    rows, columns = operand.rows, operand.columns
    if rows is not None and columns is not None and rows != columns:
        raise ShapeError(
            f"cannot invert non-square expression {operand} of shape {rows}x{columns}"
        )


def _check_product_conformability(children: Iterable[Expression]) -> None:
    previous: Optional[Expression] = None
    for child in children:
        if previous is not None:
            left_cols = previous.columns
            right_rows = child.rows
            if left_cols is not None and right_rows is not None and left_cols != right_rows:
                raise ShapeError(
                    f"cannot multiply {previous} ({previous.rows}x{previous.columns}) "
                    f"by {child} ({child.rows}x{child.columns}): inner dimensions differ"
                )
        previous = child


def _check_sum_conformability(children: Iterable[Expression]) -> None:
    rows: Optional[int] = None
    columns: Optional[int] = None
    for child in children:
        if child.rows is not None:
            if rows is None:
                rows = child.rows
            elif rows != child.rows:
                raise ShapeError(f"cannot add operands with {rows} and {child.rows} rows")
        if child.columns is not None:
            if columns is None:
                columns = child.columns
            elif columns != child.columns:
                raise ShapeError(
                    f"cannot add operands with {columns} and {child.columns} columns"
                )

"""Core symbolic expression types: the abstract base class and the leaves.

The GMC algorithm operates on symbolic expression trees (paper Section 3.1).
An expression is either a *leaf* -- a named matrix, vector or scalar with a
size and a set of structural properties -- or a *compound* node built from
the operators defined in :mod:`repro.algebra.operators` (``Times``, ``Plus``,
``Transpose``, ``Inverse``, ``InverseTranspose``).

Expressions are immutable and hashable; structural equality is used
throughout (two ``Matrix`` leaves are equal when they have the same name,
shape and properties).
"""

from __future__ import annotations

import functools
import itertools
from typing import FrozenSet, Iterable, Iterator, Optional, Tuple

from .properties import Property, check_consistency


class ShapeError(ValueError):
    """Raised when operand dimensions do not conform."""


class Expression:
    """Abstract base class for every node of a symbolic expression tree."""

    #: Cached structural identity (``_key_cache``) and hash (``_hash_cache``).
    #: Expressions are immutable, so both are computed at most once; the
    #: constructors of concrete node types prime them eagerly (see
    #: :meth:`_prime_identity_cache`) so that building a parent node reuses
    #: the already-cached hashes of its children instead of re-walking the
    #: whole subtree on every dict lookup.  ``_token_cache`` and
    #: ``_flat_cache`` are reserved for the discrimination net's per-node
    #: trie token and preorder flattening, and ``_sig_cache`` for the
    #: shape/property signature of :meth:`signature` (all computed lazily
    #: on first use).
    __slots__ = ("_key_cache", "_hash_cache", "_token_cache", "_flat_cache", "_sig_cache")

    #: Child expressions (empty tuple for leaves).
    children: Tuple["Expression", ...] = ()

    # ------------------------------------------------------------------ shape
    @property
    def rows(self) -> Optional[int]:
        """Number of rows, or ``None`` when unknown (e.g. for wildcards)."""
        raise NotImplementedError

    @property
    def columns(self) -> Optional[int]:
        """Number of columns, or ``None`` when unknown."""
        raise NotImplementedError

    @property
    def shape(self) -> Tuple[Optional[int], Optional[int]]:
        return (self.rows, self.columns)

    @property
    def is_square(self) -> bool:
        return self.rows is not None and self.rows == self.columns

    @property
    def is_vector(self) -> bool:
        """True when one (but not both) of the dimensions is 1."""
        rows, columns = self.rows, self.columns
        if rows is None or columns is None:
            return False
        return (rows == 1) != (columns == 1)

    @property
    def is_row_vector(self) -> bool:
        return self.rows == 1 and (self.columns or 0) > 1

    @property
    def is_column_vector(self) -> bool:
        return self.columns == 1 and (self.rows or 0) > 1

    @property
    def is_scalar_shaped(self) -> bool:
        return self.rows == 1 and self.columns == 1

    # ------------------------------------------------------------- navigation
    @property
    def is_leaf(self) -> bool:
        return not self.children

    def preorder(self) -> Iterator["Expression"]:
        """Yield this node and all descendants in preorder."""
        yield self
        for child in self.children:
            yield from child.preorder()

    def leaves(self) -> Iterator["Expression"]:
        """Yield the leaf nodes of the tree, left to right."""
        for node in self.preorder():
            if node.is_leaf:
                yield node

    @property
    def size(self) -> int:
        """Number of nodes in the expression tree."""
        return sum(1 for _ in self.preorder())

    @property
    def depth(self) -> int:
        """Number of levels in the expression tree (a leaf has depth 1)."""
        if not self.children:
            return 1
        return 1 + max(child.depth for child in self.children)

    # ------------------------------------------------------------ convenience
    @property
    def T(self) -> "Expression":  # noqa: N802 - mirrors numpy/Julia spelling
        """Transpose of this expression (syntactic, not simplified)."""
        from .operators import Transpose

        return Transpose(self)

    @property
    def I(self) -> "Expression":  # noqa: N802, E743 - mathematical spelling
        """Inverse of this expression (syntactic, not simplified)."""
        from .operators import Inverse

        return Inverse(self)

    @property
    def invT(self) -> "Expression":  # noqa: N802
        """Inverse-transpose of this expression."""
        from .operators import InverseTranspose

        return InverseTranspose(self)

    def __mul__(self, other: "Expression") -> "Expression":
        from .operators import Times

        if not isinstance(other, Expression):
            return NotImplemented
        return Times(self, other)

    def __matmul__(self, other: "Expression") -> "Expression":
        return self.__mul__(other)

    def __add__(self, other: "Expression") -> "Expression":
        from .operators import Plus

        if not isinstance(other, Expression):
            return NotImplemented
        return Plus(self, other)

    # -------------------------------------------------------------- identity
    def _key(self) -> Tuple:
        """Structural identity key; subclasses must override."""
        raise NotImplementedError

    def structural_key(self) -> Tuple:
        """The structural identity key, cached after the first computation.

        Equivalent to :meth:`_key` but O(1) amortized; all identity-sensitive
        code (hashing, equality, discrimination-net tokens) should go through
        this accessor rather than calling ``_key`` directly.
        """
        try:
            return self._key_cache
        except AttributeError:
            key = self._key()
            object.__setattr__(self, "_key_cache", key)
            return key

    def _prime_identity_cache(self) -> None:
        """Compute and store the identity key and hash of a finished node.

        Called at the end of every concrete constructor.  Because children
        are always constructed (and primed) before their parent, priming a
        compound node costs O(#children), not O(subtree size).
        """
        key = self._key()
        object.__setattr__(self, "_key_cache", key)
        object.__setattr__(self, "_hash_cache", hash((type(self).__name__, key)))

    def signature(self) -> Tuple:
        """Shape/property signature: a compact, hashable digest of this tree.

        The signature abstracts over *operand names*: it records the operator
        skeleton (node type and arity, in preorder), the dimensions and the
        declared property set of every :class:`Matrix` leaf, and -- crucially
        for non-linear patterns such as SYRK's ``X^T X`` -- the *equality
        pattern* of the leaves, as first-occurrence indices.  Two expressions
        with equal signatures are therefore indistinguishable to any purely
        structural analysis: syntactic kernel matching, shape/property
        constraints and symbolic property inference all produce corresponding
        results on them.  This is the cache key of the signature-keyed
        kernel-match cache (:mod:`repro.matching.match_cache`), which lets
        structurally similar DP cells -- and repeated solves, whose fresh
        temporaries differ only by name -- reuse match results.

        Non-matrix leaves (pattern wildcards) keep their full structural key,
        so distinct patterns never collide.  The result is cached on the node
        (expressions are immutable), so with hash-consed nodes it is computed
        once per canonical subtree.
        """
        try:
            return self._sig_cache
        except AttributeError:
            pass
        leaf_ids: dict = {}
        parts = []
        for node in self.preorder():
            if node.children:
                parts.append((type(node).__name__, len(node.children)))
            elif isinstance(node, Matrix):
                key = node.structural_key()
                index = leaf_ids.setdefault(key, len(leaf_ids))
                parts.append((index, node.rows, node.columns, node.properties))
            else:
                parts.append((type(node).__name__, node.structural_key()))
        signature = tuple(parts)
        object.__setattr__(self, "_sig_cache", signature)
        return signature

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if type(self) is not type(other):
            return NotImplemented
        try:
            if self._hash_cache != other._hash_cache:  # type: ignore[attr-defined]
                return False
        except AttributeError:
            pass
        return self.structural_key() == other.structural_key()  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        try:
            return self._hash_cache
        except AttributeError:
            value = hash((type(self).__name__, self.structural_key()))
            object.__setattr__(self, "_hash_cache", value)
            return value

    def __repr__(self) -> str:
        return str(self)


class Matrix(Expression):
    """A named matrix operand with fixed dimensions and properties.

    Parameters
    ----------
    name:
        Identifier used in generated code and printed expressions.
    rows, columns:
        Dimensions; both must be positive integers.
    properties:
        Iterable of :class:`~repro.algebra.properties.Property` annotations.
        The stored set is the closure under the implication lattice, and
        bookkeeping properties (``SQUARE``, ``VECTOR``, ``SCALAR``) are added
        automatically from the shape.
    """

    __slots__ = ("name", "_rows", "_columns", "properties")

    def __init__(
        self,
        name: str,
        rows: int,
        columns: int,
        properties: Iterable[Property] = (),
    ) -> None:
        if not name:
            raise ValueError("matrix name must be a non-empty string")
        if rows <= 0 or columns <= 0:
            raise ShapeError(
                f"matrix {name!r} must have positive dimensions, got {rows}x{columns}"
            )
        props = set(properties)
        if rows == columns:
            props.add(Property.SQUARE)
        if (rows == 1) != (columns == 1):
            props.add(Property.VECTOR)
        if rows == 1 and columns == 1:
            props.add(Property.SCALAR)
        closed = check_consistency(props)
        if rows != columns:
            non_square = {
                Property.SQUARE,
                Property.DIAGONAL,
                Property.LOWER_TRIANGULAR,
                Property.UPPER_TRIANGULAR,
                Property.SYMMETRIC,
                Property.SPD,
                Property.IDENTITY,
                Property.ORTHOGONAL,
                Property.NON_SINGULAR,
            }
            conflict = closed & non_square
            if conflict:
                names = ", ".join(sorted(p.name for p in conflict))
                raise ShapeError(
                    f"matrix {name!r} is {rows}x{columns} (not square) but was "
                    f"annotated with square-only properties: {names}"
                )
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "_rows", int(rows))
        object.__setattr__(self, "_columns", int(columns))
        object.__setattr__(self, "properties", frozenset(closed))
        self._prime_identity_cache()

    def __setattr__(self, key: str, value: object) -> None:  # pragma: no cover
        raise AttributeError("Matrix instances are immutable")

    @property
    def rows(self) -> int:
        return self._rows

    @property
    def columns(self) -> int:
        return self._columns

    def has_property(self, prop: Property) -> bool:
        return prop in self.properties

    def with_properties(self, *extra: Property) -> "Matrix":
        """Return a copy of this matrix with additional properties."""
        return Matrix(
            self.name, self._rows, self._columns, self.properties | set(extra)
        )

    def _key(self) -> Tuple:
        return (self.name, self._rows, self._columns, self.properties)

    def __str__(self) -> str:
        return self.name


class Vector(Matrix):
    """A column vector: an ``n x 1`` matrix.

    The paper treats vectors as matrices with one unit dimension
    (Section 1.1); this subclass only adds a convenient constructor.
    """

    __slots__ = ()

    def __init__(
        self, name: str, length: int, properties: Iterable[Property] = ()
    ) -> None:
        super().__init__(name, length, 1, properties)

    @property
    def length(self) -> int:
        return self.rows


class IdentityMatrix(Matrix):
    """The ``n x n`` identity matrix."""

    __slots__ = ()

    def __init__(self, n: int, name: str = "I") -> None:
        super().__init__(name, n, n, {Property.IDENTITY})


class ZeroMatrix(Matrix):
    """The ``rows x columns`` zero matrix."""

    __slots__ = ()

    def __init__(self, rows: int, columns: int, name: str = "0") -> None:
        props = {Property.ZERO}
        if rows == columns:
            props.add(Property.SYMMETRIC)
        super().__init__(name, rows, columns, props)


class Temporary(Matrix):
    """A compiler-generated temporary operand.

    The GMC algorithm stores symbolic temporaries in the ``tmps`` table
    (paper Fig. 4, line 9: ``create_tmp``).  A temporary behaves exactly like
    a matrix but remembers which sub-expression it stands for, which is
    useful for debugging and for emitting comments in generated code.
    """

    __slots__ = ("origin",)

    _counter = itertools.count(1)

    def __init__(
        self,
        rows: int,
        columns: int,
        properties: Iterable[Property] = (),
        origin: Optional[Expression] = None,
        name: Optional[str] = None,
    ) -> None:
        if name is None:
            name = f"T{next(Temporary._counter)}"
        super().__init__(name, rows, columns, properties)
        object.__setattr__(self, "origin", origin)

    def _key(self) -> Tuple:
        # Identity of a temporary is its name (unique) plus shape; the origin
        # expression is metadata and deliberately excluded.
        return (self.name, self.rows, self.columns, self.properties)

    @classmethod
    def reset_counter(cls) -> None:
        """Reset the global naming counter (used by tests for determinism).

        Temporary identity is name-based and assumes names are never reused;
        resetting the counter breaks that assumption for any canonical nodes
        already held by the process-wide interner, so the intern table is
        dropped along with the counter.
        """
        cls._counter = itertools.count(1)
        from .interning import clear_intern_table

        clear_intern_table()


class Reference(Matrix):
    """A leaf standing for the result of an earlier assignment.

    The DSL front-end (:mod:`repro.algebra.dsl`) emits a ``Reference`` when a
    right-hand side names a previously assigned target: the leaf carries the
    target's *name* and the shape of its defining expression, but no
    properties -- properties of an assignment result are *inferred*, and
    inference belongs to the segment-decomposition layer
    (:mod:`repro.core.segments`), which replaces every ``Reference`` with the
    producing segment's result operand before anything is solved.  Keeping
    the reference a leaf (instead of inlining the defining expression) is
    what preserves the assignment-DAG boundary through ``Times`` flattening.
    """

    __slots__ = ("origin",)

    def __init__(
        self,
        name: str,
        rows: int,
        columns: int,
        origin: Optional[Expression] = None,
    ) -> None:
        super().__init__(name, rows, columns, ())
        object.__setattr__(self, "origin", origin)

    def _key(self) -> Tuple:
        # Identity is the referenced target's name plus shape; the defining
        # expression is metadata (exactly as ``Temporary.origin``).
        return (self.name, self.rows, self.columns, self.properties)


def matrix_properties(expr: Expression) -> FrozenSet[Property]:
    """Return the declared property set of a leaf, or an empty set otherwise."""
    if isinstance(expr, Matrix):
        return expr.properties
    return frozenset()


def _canonical_signature_part(part):
    if isinstance(part, frozenset):
        return tuple(sorted(p.name for p in part))
    if isinstance(part, tuple):
        return tuple(_canonical_signature_part(p) for p in part)
    return part


@functools.lru_cache(maxsize=4096)
def signature_repr(signature: Tuple) -> str:
    """A cross-process-stable repr of a :meth:`Expression.signature` tuple.

    The raw tuple embeds ``frozenset`` property sets whose iteration order
    follows the members' identity hashes -- different in every process --
    so ``repr(signature)`` is only stable *within* one process.  This
    renders every frozenset as a sorted tuple of property names instead,
    making the string safe to compare, hash or merge across the service's
    worker-process boundary (request affinity keys, workload-analytics
    heavy-hitter keys, :func:`signature_digest`).
    """
    return repr(_canonical_signature_part(signature))


def signature_digest(expr: Expression) -> str:
    """A short stable digest of :meth:`Expression.signature`.

    Error messages and telemetry need to *name* a sub-expression's
    name-abstracted signature without dumping the full tuple (which grows
    with the chain); the digest is a 12-hex-character SHA-1 prefix of the
    signature's canonical repr (:func:`signature_repr`), stable across
    processes for structurally equal expressions.
    """
    import hashlib

    return hashlib.sha1(
        signature_repr(expr.signature()).encode("utf-8")
    ).hexdigest()[:12]

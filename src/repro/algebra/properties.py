"""Matrix properties and the implication lattice between them.

The GMC algorithm (Barthels et al., CGO 2018, Section 3.2) relies on knowing
structural properties of operands -- lower/upper triangular, diagonal,
symmetric, symmetric positive definite, and so on -- both to select
specialized kernels (TRMM instead of GEMM, POSV instead of GESV, ...) and to
propagate that knowledge onto intermediate results.

This module defines:

* :class:`Property` -- the enumeration of supported matrix properties.
* :data:`IMPLICATIONS` -- the implication lattice between properties
  (for example ``DIAGONAL`` implies both ``LOWER_TRIANGULAR`` and
  ``UPPER_TRIANGULAR``; ``SPD`` implies ``SYMMETRIC`` and ``NON_SINGULAR``).
* :func:`closure` -- transitive closure of a set of properties under the
  implication lattice.
* :data:`CONTRADICTIONS` and :func:`check_consistency` -- pairs of properties
  that cannot hold simultaneously on the same operand, used to validate user
  annotations early.
"""

from __future__ import annotations

import enum
from typing import FrozenSet, Iterable, Mapping, Set, Tuple


class Property(enum.Enum):
    """Structural properties a matrix operand may carry.

    The values mirror the properties used throughout the paper (Fig. 2 lists
    ``LowerTriangular`` and ``Diagonal`` as examples; Section 4 draws operand
    properties from diagonal, lower triangular, upper triangular, symmetric
    and SPD).  A few additional bookkeeping properties (``SQUARE``,
    ``VECTOR``, ``SCALAR``, ``NON_SINGULAR``, ...) are included because the
    property-inference engine and the kernel constraints need them.
    """

    #: Zero above the main diagonal.
    LOWER_TRIANGULAR = "lower_triangular"
    #: Zero below the main diagonal.
    UPPER_TRIANGULAR = "upper_triangular"
    #: Zero outside of the main diagonal.
    DIAGONAL = "diagonal"
    #: Equal to its own transpose.
    SYMMETRIC = "symmetric"
    #: Symmetric positive definite.
    SPD = "spd"
    #: Symmetric positive semi-definite.
    SPSD = "spsd"
    #: The identity matrix.
    IDENTITY = "identity"
    #: The zero matrix.
    ZERO = "zero"
    #: Orthogonal: Q^T Q = I.
    ORTHOGONAL = "orthogonal"
    #: Diagonal entries are all one (used with triangular factors).
    UNIT_DIAGONAL = "unit_diagonal"
    #: Guaranteed to be invertible.
    NON_SINGULAR = "non_singular"
    #: Has full rank (for rectangular operands).
    FULL_RANK = "full_rank"
    #: Number of rows equals number of columns.
    SQUARE = "square"
    #: One of the dimensions is 1 (a row or column vector).
    VECTOR = "vector"
    #: Both dimensions are 1.
    SCALAR = "scalar"
    #: Permutation matrix.
    PERMUTATION = "permutation"
    #: Banded matrix (bandwidth not tracked symbolically).
    BANDED = "banded"
    #: Tridiagonal matrix.
    TRIDIAGONAL = "tridiagonal"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Property.{self.name}"


#: Direct (one-step) implications between properties.  ``closure`` computes
#: the transitive closure, so only direct edges need to be listed here.
IMPLICATIONS: Mapping[Property, FrozenSet[Property]] = {
    Property.DIAGONAL: frozenset(
        {
            Property.LOWER_TRIANGULAR,
            Property.UPPER_TRIANGULAR,
            Property.SYMMETRIC,
            Property.BANDED,
            Property.TRIDIAGONAL,
            Property.SQUARE,
        }
    ),
    Property.IDENTITY: frozenset(
        {
            Property.DIAGONAL,
            Property.UNIT_DIAGONAL,
            Property.SPD,
            Property.ORTHOGONAL,
            Property.PERMUTATION,
            Property.NON_SINGULAR,
        }
    ),
    Property.SPD: frozenset(
        {
            Property.SYMMETRIC,
            Property.SPSD,
            Property.NON_SINGULAR,
            Property.FULL_RANK,
            Property.SQUARE,
        }
    ),
    Property.SPSD: frozenset({Property.SYMMETRIC, Property.SQUARE}),
    Property.SYMMETRIC: frozenset({Property.SQUARE}),
    Property.ORTHOGONAL: frozenset(
        {Property.NON_SINGULAR, Property.FULL_RANK, Property.SQUARE}
    ),
    Property.PERMUTATION: frozenset({Property.ORTHOGONAL, Property.NON_SINGULAR}),
    Property.LOWER_TRIANGULAR: frozenset({Property.SQUARE}),
    Property.UPPER_TRIANGULAR: frozenset({Property.SQUARE}),
    Property.TRIDIAGONAL: frozenset({Property.BANDED, Property.SQUARE}),
    Property.NON_SINGULAR: frozenset({Property.FULL_RANK, Property.SQUARE}),
    Property.SCALAR: frozenset(
        {
            Property.VECTOR,
            Property.SQUARE,
            Property.DIAGONAL,
            Property.SYMMETRIC,
        }
    ),
}


#: Pairs of properties that cannot both hold on the same non-degenerate
#: operand.  (A zero matrix is singular; an identity matrix is not zero; ...)
CONTRADICTIONS: FrozenSet[Tuple[Property, Property]] = frozenset(
    {
        (Property.ZERO, Property.NON_SINGULAR),
        (Property.ZERO, Property.SPD),
        (Property.ZERO, Property.IDENTITY),
        (Property.ZERO, Property.UNIT_DIAGONAL),
        (Property.ZERO, Property.ORTHOGONAL),
        (Property.ZERO, Property.PERMUTATION),
        (Property.ZERO, Property.FULL_RANK),
    }
)


class PropertyError(ValueError):
    """Raised when an operand is annotated with inconsistent properties."""


def closure(properties: Iterable[Property]) -> FrozenSet[Property]:
    """Return the transitive closure of *properties* under ``IMPLICATIONS``.

    >>> sorted(p.name for p in closure({Property.SPD}))[:2]
    ['FULL_RANK', 'NON_SINGULAR']
    """
    result: Set[Property] = set(properties)
    frontier = list(result)
    while frontier:
        prop = frontier.pop()
        for implied in IMPLICATIONS.get(prop, frozenset()):
            if implied not in result:
                result.add(implied)
                frontier.append(implied)
    return frozenset(result)


def implies(premise: Property, conclusion: Property) -> bool:
    """Return ``True`` when *premise* implies *conclusion* in the lattice."""
    return conclusion in closure({premise})


def check_consistency(properties: Iterable[Property]) -> FrozenSet[Property]:
    """Validate and close a property set.

    Returns the closure of *properties* or raises :class:`PropertyError`
    when the closed set contains a contradictory pair.
    """
    closed = closure(properties)
    for first, second in CONTRADICTIONS:
        if first in closed and second in closed:
            raise PropertyError(
                f"properties {first.name} and {second.name} are contradictory"
            )
    # Triangular + symmetric collapses to diagonal: record that knowledge.
    if (
        Property.SYMMETRIC in closed
        and (Property.LOWER_TRIANGULAR in closed or Property.UPPER_TRIANGULAR in closed)
        and Property.DIAGONAL not in closed
    ):
        closed = closure(closed | {Property.DIAGONAL})
    return closed


def parse_property(name: str) -> Property:
    """Parse a property from its textual spelling.

    Accepts both the enumeration value (``"lower_triangular"``) and the
    CamelCase spelling used by the paper's grammar (``"LowerTriangular"``).
    """
    normalized = name.strip()
    if not normalized:
        raise PropertyError("empty property name")
    try:
        return Property(normalized.lower())
    except ValueError:
        pass
    # CamelCase -> snake_case.
    snake = []
    for index, char in enumerate(normalized):
        if char.isupper() and index > 0 and not normalized[index - 1].isupper():
            snake.append("_")
        snake.append(char.lower())
    candidate = "".join(snake)
    aliases = {
        "lowertriangular": "lower_triangular",
        "uppertriangular": "upper_triangular",
        "symmetric_positive_definite": "spd",
        "symmetricpositivedefinite": "spd",
        "positive_definite": "spd",
        "unitdiagonal": "unit_diagonal",
        "nonsingular": "non_singular",
        "fullrank": "full_rank",
        "general": "",
    }
    candidate = aliases.get(candidate, candidate)
    candidate = aliases.get(candidate.replace("_", ""), candidate)
    if candidate == "":
        raise PropertyError(f"'{name}' does not name a specific property")
    try:
        return Property(candidate)
    except ValueError as exc:
        raise PropertyError(f"unknown property name: {name!r}") from exc

"""Normalization of linear-algebra expressions to canonical chain form.

The GMC algorithm expects its input to be a *matrix chain*: a flat product
``f0 * f1 * ... * f(n-1)`` in which every factor is a leaf operand optionally
wrapped in a single unary operator (transpose, inverse, or inverse-transpose)
-- see Section 1.1 of the paper.  User-written expressions are not always in
this form: they may contain transposed or inverted sub-products such as
``(A B)^T`` or ``(A B C)^-1``, or stacked unary operators such as
``(A^T)^T``.

This module rewrites such expressions into canonical chain form using the
standard identities::

    (A B)^T   = B^T A^T
    (A B)^-1  = B^-1 A^-1          (both factors must be square)
    (A^T)^T   = A
    (A^-1)^-1 = A
    (A^T)^-1  = (A^-1)^T = A^-T
    (A^-T)^T  = A^-1
    I * A = A,   A * I = A

Not every expression normalizes to a chain: sums have no chain form, and
``(A B)^-1`` with non-square ``A``, ``B`` cannot distribute the inverse
(the identity requires square factors).  Such subtrees are the province of
the segment-decomposition layer (:mod:`repro.core.segments`), which turns
the inner product into its own chain segment and wraps the unary around
the segment's square result operand; :func:`as_chain` remains the strict
single-chain entry the solvers use.
"""

from __future__ import annotations

from typing import List, Tuple

from .expression import Expression, Matrix, signature_digest
from .inference import is_identity, is_symmetric
from .operators import Inverse, InverseTranspose, Plus, Times, Transpose


class NormalizationError(ValueError):
    """Raised when an expression cannot be brought into chain form."""


def transpose(expr: Expression) -> Expression:
    """Return the normalized transpose of a (normalized) expression."""
    if isinstance(expr, Transpose):
        return expr.operand
    if isinstance(expr, Inverse):
        return InverseTranspose(expr.operand)
    if isinstance(expr, InverseTranspose):
        return Inverse(expr.operand)
    if isinstance(expr, Times):
        reversed_children = [transpose(child) for child in reversed(expr.children)]
        return Times(*reversed_children)
    if isinstance(expr, Plus):
        return Plus(*[transpose(child) for child in expr.children])
    if is_symmetric(expr):
        # The transpose of a symmetric operand is the operand itself; dropping
        # the operator keeps chain factors in their simplest form and lets the
        # symmetric kernels (SYMM, POSV, ...) match directly.
        return expr
    return Transpose(expr)


def invert(expr: Expression) -> Expression:
    """Return the normalized inverse of a (normalized) expression."""
    if isinstance(expr, Inverse):
        return expr.operand
    if isinstance(expr, Transpose):
        return InverseTranspose(expr.operand)
    if isinstance(expr, InverseTranspose):
        return Transpose(expr.operand)
    if isinstance(expr, Times):
        reversed_children = [invert(child) for child in reversed(expr.children)]
        return Times(*reversed_children)
    return Inverse(expr)


def invert_transpose(expr: Expression) -> Expression:
    """Return the normalized inverse-transpose of a (normalized) expression."""
    return invert(transpose(expr))


def normalize(expr: Expression) -> Expression:
    """Rewrite *expr* into canonical form.

    * unary operators are pushed down to the leaves;
    * nested products are flattened (``Times`` does this on construction);
    * double transposes/inverses are cancelled;
    * identity factors inside a product are dropped (when at least two
      factors remain).

    The result is structurally equal for mathematically identical inputs
    written with different operator nestings, which makes it the right form
    to feed into the chain algorithms.
    """
    if isinstance(expr, Matrix):
        return expr
    if isinstance(expr, Transpose):
        return transpose(normalize(expr.operand))
    if isinstance(expr, Inverse):
        return invert(normalize(expr.operand))
    if isinstance(expr, InverseTranspose):
        return invert_transpose(normalize(expr.operand))
    if isinstance(expr, Times):
        children = [normalize(child) for child in expr.children]
        flattened: List[Expression] = []
        for child in children:
            if isinstance(child, Times):
                flattened.extend(child.children)
            else:
                flattened.append(child)
        pruned = [child for child in flattened if not _droppable_identity(child)]
        if len(pruned) >= 2:
            flattened = pruned
        elif len(pruned) == 1:
            return pruned[0]
        if len(flattened) == 1:
            return flattened[0]
        return Times(*flattened)
    if isinstance(expr, Plus):
        return Plus(*[normalize(child) for child in expr.children])
    return expr


def _droppable_identity(expr: Expression) -> bool:
    """An identity factor can be dropped from a product when it is square
    (it always is) -- dropping it never changes the product's value."""
    return is_identity(expr)


def as_chain(expr: Expression) -> Tuple[Expression, ...]:
    """Return the factors of *expr* as a canonical matrix chain.

    The expression is normalized first; the result is a tuple of factors,
    each of which is a leaf optionally wrapped in exactly one unary operator.
    Raises :class:`NormalizationError` when the expression is not a product
    (for example when it contains a sum) or when a factor cannot be reduced
    to wrapped-leaf form.
    """
    normalized = normalize(expr)
    if isinstance(normalized, Times):
        factors = normalized.children
    else:
        factors = (normalized,)
    for factor in factors:
        if not is_chain_factor(factor):
            raise NormalizationError(
                f"factor {factor} (signature {signature_digest(factor)}) is "
                f"not a leaf wrapped in at most one unary operator; general "
                f"expression DAGs compile through repro.frontend.Compiler, "
                f"which decomposes them into chain segments"
            )
    return tuple(factors)


def is_chain_factor(expr: Expression) -> bool:
    """True when *expr* is a valid factor of a canonical matrix chain."""
    if isinstance(expr, Matrix):
        return True
    if isinstance(expr, (Transpose, Inverse, InverseTranspose)):
        return isinstance(expr.operand, Matrix)
    return False


def unary_decomposition(factor: Expression) -> Tuple[Matrix, bool, bool]:
    """Split a chain factor into ``(leaf, transposed, inverted)``.

    >>> from repro.algebra import Matrix
    >>> A = Matrix("A", 4, 4)
    >>> unary_decomposition(A.invT)
    (A, True, True)
    """
    transposed = False
    inverted = False
    expr = factor
    if isinstance(expr, InverseTranspose):
        transposed, inverted = True, True
        expr = expr.operand
    elif isinstance(expr, Transpose):
        transposed = True
        expr = expr.operand
    elif isinstance(expr, Inverse):
        inverted = True
        expr = expr.operand
    if not isinstance(expr, Matrix):
        raise NormalizationError(f"{factor} is not a canonical chain factor")
    return expr, transposed, inverted


def wrap_leaf(leaf: Expression, transposed: bool, inverted: bool) -> Expression:
    """Inverse of :func:`unary_decomposition`."""
    if transposed and inverted:
        return InverseTranspose(leaf)
    if transposed:
        return Transpose(leaf)
    if inverted:
        return Inverse(leaf)
    return leaf

"""Symbolic inference of matrix properties over expression trees.

This module implements the ``infer_properties`` function of the GMC
algorithm (paper Fig. 4, line 10) and the per-property predicates sketched in
Fig. 6 (``is_lower_triangular`` and friends).  Properties are propagated from
the bottom of the expression tree to the top using inference rules such as::

    LoTri(A) and LoTri(B)  ->  LoTri(A B)
    LoTri(A)               ->  UppTri(A^T)
    SPD(A)                 ->  SPD(A^-1)
    A^T A                  ->  SPSD (SPD when A has full column rank)

The inference is purely symbolic: its cost does not depend on matrix sizes
and it is immune to the numerical-noise problem described in Section 3.2 of
the paper (for example the symmetry of ``L^-1 A L^-T`` being destroyed by
floating-point round-off).
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet

from .expression import Expression, Matrix
from .operators import Inverse, InverseTranspose, Plus, Times, Transpose
from .properties import Property, check_consistency


def _leaf_has(expr: Expression, prop: Property) -> bool:
    return isinstance(expr, Matrix) and prop in expr.properties


# --------------------------------------------------------------------------
# Per-property predicates.  Each follows the recursive structure of Fig. 6.
# --------------------------------------------------------------------------

def is_zero(expr: Expression) -> bool:
    """True when the expression is symbolically known to be the zero matrix."""
    if isinstance(expr, Matrix):
        return Property.ZERO in expr.properties
    if isinstance(expr, Times):
        return any(is_zero(child) for child in expr.children)
    if isinstance(expr, Transpose):
        return is_zero(expr.operand)
    if isinstance(expr, Plus):
        return all(is_zero(child) for child in expr.children)
    return False


def is_identity(expr: Expression) -> bool:
    """True when the expression is symbolically known to be the identity."""
    if isinstance(expr, Matrix):
        return Property.IDENTITY in expr.properties
    if isinstance(expr, Times):
        return all(is_identity(child) for child in expr.children)
    if isinstance(expr, (Transpose, Inverse, InverseTranspose)):
        return is_identity(expr.operand)
    return False


def is_square(expr: Expression) -> bool:
    if expr.rows is not None and expr.columns is not None:
        return expr.rows == expr.columns
    if isinstance(expr, Matrix):
        return Property.SQUARE in expr.properties
    return False


def is_vector(expr: Expression) -> bool:
    return expr.is_vector


def is_scalar(expr: Expression) -> bool:
    return expr.is_scalar_shaped


def is_diagonal(expr: Expression) -> bool:
    """True when the expression is known to be diagonal."""
    if isinstance(expr, Matrix):
        return Property.DIAGONAL in expr.properties
    if isinstance(expr, Times):
        return all(is_diagonal(child) for child in expr.children)
    if isinstance(expr, (Transpose, Inverse, InverseTranspose)):
        return is_diagonal(expr.operand)
    if isinstance(expr, Plus):
        return all(is_diagonal(child) for child in expr.children)
    return False


def is_lower_triangular(expr: Expression) -> bool:
    """Recursive predicate from Fig. 6 of the paper."""
    if isinstance(expr, Matrix):
        return Property.LOWER_TRIANGULAR in expr.properties
    if isinstance(expr, Times):
        return all(is_lower_triangular(child) for child in expr.children)
    if isinstance(expr, Transpose):
        return is_upper_triangular(expr.operand)
    if isinstance(expr, Inverse):
        return is_lower_triangular(expr.operand)
    if isinstance(expr, InverseTranspose):
        return is_upper_triangular(expr.operand)
    if isinstance(expr, Plus):
        return all(is_lower_triangular(child) for child in expr.children)
    return False


def is_upper_triangular(expr: Expression) -> bool:
    """Symmetric counterpart of :func:`is_lower_triangular`."""
    if isinstance(expr, Matrix):
        return Property.UPPER_TRIANGULAR in expr.properties
    if isinstance(expr, Times):
        return all(is_upper_triangular(child) for child in expr.children)
    if isinstance(expr, Transpose):
        return is_lower_triangular(expr.operand)
    if isinstance(expr, Inverse):
        return is_upper_triangular(expr.operand)
    if isinstance(expr, InverseTranspose):
        return is_lower_triangular(expr.operand)
    if isinstance(expr, Plus):
        return all(is_upper_triangular(child) for child in expr.children)
    return False


def is_unit_diagonal(expr: Expression) -> bool:
    if isinstance(expr, Matrix):
        return Property.UNIT_DIAGONAL in expr.properties
    if isinstance(expr, Times):
        # The product of unit-triangular matrices of matching orientation is
        # unit triangular; for safety require all children unit diagonal and
        # all triangular with the same orientation.
        same_lower = all(is_lower_triangular(child) for child in expr.children)
        same_upper = all(is_upper_triangular(child) for child in expr.children)
        return (same_lower or same_upper) and all(
            is_unit_diagonal(child) for child in expr.children
        )
    if isinstance(expr, (Transpose, Inverse, InverseTranspose)):
        return is_unit_diagonal(expr.operand)
    return False


def is_symmetric(expr: Expression) -> bool:
    """True when the expression equals its own transpose, symbolically."""
    if isinstance(expr, Matrix):
        return Property.SYMMETRIC in expr.properties
    if isinstance(expr, (Transpose, Inverse, InverseTranspose)):
        return is_symmetric(expr.operand)
    if isinstance(expr, Plus):
        return all(is_symmetric(child) for child in expr.children)
    if isinstance(expr, Times):
        if all(is_diagonal(child) for child in expr.children):
            return True
        return _is_congruence_form(expr) or _is_gram_form(expr)
    return False


def is_spd(expr: Expression) -> bool:
    """True when the expression is known to be symmetric positive definite."""
    if isinstance(expr, Matrix):
        return Property.SPD in expr.properties
    if isinstance(expr, (Inverse, InverseTranspose)):
        return is_spd(expr.operand)
    if isinstance(expr, Transpose):
        return is_spd(expr.operand)
    if isinstance(expr, Plus):
        # The sum of SPD matrices is SPD.
        return all(is_spd(child) for child in expr.children)
    if isinstance(expr, Times):
        if all(is_diagonal(child) and is_spd(child) for child in expr.children):
            return True
        # Congruence B M B^T with M SPD and B square non-singular is SPD.
        if _is_congruence_form(expr, require_spd_core=True):
            return True
        # Gram form A^T A (or A A^T) with A of full rank is SPD.
        if _is_gram_form(expr, require_full_rank=True):
            return True
    return False


def is_spsd(expr: Expression) -> bool:
    if isinstance(expr, Matrix):
        return Property.SPSD in expr.properties or Property.SPD in expr.properties
    if is_spd(expr):
        return True
    if isinstance(expr, (Transpose, Inverse, InverseTranspose)):
        return is_spsd(expr.operand)
    if isinstance(expr, Plus):
        return all(is_spsd(child) for child in expr.children)
    if isinstance(expr, Times):
        return _is_gram_form(expr) or _is_congruence_form(expr, require_spsd_core=True)
    return False


def is_orthogonal(expr: Expression) -> bool:
    if isinstance(expr, Matrix):
        return Property.ORTHOGONAL in expr.properties
    if isinstance(expr, (Transpose, Inverse, InverseTranspose)):
        return is_orthogonal(expr.operand)
    if isinstance(expr, Times):
        return all(is_orthogonal(child) for child in expr.children)
    return False


def is_permutation(expr: Expression) -> bool:
    if isinstance(expr, Matrix):
        return Property.PERMUTATION in expr.properties
    if isinstance(expr, (Transpose, Inverse, InverseTranspose)):
        return is_permutation(expr.operand)
    if isinstance(expr, Times):
        return all(is_permutation(child) for child in expr.children)
    return False


def is_non_singular(expr: Expression) -> bool:
    if isinstance(expr, Matrix):
        return Property.NON_SINGULAR in expr.properties
    if isinstance(expr, (Transpose, Inverse, InverseTranspose)):
        return is_non_singular(expr.operand)
    if isinstance(expr, Times):
        return all(is_square(child) and is_non_singular(child) for child in expr.children)
    return False


def is_full_rank(expr: Expression) -> bool:
    if isinstance(expr, Matrix):
        return Property.FULL_RANK in expr.properties
    if isinstance(expr, (Transpose, Inverse, InverseTranspose)):
        return is_full_rank(expr.operand)
    if is_non_singular(expr):
        return True
    return False


def is_banded(expr: Expression) -> bool:
    if isinstance(expr, Matrix):
        return Property.BANDED in expr.properties
    if isinstance(expr, Transpose):
        return is_banded(expr.operand)
    if is_diagonal(expr):
        return True
    return False


def is_tridiagonal(expr: Expression) -> bool:
    if isinstance(expr, Matrix):
        return Property.TRIDIAGONAL in expr.properties
    if isinstance(expr, Transpose):
        return is_tridiagonal(expr.operand)
    if is_diagonal(expr):
        return True
    return False


# --------------------------------------------------------------------------
# Structure helpers for symmetric / SPD product forms.
# --------------------------------------------------------------------------

def _strip_unary(expr: Expression) -> Expression:
    while isinstance(expr, (Transpose, Inverse, InverseTranspose)):
        expr = expr.operand
    return expr


def _transpose_of(expr: Expression) -> Expression:
    """Return the syntactic transpose of a factor, normalized for comparison."""
    if isinstance(expr, Transpose):
        return expr.operand
    if isinstance(expr, Inverse):
        return InverseTranspose(expr.operand)
    if isinstance(expr, InverseTranspose):
        return Inverse(expr.operand)
    return Transpose(expr)


def _factors_are_mutual_transposes(left: Expression, right: Expression) -> bool:
    """True when ``right`` is syntactically the transpose of ``left``.

    Symmetric leaves are their own transposes, which the comparison takes
    into account (``A`` and ``A`` with symmetric ``A`` count as a pair).
    """
    if _transpose_of(left) == right or _transpose_of(right) == left:
        return True
    if left == right and is_symmetric(left):
        return True
    core_left, core_right = _strip_unary(left), _strip_unary(right)
    if core_left == core_right and isinstance(core_left, Matrix):
        if is_symmetric(core_left):
            # e.g. A^-1 and A^-T over a symmetric A.
            left_inverted = isinstance(left, (Inverse, InverseTranspose))
            right_inverted = isinstance(right, (Inverse, InverseTranspose))
            return left_inverted == right_inverted
    return False


def _is_gram_form(expr: Times, require_full_rank: bool = False) -> bool:
    """Recognize ``A^T A`` / ``A A^T`` shaped products (possibly with a
    symmetric middle factor), which are symmetric positive semi-definite."""
    children = expr.children
    if len(children) == 2:
        left, right = children
        if _factors_are_mutual_transposes(left, right):
            if not require_full_rank:
                return True
            return is_full_rank(left) or is_full_rank(right)
        return False
    if len(children) == 3:
        left, middle, right = children
        if not _factors_are_mutual_transposes(left, right):
            return False
        core_ok = is_spd(middle) if require_full_rank else is_spsd(middle) or is_symmetric(middle)
        rank_ok = (not require_full_rank) or is_non_singular(left) or is_non_singular(right)
        return core_ok and rank_ok
    return False


def _is_congruence_form(
    expr: Times,
    require_spd_core: bool = False,
    require_spsd_core: bool = False,
) -> bool:
    """Recognize congruence transforms ``B M B^T`` (and ``B^T M B``).

    The transform preserves symmetry always, positive definiteness when ``B``
    is non-singular, and positive semi-definiteness unconditionally.
    """
    children = expr.children
    if len(children) != 3:
        return False
    left, middle, right = children
    if not _factors_are_mutual_transposes(left, right):
        return False
    if require_spd_core:
        return is_spd(middle) and (is_non_singular(left) or is_non_singular(right))
    if require_spsd_core:
        return is_spsd(middle)
    return is_symmetric(middle)


# --------------------------------------------------------------------------
# The top-level inference entry point.
# --------------------------------------------------------------------------

#: Registry mapping each inferable property to its predicate.  Exposed so
#: that users can register predicates for additional properties.
PREDICATES: Dict[Property, Callable[[Expression], bool]] = {
    Property.ZERO: is_zero,
    Property.IDENTITY: is_identity,
    Property.DIAGONAL: is_diagonal,
    Property.LOWER_TRIANGULAR: is_lower_triangular,
    Property.UPPER_TRIANGULAR: is_upper_triangular,
    Property.UNIT_DIAGONAL: is_unit_diagonal,
    Property.SYMMETRIC: is_symmetric,
    Property.SPD: is_spd,
    Property.SPSD: is_spsd,
    Property.ORTHOGONAL: is_orthogonal,
    Property.PERMUTATION: is_permutation,
    Property.NON_SINGULAR: is_non_singular,
    Property.FULL_RANK: is_full_rank,
    Property.BANDED: is_banded,
    Property.TRIDIAGONAL: is_tridiagonal,
}


def has_property(expr: Expression, prop: Property) -> bool:
    """Test a single property on an expression, using symbolic inference."""
    if prop is Property.SQUARE:
        return is_square(expr)
    if prop is Property.VECTOR:
        return is_vector(expr)
    if prop is Property.SCALAR:
        return is_scalar(expr)
    predicate = PREDICATES.get(prop)
    if predicate is None:
        return False
    return predicate(expr)


def infer_properties(expr: Expression) -> FrozenSet[Property]:
    """Infer the full (closed) set of properties of a symbolic expression.

    This is the ``infer_properties`` routine used by the GMC algorithm to
    annotate temporaries (Fig. 4, line 10).  The cost is ``O(p)`` predicate
    evaluations, each bounded by the (small, constant) size of the expression
    trees that occur during chain compilation.
    """
    inferred = {prop for prop, predicate in PREDICATES.items() if predicate(expr)}
    if is_square(expr):
        inferred.add(Property.SQUARE)
    if expr.is_vector:
        inferred.add(Property.VECTOR)
    if expr.is_scalar_shaped:
        inferred.add(Property.SCALAR)
    return check_consistency(inferred)


def properties_after_transpose(properties: FrozenSet[Property]) -> FrozenSet[Property]:
    """Map a property set through transposition without an expression tree.

    Used by code that manipulates bare property sets (e.g. kernel output
    rules): lower and upper triangular swap; everything else is preserved.
    """
    swapped = set(properties)
    lower = Property.LOWER_TRIANGULAR in properties
    upper = Property.UPPER_TRIANGULAR in properties
    swapped.discard(Property.LOWER_TRIANGULAR)
    swapped.discard(Property.UPPER_TRIANGULAR)
    if lower:
        swapped.add(Property.UPPER_TRIANGULAR)
    if upper:
        swapped.add(Property.LOWER_TRIANGULAR)
    return check_consistency(swapped)


def properties_after_inverse(properties: FrozenSet[Property]) -> FrozenSet[Property]:
    """Map a property set through inversion (triangularity, SPD, diagonality
    and orthogonality are preserved; zero is impossible)."""
    preserved = {
        Property.LOWER_TRIANGULAR,
        Property.UPPER_TRIANGULAR,
        Property.DIAGONAL,
        Property.SYMMETRIC,
        Property.SPD,
        Property.ORTHOGONAL,
        Property.PERMUTATION,
        Property.UNIT_DIAGONAL,
        Property.IDENTITY,
        Property.SQUARE,
        Property.NON_SINGULAR,
        Property.FULL_RANK,
    }
    return check_consistency(set(properties) & preserved | {Property.NON_SINGULAR})

"""Symbolic inference of matrix properties over expression trees.

This module implements the ``infer_properties`` function of the GMC
algorithm (paper Fig. 4, line 10) and the per-property predicates sketched in
Fig. 6 (``is_lower_triangular`` and friends).  Properties are propagated from
the bottom of the expression tree to the top using inference rules such as::

    LoTri(A) and LoTri(B)  ->  LoTri(A B)
    LoTri(A)               ->  UppTri(A^T)
    SPD(A)                 ->  SPD(A^-1)
    A^T A                  ->  SPSD (SPD when A has full column rank)

The inference is purely symbolic: its cost does not depend on matrix sizes
and it is immune to the numerical-noise problem described in Section 3.2 of
the paper (for example the symmetry of ``L^-1 A L^-T`` being destroyed by
floating-point round-off).

Two implementations coexist:

* the *legacy* per-property recursive predicates (``is_lower_triangular`` and
  friends, plus :func:`infer_properties_legacy`), which follow Fig. 6
  literally and serve as the reference oracle;
* the *single-pass memoized engine* (:class:`PropertyInference`), which
  computes the full property set of every tree node in one bottom-up
  traversal and memoizes results per (hash-consed) node, so that the GMC
  dynamic program pays O(1) amortized inference per shared subtree instead
  of one recursive walk per property predicate.  The equivalence of the two
  paths is asserted property-based in ``tests/test_inference_equivalence.py``.

:func:`infer_properties` and :func:`has_property` route through the engine
by default; the :func:`legacy_inference` context manager switches them back
to the reference predicates (used for benchmarking and differential tests).
"""

from __future__ import annotations

import itertools
from contextlib import contextmanager
from typing import Callable, Dict, FrozenSet, Iterator, List, Optional, Sequence

from .expression import Expression, Matrix
from .operators import Inverse, InverseTranspose, Plus, Times, Transpose
from .properties import Property, check_consistency


def _leaf_has(expr: Expression, prop: Property) -> bool:
    return isinstance(expr, Matrix) and prop in expr.properties


# --------------------------------------------------------------------------
# Per-property predicates.  Each follows the recursive structure of Fig. 6.
# --------------------------------------------------------------------------

def is_zero(expr: Expression) -> bool:
    """True when the expression is symbolically known to be the zero matrix."""
    if isinstance(expr, Matrix):
        return Property.ZERO in expr.properties
    if isinstance(expr, Times):
        return any(is_zero(child) for child in expr.children)
    if isinstance(expr, Transpose):
        return is_zero(expr.operand)
    if isinstance(expr, Plus):
        return all(is_zero(child) for child in expr.children)
    return False


def is_identity(expr: Expression) -> bool:
    """True when the expression is symbolically known to be the identity."""
    if isinstance(expr, Matrix):
        return Property.IDENTITY in expr.properties
    if isinstance(expr, Times):
        return all(is_identity(child) for child in expr.children)
    if isinstance(expr, (Transpose, Inverse, InverseTranspose)):
        return is_identity(expr.operand)
    return False


def is_square(expr: Expression) -> bool:
    if expr.rows is not None and expr.columns is not None:
        return expr.rows == expr.columns
    if isinstance(expr, Matrix):
        return Property.SQUARE in expr.properties
    return False


def is_vector(expr: Expression) -> bool:
    return expr.is_vector


def is_scalar(expr: Expression) -> bool:
    return expr.is_scalar_shaped


def is_diagonal(expr: Expression) -> bool:
    """True when the expression is known to be diagonal."""
    if isinstance(expr, Matrix):
        return Property.DIAGONAL in expr.properties
    if isinstance(expr, Times):
        return all(is_diagonal(child) for child in expr.children)
    if isinstance(expr, (Transpose, Inverse, InverseTranspose)):
        return is_diagonal(expr.operand)
    if isinstance(expr, Plus):
        return all(is_diagonal(child) for child in expr.children)
    return False


def is_lower_triangular(expr: Expression) -> bool:
    """Recursive predicate from Fig. 6 of the paper."""
    if isinstance(expr, Matrix):
        return Property.LOWER_TRIANGULAR in expr.properties
    if isinstance(expr, Times):
        return all(is_lower_triangular(child) for child in expr.children)
    if isinstance(expr, Transpose):
        return is_upper_triangular(expr.operand)
    if isinstance(expr, Inverse):
        return is_lower_triangular(expr.operand)
    if isinstance(expr, InverseTranspose):
        return is_upper_triangular(expr.operand)
    if isinstance(expr, Plus):
        return all(is_lower_triangular(child) for child in expr.children)
    return False


def is_upper_triangular(expr: Expression) -> bool:
    """Symmetric counterpart of :func:`is_lower_triangular`."""
    if isinstance(expr, Matrix):
        return Property.UPPER_TRIANGULAR in expr.properties
    if isinstance(expr, Times):
        return all(is_upper_triangular(child) for child in expr.children)
    if isinstance(expr, Transpose):
        return is_lower_triangular(expr.operand)
    if isinstance(expr, Inverse):
        return is_upper_triangular(expr.operand)
    if isinstance(expr, InverseTranspose):
        return is_lower_triangular(expr.operand)
    if isinstance(expr, Plus):
        return all(is_upper_triangular(child) for child in expr.children)
    return False


def is_unit_diagonal(expr: Expression) -> bool:
    if isinstance(expr, Matrix):
        return Property.UNIT_DIAGONAL in expr.properties
    if isinstance(expr, Times):
        # The product of unit-triangular matrices of matching orientation is
        # unit triangular; for safety require all children unit diagonal and
        # all triangular with the same orientation.
        same_lower = all(is_lower_triangular(child) for child in expr.children)
        same_upper = all(is_upper_triangular(child) for child in expr.children)
        return (same_lower or same_upper) and all(
            is_unit_diagonal(child) for child in expr.children
        )
    if isinstance(expr, (Transpose, Inverse, InverseTranspose)):
        return is_unit_diagonal(expr.operand)
    return False


def is_symmetric(expr: Expression) -> bool:
    """True when the expression equals its own transpose, symbolically."""
    if isinstance(expr, Matrix):
        return Property.SYMMETRIC in expr.properties
    if isinstance(expr, (Transpose, Inverse, InverseTranspose)):
        return is_symmetric(expr.operand)
    if isinstance(expr, Plus):
        return all(is_symmetric(child) for child in expr.children)
    if isinstance(expr, Times):
        if all(is_diagonal(child) for child in expr.children):
            return True
        return _is_congruence_form(expr) or _is_gram_form(expr)
    return False


def is_spd(expr: Expression) -> bool:
    """True when the expression is known to be symmetric positive definite."""
    if isinstance(expr, Matrix):
        return Property.SPD in expr.properties
    if isinstance(expr, (Inverse, InverseTranspose)):
        return is_spd(expr.operand)
    if isinstance(expr, Transpose):
        return is_spd(expr.operand)
    if isinstance(expr, Plus):
        # The sum of SPD matrices is SPD.
        return all(is_spd(child) for child in expr.children)
    if isinstance(expr, Times):
        if all(is_diagonal(child) and is_spd(child) for child in expr.children):
            return True
        # Congruence B M B^T with M SPD and B square non-singular is SPD.
        if _is_congruence_form(expr, require_spd_core=True):
            return True
        # Gram form A^T A (or A A^T) with A of full rank is SPD.
        if _is_gram_form(expr, require_full_rank=True):
            return True
    return False


def is_spsd(expr: Expression) -> bool:
    if isinstance(expr, Matrix):
        return Property.SPSD in expr.properties or Property.SPD in expr.properties
    if is_spd(expr):
        return True
    if isinstance(expr, (Transpose, Inverse, InverseTranspose)):
        return is_spsd(expr.operand)
    if isinstance(expr, Plus):
        return all(is_spsd(child) for child in expr.children)
    if isinstance(expr, Times):
        return _is_gram_form(expr) or _is_congruence_form(expr, require_spsd_core=True)
    return False


def is_orthogonal(expr: Expression) -> bool:
    if isinstance(expr, Matrix):
        return Property.ORTHOGONAL in expr.properties
    if isinstance(expr, (Transpose, Inverse, InverseTranspose)):
        return is_orthogonal(expr.operand)
    if isinstance(expr, Times):
        return all(is_orthogonal(child) for child in expr.children)
    return False


def is_permutation(expr: Expression) -> bool:
    if isinstance(expr, Matrix):
        return Property.PERMUTATION in expr.properties
    if isinstance(expr, (Transpose, Inverse, InverseTranspose)):
        return is_permutation(expr.operand)
    if isinstance(expr, Times):
        return all(is_permutation(child) for child in expr.children)
    return False


def is_non_singular(expr: Expression) -> bool:
    if isinstance(expr, Matrix):
        return Property.NON_SINGULAR in expr.properties
    if isinstance(expr, (Transpose, Inverse, InverseTranspose)):
        return is_non_singular(expr.operand)
    if isinstance(expr, Times):
        return all(is_square(child) and is_non_singular(child) for child in expr.children)
    return False


def is_full_rank(expr: Expression) -> bool:
    if isinstance(expr, Matrix):
        return Property.FULL_RANK in expr.properties
    if isinstance(expr, (Transpose, Inverse, InverseTranspose)):
        return is_full_rank(expr.operand)
    if is_non_singular(expr):
        return True
    return False


def is_banded(expr: Expression) -> bool:
    if isinstance(expr, Matrix):
        return Property.BANDED in expr.properties
    if isinstance(expr, Transpose):
        return is_banded(expr.operand)
    if is_diagonal(expr):
        return True
    return False


def is_tridiagonal(expr: Expression) -> bool:
    if isinstance(expr, Matrix):
        return Property.TRIDIAGONAL in expr.properties
    if isinstance(expr, Transpose):
        return is_tridiagonal(expr.operand)
    if is_diagonal(expr):
        return True
    return False


# --------------------------------------------------------------------------
# Structure helpers for symmetric / SPD product forms.
# --------------------------------------------------------------------------

def _strip_unary(expr: Expression) -> Expression:
    while isinstance(expr, (Transpose, Inverse, InverseTranspose)):
        expr = expr.operand
    return expr


def _transpose_of(expr: Expression) -> Expression:
    """Return the syntactic transpose of a factor, normalized for comparison."""
    if isinstance(expr, Transpose):
        return expr.operand
    if isinstance(expr, Inverse):
        return InverseTranspose(expr.operand)
    if isinstance(expr, InverseTranspose):
        return Inverse(expr.operand)
    return Transpose(expr)


def _factors_are_mutual_transposes(left: Expression, right: Expression) -> bool:
    """True when ``right`` is syntactically the transpose of ``left``.

    Symmetric leaves are their own transposes, which the comparison takes
    into account (``A`` and ``A`` with symmetric ``A`` count as a pair).
    """
    if _transpose_of(left) == right or _transpose_of(right) == left:
        return True
    if left == right and is_symmetric(left):
        return True
    core_left, core_right = _strip_unary(left), _strip_unary(right)
    if core_left == core_right and isinstance(core_left, Matrix):
        if is_symmetric(core_left):
            # e.g. A^-1 and A^-T over a symmetric A.
            left_inverted = isinstance(left, (Inverse, InverseTranspose))
            right_inverted = isinstance(right, (Inverse, InverseTranspose))
            return left_inverted == right_inverted
    return False


def _is_gram_form(expr: Times, require_full_rank: bool = False) -> bool:
    """Recognize ``A^T A`` / ``A A^T`` shaped products (possibly with a
    symmetric middle factor), which are symmetric positive semi-definite."""
    children = expr.children
    if len(children) == 2:
        left, right = children
        if _factors_are_mutual_transposes(left, right):
            if not require_full_rank:
                return True
            return is_full_rank(left) or is_full_rank(right)
        return False
    if len(children) == 3:
        left, middle, right = children
        if not _factors_are_mutual_transposes(left, right):
            return False
        core_ok = is_spd(middle) if require_full_rank else is_spsd(middle) or is_symmetric(middle)
        rank_ok = (not require_full_rank) or is_non_singular(left) or is_non_singular(right)
        return core_ok and rank_ok
    return False


def _is_congruence_form(
    expr: Times,
    require_spd_core: bool = False,
    require_spsd_core: bool = False,
) -> bool:
    """Recognize congruence transforms ``B M B^T`` (and ``B^T M B``).

    The transform preserves symmetry always, positive definiteness when ``B``
    is non-singular, and positive semi-definiteness unconditionally.
    """
    children = expr.children
    if len(children) != 3:
        return False
    left, middle, right = children
    if not _factors_are_mutual_transposes(left, right):
        return False
    if require_spd_core:
        return is_spd(middle) and (is_non_singular(left) or is_non_singular(right))
    if require_spsd_core:
        return is_spsd(middle)
    return is_symmetric(middle)


# --------------------------------------------------------------------------
# The top-level inference entry point.
# --------------------------------------------------------------------------

class _PredicateRegistry(Dict[Property, Callable[[Expression], bool]]):
    """Predicate registry that records mutations.

    Every write bumps ``version``, which the memoized inference engine
    watches: on any change it drops its caches and, while the registry
    differs from the built-in set (a predicate was added, removed or
    replaced), routes all queries through the reference predicates so that
    user customizations are honoured exactly.
    """

    version: int = 0

    def _bump(self) -> None:
        self.version += 1

    def __setitem__(self, key, value) -> None:
        unchanged = self.get(key) is value
        super().__setitem__(key, value)
        if not unchanged:
            self._bump()

    def __delitem__(self, key) -> None:
        super().__delitem__(key)
        self._bump()

    def pop(self, *args):
        result = super().pop(*args)
        self._bump()
        return result

    def popitem(self):
        result = super().popitem()
        self._bump()
        return result

    def clear(self) -> None:
        super().clear()
        self._bump()

    def update(self, *args, **kwargs) -> None:
        super().update(*args, **kwargs)
        self._bump()

    def __ior__(self, other):
        # ``PREDICATES |= {...}`` goes through dict.__ior__ at the C level,
        # bypassing the overridden ``update``; intercept it explicitly.
        result = super().__ior__(other)
        self._bump()
        return result

    def setdefault(self, key, default=None):
        inserted = key not in self
        result = super().setdefault(key, default)
        if inserted:
            self._bump()
        return result


#: Registry mapping each inferable property to its predicate.  Exposed so
#: that users can register predicates for additional properties (or replace
#: the built-in ones); the memoized engine detects any mutation and defers
#: to the registry until it matches the built-in set again.
PREDICATES: Dict[Property, Callable[[Expression], bool]] = _PredicateRegistry({
    Property.ZERO: is_zero,
    Property.IDENTITY: is_identity,
    Property.DIAGONAL: is_diagonal,
    Property.LOWER_TRIANGULAR: is_lower_triangular,
    Property.UPPER_TRIANGULAR: is_upper_triangular,
    Property.UNIT_DIAGONAL: is_unit_diagonal,
    Property.SYMMETRIC: is_symmetric,
    Property.SPD: is_spd,
    Property.SPSD: is_spsd,
    Property.ORTHOGONAL: is_orthogonal,
    Property.PERMUTATION: is_permutation,
    Property.NON_SINGULAR: is_non_singular,
    Property.FULL_RANK: is_full_rank,
    Property.BANDED: is_banded,
    Property.TRIDIAGONAL: is_tridiagonal,
})

#: Snapshot of the built-in registry contents, used to decide whether the
#: registry has been customized (and the fused rules must step aside).
_BUILTIN_PREDICATE_FUNCS: Dict[Property, Callable[[Expression], bool]] = dict(PREDICATES)


def registry_version() -> int:
    """Mutation counter of :data:`PREDICATES`.

    Caches whose entries embed predicate semantics (the memoized inference
    engine, the kernel-match cache) record this value and invalidate
    themselves whenever it changes.
    """
    return PREDICATES.version  # type: ignore[attr-defined]


def registry_is_customized() -> bool:
    """True while :data:`PREDICATES` differs from the built-in predicate set.

    While customized, structure-keyed caches must step aside: a user
    predicate may inspect anything about an expression (even operand names),
    so results are no longer a function of shape/property structure alone.
    """
    return len(PREDICATES) != len(_BUILTIN_PREDICATE_FUNCS) or any(
        PREDICATES.get(prop) is not func
        for prop, func in _BUILTIN_PREDICATE_FUNCS.items()
    )


def has_property_legacy(expr: Expression, prop: Property) -> bool:
    """Test a single property using the reference (per-predicate) path."""
    if prop is Property.SQUARE:
        return is_square(expr)
    if prop is Property.VECTOR:
        return is_vector(expr)
    if prop is Property.SCALAR:
        return is_scalar(expr)
    predicate = PREDICATES.get(prop)
    if predicate is None:
        return False
    return predicate(expr)


def infer_properties_legacy(expr: Expression) -> FrozenSet[Property]:
    """Infer the full (closed) property set via the reference predicates.

    This is the literal ``infer_properties`` routine of Fig. 4, line 10: one
    recursive predicate walk per property.  It is kept as the oracle that the
    memoized single-pass engine is differentially tested against, and as the
    fallback activated by :func:`legacy_inference`.
    """
    inferred = {prop for prop, predicate in PREDICATES.items() if predicate(expr)}
    if is_square(expr):
        inferred.add(Property.SQUARE)
    if expr.is_vector:
        inferred.add(Property.VECTOR)
    if expr.is_scalar_shaped:
        inferred.add(Property.SCALAR)
    return check_consistency(inferred)


# --------------------------------------------------------------------------
# Single-pass memoized inference engine.
# --------------------------------------------------------------------------

#: The built-in predicate keys (derived from the snapshot so the two can
#: never drift apart); the fused bottom-up rules of the engine cover exactly
#: this set, and any registry customization routes around them.
_BUILTIN_PROPS: FrozenSet[Property] = frozenset(_BUILTIN_PREDICATE_FUNCS)

_RawMemo = Dict[Expression, FrozenSet[Property]]


def _mutual_transposes_memo(left: Expression, right: Expression, memo: _RawMemo) -> bool:
    """Memoized equivalent of :func:`_factors_are_mutual_transposes`."""
    if _transpose_of(left) == right or _transpose_of(right) == left:
        return True
    if left == right and Property.SYMMETRIC in memo[left]:
        return True
    core_left, core_right = _strip_unary(left), _strip_unary(right)
    if core_left == core_right and isinstance(core_left, Matrix):
        if Property.SYMMETRIC in core_left.properties:
            left_inverted = isinstance(left, (Inverse, InverseTranspose))
            right_inverted = isinstance(right, (Inverse, InverseTranspose))
            return left_inverted == right_inverted
    return False


def _gram_form_memo(
    children: Sequence[Expression], memo: _RawMemo, require_full_rank: bool
) -> bool:
    """Memoized equivalent of :func:`_is_gram_form`."""
    if len(children) == 2:
        left, right = children
        if _mutual_transposes_memo(left, right, memo):
            if not require_full_rank:
                return True
            return Property.FULL_RANK in memo[left] or Property.FULL_RANK in memo[right]
        return False
    if len(children) == 3:
        left, middle, right = children
        if not _mutual_transposes_memo(left, right, memo):
            return False
        mid = memo[middle]
        if require_full_rank:
            core_ok = Property.SPD in mid
        else:
            core_ok = Property.SPSD in mid or Property.SYMMETRIC in mid
        rank_ok = (
            not require_full_rank
            or Property.NON_SINGULAR in memo[left]
            or Property.NON_SINGULAR in memo[right]
        )
        return core_ok and rank_ok
    return False


def _congruence_form_memo(
    children: Sequence[Expression], memo: _RawMemo, mode: str
) -> bool:
    """Memoized equivalent of :func:`_is_congruence_form` (*mode* selects the
    core requirement: ``"symmetric"``, ``"spd"`` or ``"spsd"``)."""
    if len(children) != 3:
        return False
    left, middle, right = children
    if not _mutual_transposes_memo(left, right, memo):
        return False
    mid = memo[middle]
    if mode == "spd":
        return Property.SPD in mid and (
            Property.NON_SINGULAR in memo[left] or Property.NON_SINGULAR in memo[right]
        )
    if mode == "spsd":
        return Property.SPSD in mid
    return Property.SYMMETRIC in mid


def _times_raw(node: Times, memo: _RawMemo) -> FrozenSet[Property]:
    """Fused bottom-up rules for a product node (mirrors the Fig. 6
    predicates case by case; any divergence is a bug caught by the
    differential tests)."""
    children = node.children
    sets = [memo[child] for child in children]
    raw = set()
    if any(Property.ZERO in o for o in sets):
        raw.add(Property.ZERO)
    if all(Property.IDENTITY in o for o in sets):
        raw.add(Property.IDENTITY)
    diagonal = all(Property.DIAGONAL in o for o in sets)
    if diagonal:
        # ``is_banded`` / ``is_tridiagonal`` accept any diagonal product.
        raw.update((Property.DIAGONAL, Property.BANDED, Property.TRIDIAGONAL))
    lower = all(Property.LOWER_TRIANGULAR in o for o in sets)
    upper = all(Property.UPPER_TRIANGULAR in o for o in sets)
    if lower:
        raw.add(Property.LOWER_TRIANGULAR)
    if upper:
        raw.add(Property.UPPER_TRIANGULAR)
    if (lower or upper) and all(Property.UNIT_DIAGONAL in o for o in sets):
        raw.add(Property.UNIT_DIAGONAL)
    gram = _gram_form_memo(children, memo, require_full_rank=False)
    symmetric = diagonal or gram or _congruence_form_memo(children, memo, "symmetric")
    if symmetric:
        raw.add(Property.SYMMETRIC)
    spd = (
        all(Property.DIAGONAL in o and Property.SPD in o for o in sets)
        or _congruence_form_memo(children, memo, "spd")
        or _gram_form_memo(children, memo, require_full_rank=True)
    )
    if spd:
        raw.add(Property.SPD)
    if spd or gram or _congruence_form_memo(children, memo, "spsd"):
        raw.add(Property.SPSD)
    if all(Property.ORTHOGONAL in o for o in sets):
        raw.add(Property.ORTHOGONAL)
    if all(Property.PERMUTATION in o for o in sets):
        raw.add(Property.PERMUTATION)
    if all(
        is_square(child) and Property.NON_SINGULAR in o
        for child, o in zip(children, sets)
    ):
        # ``is_full_rank`` on a product reduces to ``is_non_singular``.
        raw.update((Property.NON_SINGULAR, Property.FULL_RANK))
    return frozenset(raw)


def _plus_raw(sets: List[FrozenSet[Property]]) -> FrozenSet[Property]:
    """Fused bottom-up rules for a sum node."""
    raw = set()
    if all(Property.ZERO in o for o in sets):
        raw.add(Property.ZERO)
    diagonal = all(Property.DIAGONAL in o for o in sets)
    if diagonal:
        raw.update((Property.DIAGONAL, Property.BANDED, Property.TRIDIAGONAL))
    if all(Property.LOWER_TRIANGULAR in o for o in sets):
        raw.add(Property.LOWER_TRIANGULAR)
    if all(Property.UPPER_TRIANGULAR in o for o in sets):
        raw.add(Property.UPPER_TRIANGULAR)
    if all(Property.SYMMETRIC in o for o in sets):
        raw.add(Property.SYMMETRIC)
    spd = all(Property.SPD in o for o in sets)
    if spd:
        raw.add(Property.SPD)
    if spd or all(Property.SPSD in o for o in sets):
        raw.add(Property.SPSD)
    return frozenset(raw)


def _transpose_raw(o: FrozenSet[Property]) -> FrozenSet[Property]:
    """Property map through transposition (triangularity swaps)."""
    raw = set()
    for passthrough in (
        Property.ZERO,
        Property.IDENTITY,
        Property.DIAGONAL,
        Property.UNIT_DIAGONAL,
        Property.SYMMETRIC,
        Property.SPD,
        Property.ORTHOGONAL,
        Property.PERMUTATION,
        Property.NON_SINGULAR,
        Property.FULL_RANK,
        Property.BANDED,
        Property.TRIDIAGONAL,
    ):
        if passthrough in o:
            raw.add(passthrough)
    if Property.UPPER_TRIANGULAR in o:
        raw.add(Property.LOWER_TRIANGULAR)
    if Property.LOWER_TRIANGULAR in o:
        raw.add(Property.UPPER_TRIANGULAR)
    if Property.SPD in o or Property.SPSD in o:
        raw.add(Property.SPSD)
    return frozenset(raw)


def _inverse_raw(o: FrozenSet[Property], swap_triangular: bool) -> FrozenSet[Property]:
    """Property map through (transposed) inversion.

    ``is_zero`` has no inverse rule (an invertible operand cannot be zero)
    and bandedness is only preserved for diagonal operands.
    """
    raw = set()
    for passthrough in (
        Property.IDENTITY,
        Property.DIAGONAL,
        Property.UNIT_DIAGONAL,
        Property.SYMMETRIC,
        Property.SPD,
        Property.ORTHOGONAL,
        Property.PERMUTATION,
        Property.NON_SINGULAR,
        Property.FULL_RANK,
    ):
        if passthrough in o:
            raw.add(passthrough)
    lower = Property.LOWER_TRIANGULAR in o
    upper = Property.UPPER_TRIANGULAR in o
    if swap_triangular:
        lower, upper = upper, lower
    if lower:
        raw.add(Property.LOWER_TRIANGULAR)
    if upper:
        raw.add(Property.UPPER_TRIANGULAR)
    if Property.SPD in o or Property.SPSD in o:
        raw.add(Property.SPSD)
    if Property.DIAGONAL in o:
        raw.update((Property.BANDED, Property.TRIDIAGONAL))
    return frozenset(raw)


class PropertyInference:
    """Single-pass, memoized symbolic property inference.

    ``raw_properties`` computes, for every node of an expression tree, the
    exact set of :data:`PREDICATES` keys whose legacy predicate would return
    ``True`` on that node -- in *one* bottom-up traversal with O(1) amortized
    work per node, instead of one recursive walk per predicate.  Results are
    memoized across calls keyed by structural identity, which collapses to
    pointer identity for hash-consed nodes (see
    :mod:`repro.algebra.interning`).

    The memo is bounded and *version aware*: a registry mutation (which
    changes predicate semantics) still drops everything, but plain capacity
    pressure evicts only the oldest chunk of entries -- dict insertion order
    is bottom-up discovery order, so the longest-unrefreshed subtrees go
    first and a long-running service keeps its recent working set warm
    instead of re-deriving every property from scratch after a reset.
    """

    #: Fraction of the memo dropped per capacity eviction (1/8 keeps the
    #: amortized bookkeeping cost per insertion O(1) while retaining most of
    #: the working set).
    _EVICT_FRACTION = 8

    def __init__(self, max_entries: int = 500_000) -> None:
        self._raw: _RawMemo = {}
        self._inferred: Dict[Expression, FrozenSet[Property]] = {}
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._registry_version = PREDICATES.version  # type: ignore[attr-defined]
        self._registry_custom = False

    def clear(self) -> None:
        self._raw.clear()
        self._inferred.clear()

    def _evict(self, memo: Dict) -> None:
        """Drop the oldest ``1/_EVICT_FRACTION`` of *memo* (at least one).

        Only called between top-level queries, never during the post-order
        walk of :meth:`raw_properties` (which relies on children staying
        memoized until their parent is resolved).
        """
        drop = max(1, len(memo) // self._EVICT_FRACTION)
        for key in list(itertools.islice(iter(memo), drop)):
            del memo[key]
        self.evictions += drop

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, object]:
        """Plain-dict counters (uniform cache-stats protocol).

        ``size`` counts the raw (pre-closure) memo, the layer every query
        funnels through; the closed-set memo is reported separately.
        """
        return {
            "layer": "inference",
            "size": len(self._raw),
            "inferred_size": len(self._inferred),
            "max_entries": self.max_entries,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "evictions": self.evictions,
            "registry_version": self._registry_version,
        }

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def _refresh_registry(self) -> None:
        """React to a mutation of :data:`PREDICATES`.

        Memoized results may embed the old predicate semantics, so the
        caches are dropped; while the registry differs from the built-in
        set, every query is answered by the reference predicates so that
        added/replaced/removed predicates are honoured exactly.
        """
        self._registry_version = PREDICATES.version  # type: ignore[attr-defined]
        self.clear()
        self._registry_custom = registry_is_customized()

    # ------------------------------------------------------------------- raw
    def raw_properties(self, expr: Expression) -> FrozenSet[Property]:
        """The set of predicate properties holding on *expr* (pre-closure)."""
        if self._registry_version != PREDICATES.version:  # type: ignore[attr-defined]
            self._refresh_registry()
        if self._registry_custom:
            return frozenset(
                prop for prop, predicate in PREDICATES.items() if predicate(expr)
            )
        memo = self._raw
        cached = memo.get(expr)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        if len(memo) >= self.max_entries:
            self._evict(memo)
        # Iterative post-order walk: children are resolved before parents, so
        # ``_node_raw`` only ever performs O(1) memo lookups.
        stack = [expr]
        while stack:
            node = stack[-1]
            if node in memo:
                stack.pop()
                continue
            pending = [child for child in node.children if child not in memo]
            if pending:
                stack.extend(pending)
                continue
            stack.pop()
            memo[node] = self._node_raw(node, memo)
        return memo[expr]

    def _node_raw(self, node: Expression, memo: _RawMemo) -> FrozenSet[Property]:
        if not node.children:
            if isinstance(node, Matrix):
                raw = node.properties & _BUILTIN_PROPS
            else:
                # Non-matrix leaves (e.g. pattern wildcards) satisfy no
                # predicate, matching the legacy fall-through behaviour.
                raw = frozenset()
        elif isinstance(node, Times):
            raw = _times_raw(node, memo)
        elif isinstance(node, Plus):
            raw = _plus_raw([memo[child] for child in node.children])
        elif isinstance(node, Transpose):
            raw = _transpose_raw(memo[node.children[0]])
        elif isinstance(node, Inverse):
            raw = _inverse_raw(memo[node.children[0]], swap_triangular=False)
        elif isinstance(node, InverseTranspose):
            raw = _inverse_raw(memo[node.children[0]], swap_triangular=True)
        else:
            # Unknown node type: defer entirely to the registered predicates.
            return frozenset(
                prop for prop, predicate in PREDICATES.items() if predicate(node)
            )
        return raw

    # ------------------------------------------------------------ public API
    def infer(self, expr: Expression) -> FrozenSet[Property]:
        """Full closed property set of *expr* (memoized); equals
        :func:`infer_properties_legacy` on every input."""
        if self._registry_version != PREDICATES.version:  # type: ignore[attr-defined]
            self._refresh_registry()
        if self._registry_custom:
            return infer_properties_legacy(expr)
        cached = self._inferred.get(expr)
        if cached is not None:
            return cached
        inferred = set(self.raw_properties(expr))
        if is_square(expr):
            inferred.add(Property.SQUARE)
        if expr.is_vector:
            inferred.add(Property.VECTOR)
        if expr.is_scalar_shaped:
            inferred.add(Property.SCALAR)
        result = check_consistency(inferred)
        if len(self._inferred) >= self.max_entries:
            self._evict(self._inferred)
        self._inferred[expr] = result
        return result

    def has_property(self, expr: Expression, prop: Property) -> bool:
        """Memoized single-property test; equals :func:`has_property_legacy`."""
        if self._registry_version != PREDICATES.version:  # type: ignore[attr-defined]
            self._refresh_registry()
        if self._registry_custom:
            return has_property_legacy(expr, prop)
        if prop in _BUILTIN_PROPS:
            # Leaf fast path: a matrix's raw predicate set is exactly its
            # (closed) declared property set restricted to the predicates.
            # This is the hottest query shape -- kernel constraints test
            # bound operands, which are always leaves in the GMC loop.
            if isinstance(expr, Matrix):
                return prop in expr.properties
            return prop in self.raw_properties(expr)
        if prop is Property.SQUARE:
            return is_square(expr)
        if prop is Property.VECTOR:
            return is_vector(expr)
        if prop is Property.SCALAR:
            return is_scalar(expr)
        # A non-customized registry holds exactly the built-in keys (handled
        # above), and user-registered properties were delegated to the
        # legacy path already -- nothing else is inferable.
        return False


#: The process-wide engine used by :func:`infer_properties`.
_ENGINE = PropertyInference()
_ACTIVE_ENGINE: Optional[PropertyInference] = _ENGINE


def inference_engine() -> PropertyInference:
    """The process-wide memoized inference engine."""
    return _ENGINE


def clear_inference_cache() -> None:
    """Drop all memoized inference results (tests / predicate registration)."""
    _ENGINE.clear()


@contextmanager
def legacy_inference() -> Iterator[None]:
    """Route :func:`infer_properties` / :func:`has_property` through the
    reference per-predicate path while the context is active."""
    global _ACTIVE_ENGINE
    previous = _ACTIVE_ENGINE
    _ACTIVE_ENGINE = None
    try:
        yield
    finally:
        _ACTIVE_ENGINE = previous


def has_property(expr: Expression, prop: Property) -> bool:
    """Test a single property on an expression, using symbolic inference."""
    engine = _ACTIVE_ENGINE
    if engine is None:
        return has_property_legacy(expr, prop)
    return engine.has_property(expr, prop)


def infer_properties(expr: Expression) -> FrozenSet[Property]:
    """Infer the full (closed) set of properties of a symbolic expression.

    This is the ``infer_properties`` routine used by the GMC algorithm to
    annotate temporaries (Fig. 4, line 10).  By default it runs on the
    single-pass memoized engine, so repeated inference over shared subtrees
    (every DP cell of the GMC algorithm) costs O(1) amortized per node; the
    result is bit-identical to :func:`infer_properties_legacy`.
    """
    engine = _ACTIVE_ENGINE
    if engine is None:
        return infer_properties_legacy(expr)
    return engine.infer(expr)


def properties_after_transpose(properties: FrozenSet[Property]) -> FrozenSet[Property]:
    """Map a property set through transposition without an expression tree.

    Used by code that manipulates bare property sets (e.g. kernel output
    rules): lower and upper triangular swap; everything else is preserved.
    """
    swapped = set(properties)
    lower = Property.LOWER_TRIANGULAR in properties
    upper = Property.UPPER_TRIANGULAR in properties
    swapped.discard(Property.LOWER_TRIANGULAR)
    swapped.discard(Property.UPPER_TRIANGULAR)
    if lower:
        swapped.add(Property.UPPER_TRIANGULAR)
    if upper:
        swapped.add(Property.LOWER_TRIANGULAR)
    return check_consistency(swapped)


def properties_after_inverse(properties: FrozenSet[Property]) -> FrozenSet[Property]:
    """Map a property set through inversion (triangularity, SPD, diagonality
    and orthogonality are preserved; zero is impossible)."""
    preserved = {
        Property.LOWER_TRIANGULAR,
        Property.UPPER_TRIANGULAR,
        Property.DIAGONAL,
        Property.SYMMETRIC,
        Property.SPD,
        Property.ORTHOGONAL,
        Property.PERMUTATION,
        Property.UNIT_DIAGONAL,
        Property.IDENTITY,
        Property.SQUARE,
        Property.NON_SINGULAR,
        Property.FULL_RANK,
    }
    return check_consistency(set(properties) & preserved | {Property.NON_SINGULAR})

"""Versioned on-disk snapshots of the plan cache and the match cache.

A snapshot lets a restarted worker boot *warm*: the signature-keyed state of
the two caches that dominate repeated-traffic latency -- the plan cache
(:mod:`repro.persist.plan_cache`) and the kernel-match cache
(:mod:`repro.matching.match_cache`) -- is serialized to one JSON file and
re-installed at boot, so the first signature-equal request after a restart
is answered from cache instead of re-running the dynamic program.

Format
------
One JSON object::

    {
      "format":  "repro-cache-snapshot",
      "version": 1,
      "catalog": {"name": ..., "kernels": <digest>,
                  "net_version": N, "registry_version": M},
      "plan_entries":  [{"signature": [...], "fingerprint": [...],
                         "recipe": {...}}, ...],
      "match_entries": [{"signature": [...],
                         "matches": [[kernel_id, [[name, pos], ...]], ...]},
                        ...],
      "checksum": "sha256:..."
    }

Signatures are encoded *canonically* (property sets as sorted names), never
via ``repr`` -- enum hashes vary across processes, so only a canonical
encoding makes the on-disk key equal to the signature a restarted process
computes.  Writes are atomic (temp file + ``os.replace``), so a crash
mid-write leaves the previous snapshot intact.

Loading is **never allowed to crash a worker**: a missing, truncated,
corrupt or checksum-mismatched file, an unknown format/version, a different
catalog (kernel-set digest), or catalog/predicate-registry version drift
all produce a clean *cold boot* -- :func:`load_snapshot` returns
``{"loaded": False, "reason": ...}`` and the caches simply start empty.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..algebra.inference import registry_version
from ..algebra.properties import Property
from ..kernels.catalog import KernelCatalog
from .plan_cache import PlanCache, PlanRecipe

__all__ = [
    "SNAPSHOT_FORMAT",
    "SNAPSHOT_VERSION",
    "SNAPSHOT_FILENAME",
    "SnapshotError",
    "snapshot_path",
    "capture_state",
    "merge_states",
    "write_snapshot",
    "read_snapshot",
    "restore_state",
    "load_snapshot",
]

SNAPSHOT_FORMAT = "repro-cache-snapshot"
SNAPSHOT_VERSION = 1
#: File name used inside a ``--snapshot-dir`` directory.
SNAPSHOT_FILENAME = "repro-cache-snapshot.json"


class SnapshotError(RuntimeError):
    """A snapshot could not be read/validated (callers fall back cold)."""


def snapshot_path(directory) -> Path:
    """The snapshot file inside a snapshot directory."""
    return Path(directory) / SNAPSHOT_FILENAME


# ---------------------------------------------------------------------------
# Signature codec.
# ---------------------------------------------------------------------------

def _encode_signature(signature: Tuple) -> Optional[List]:
    """Canonical JSON form of an expression signature (or ``None``).

    Operator parts ``(type_name, arity)`` become ``["o", name, arity]``;
    matrix-leaf parts ``(index, rows, columns, properties)`` become
    ``["m", index, rows, columns, [sorted property names]]``.  Signatures
    containing any other leaf kind (pattern wildcards) are not encodable --
    the caches bypass those subjects anyway.
    """
    encoded: List = []
    for part in signature:
        head = part[0]
        if isinstance(head, str):
            if len(part) == 2 and isinstance(part[1], int):
                encoded.append(["o", head, part[1]])
            else:
                return None
        elif isinstance(head, int) and len(part) == 4:
            index, rows, columns, properties = part
            encoded.append(
                ["m", index, rows, columns, sorted(p.name for p in properties)]
            )
        else:
            return None
    return encoded


def _decode_signature(encoded: List) -> Tuple:
    parts = []
    for entry in encoded:
        tag = entry[0]
        if tag == "o":
            parts.append((str(entry[1]), int(entry[2])))
        elif tag == "m":
            parts.append(
                (
                    int(entry[1]),
                    int(entry[2]),
                    int(entry[3]),
                    frozenset(Property[name] for name in entry[4]),
                )
            )
        else:
            raise SnapshotError(f"unknown signature part tag {tag!r}")
    return tuple(parts)


def _catalog_digest(catalog: KernelCatalog) -> str:
    payload = ",".join(sorted(kernel.id for kernel in catalog))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def _catalog_meta(catalog: KernelCatalog) -> Dict[str, object]:
    return {
        "name": catalog.name,
        "kernels": _catalog_digest(catalog),
        "net_version": catalog.net.version,
        "registry_version": registry_version(),
    }


# ---------------------------------------------------------------------------
# Capture / merge.
# ---------------------------------------------------------------------------

def capture_state(plan_cache: PlanCache, catalog: KernelCatalog) -> Dict[str, object]:
    """The serializable snapshot body of one process's caches (no checksum)."""
    plan_entries = []
    for signature, fingerprint, recipe in plan_cache.export_entries():
        encoded = _encode_signature(signature)
        if encoded is None:
            continue
        plan_entries.append(
            {
                "signature": encoded,
                "fingerprint": list(fingerprint),
                "recipe": recipe.to_wire(),
            }
        )
    match_entries = []
    for signature, matches in catalog.match_cache.export_entries():
        encoded = _encode_signature(signature)
        if encoded is None:
            continue
        match_entries.append(
            {
                "signature": encoded,
                "matches": [
                    [payload.id, [[name, pos] for name, pos in slots]]
                    for payload, slots in matches
                ],
            }
        )
    return {
        "format": SNAPSHOT_FORMAT,
        "version": SNAPSHOT_VERSION,
        "catalog": _catalog_meta(catalog),
        "plan_entries": plan_entries,
        "match_entries": match_entries,
    }


def merge_states(states) -> Dict[str, object]:
    """Union several workers' snapshot bodies into one (first key wins).

    Workers of one pool share the catalog configuration; a state captured
    against a different catalog raises :class:`SnapshotError` rather than
    silently mixing incompatible plans.
    """
    states = [state for state in states if state]
    if not states:
        raise SnapshotError("no snapshot states to merge")
    merged = {
        "format": SNAPSHOT_FORMAT,
        "version": SNAPSHOT_VERSION,
        "catalog": states[0]["catalog"],
        "plan_entries": [],
        "match_entries": [],
    }
    seen_plans, seen_matches = set(), set()
    for state in states:
        if state["catalog"] != merged["catalog"]:
            raise SnapshotError("cannot merge snapshots of different catalogs")
        for entry in state["plan_entries"]:
            key = json.dumps(
                [entry["signature"], entry["fingerprint"]], sort_keys=True
            )
            if key not in seen_plans:
                seen_plans.add(key)
                merged["plan_entries"].append(entry)
        for entry in state["match_entries"]:
            key = json.dumps(entry["signature"], sort_keys=True)
            if key not in seen_matches:
                seen_matches.add(key)
                merged["match_entries"].append(entry)
    return merged


# ---------------------------------------------------------------------------
# File I/O.
# ---------------------------------------------------------------------------

def _checksum(body: Dict[str, object]) -> str:
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return "sha256:" + hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def write_snapshot(path, state: Dict[str, object]) -> Dict[str, object]:
    """Atomically write a snapshot body; returns write metadata."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    body = dict(state)
    body.pop("checksum", None)
    body["checksum"] = _checksum({k: v for k, v in body.items() if k != "checksum"})
    payload = json.dumps(body, separators=(",", ":")) + "\n"
    handle, tmp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=path.name, suffix=".tmp"
    )
    try:
        with os.fdopen(handle, "w", encoding="utf-8") as stream:
            stream.write(payload)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return {
        "path": str(path),
        "bytes": len(payload),
        "plan_entries": len(body["plan_entries"]),
        "match_entries": len(body["match_entries"]),
    }


def read_snapshot(path) -> Dict[str, object]:
    """Read and validate a snapshot file (format, version, checksum).

    Raises :class:`SnapshotError` on every problem; :func:`load_snapshot`
    turns that into a clean cold boot.
    """
    path = Path(path)
    if not path.exists():
        raise SnapshotError("no snapshot file")
    try:
        body = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SnapshotError(f"unreadable snapshot: {exc}") from exc
    if not isinstance(body, dict):
        raise SnapshotError("snapshot is not a JSON object")
    if body.get("format") != SNAPSHOT_FORMAT:
        raise SnapshotError(f"unknown snapshot format {body.get('format')!r}")
    if body.get("version") != SNAPSHOT_VERSION:
        raise SnapshotError(
            f"snapshot version {body.get('version')!r} != {SNAPSHOT_VERSION}"
        )
    recorded = body.get("checksum")
    expected = _checksum({k: v for k, v in body.items() if k != "checksum"})
    if recorded != expected:
        raise SnapshotError("snapshot checksum mismatch (truncated or corrupt)")
    return body


def restore_state(
    state: Dict[str, object],
    plan_cache: PlanCache,
    catalog: KernelCatalog,
) -> Dict[str, int]:
    """Install a validated snapshot body into live caches.

    Raises :class:`SnapshotError` when the snapshot was captured against a
    different catalog (kernel digest), an extended discrimination net or a
    mutated predicate registry -- staleness must fall back cold, never serve
    wrong plans.
    """
    meta = state.get("catalog") or {}
    current = _catalog_meta(catalog)
    for field in ("kernels", "net_version", "registry_version"):
        if meta.get(field) != current[field]:
            raise SnapshotError(
                f"catalog drift: snapshot {field}={meta.get(field)!r}, "
                f"process has {current[field]!r}"
            )
    try:
        plan_entries = [
            (
                _decode_signature(entry["signature"]),
                tuple(entry["fingerprint"]),
                PlanRecipe.from_wire(entry["recipe"]),
            )
            for entry in state.get("plan_entries", ())
        ]
        match_entries = []
        for entry in state.get("match_entries", ()):
            matches = []
            for kernel_id, slots in entry["matches"]:
                matches.append(
                    (
                        catalog.by_id(kernel_id),
                        tuple((str(name), int(pos)) for name, pos in slots),
                    )
                )
            match_entries.append((_decode_signature(entry["signature"]), matches))
    except (KeyError, TypeError, ValueError, IndexError) as exc:
        raise SnapshotError(f"malformed snapshot entry: {exc}") from exc
    return {
        "plan_entries": plan_cache.import_entries(plan_entries),
        "match_entries": catalog.match_cache.import_entries(match_entries),
    }


def load_snapshot(
    path,
    plan_cache: PlanCache,
    catalog: KernelCatalog,
) -> Dict[str, object]:
    """Load a snapshot into live caches; never raises.

    Returns ``{"loaded": True, "path": ..., "plan_entries": n,
    "match_entries": m}`` on success, or ``{"loaded": False, "reason": ...}``
    for the clean cold-boot fallback.  A simply *absent* snapshot (the
    normal first boot) additionally carries ``"missing": True`` so callers
    -- e.g. the service's structured boot log -- can tell the routine cold
    start from a corrupt or incompatible snapshot.
    """
    if not Path(path).exists():
        return {
            "loaded": False,
            "path": str(path),
            "reason": "no snapshot file",
            "missing": True,
        }
    try:
        state = read_snapshot(path)
        counts = restore_state(state, plan_cache, catalog)
    except SnapshotError as exc:
        return {"loaded": False, "path": str(path), "reason": str(exc)}
    except Exception as exc:  # noqa: BLE001 -- a snapshot must never crash boot
        return {
            "loaded": False,
            "path": str(path),
            "reason": f"{type(exc).__name__}: {exc}",
        }
    result = {"loaded": True, "path": str(path)}
    result.update(counts)
    return result

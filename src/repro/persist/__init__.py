"""Persistence: whole-plan caching and snapshot-backed warm boot.

Two layers on top of the per-process caches of the compilation pipeline:

* :mod:`repro.persist.plan_cache` -- :class:`PlanCache`, an LRU cache
  mapping a request's name-abstracted chain signature plus an options
  fingerprint to the *full solved plan*; on a hit the entire dynamic
  program is skipped and the cached kernel calls are re-bound to the new
  request's operands by preorder position.
* :mod:`repro.persist.snapshot` -- a versioned, checksummed on-disk
  snapshot of the plan cache and the kernel-match cache, written atomically
  and loaded at worker boot so a restarted service answers its first
  signature-equal request warm.  Stale or corrupt snapshots fall back to a
  clean cold boot, never a crash.

The :class:`~repro.frontend.compiler.Compiler` session owns one
:class:`PlanCache`; the service executors (:mod:`repro.service.pool`) own
the snapshot lifecycle (``--snapshot-dir`` / ``POST /snapshot``).
"""

from .plan_cache import CachedPlanSolution, PlanCache, PlanRecipe, plan_fingerprint
from .snapshot import (
    SNAPSHOT_FILENAME,
    SNAPSHOT_FORMAT,
    SNAPSHOT_VERSION,
    SnapshotError,
    capture_state,
    load_snapshot,
    merge_states,
    read_snapshot,
    restore_state,
    snapshot_path,
    write_snapshot,
)

__all__ = [
    "PlanCache",
    "PlanRecipe",
    "CachedPlanSolution",
    "plan_fingerprint",
    "SNAPSHOT_FORMAT",
    "SNAPSHOT_VERSION",
    "SNAPSHOT_FILENAME",
    "SnapshotError",
    "snapshot_path",
    "capture_state",
    "merge_states",
    "write_snapshot",
    "read_snapshot",
    "restore_state",
    "load_snapshot",
]

"""Signature-keyed caching of whole solved plans.

The signature-keyed match cache (:mod:`repro.matching.match_cache`) removes
the per-split discrimination-net walk from repeated solves, but a repeated
solve still pays the full ``O(n^3)`` dynamic program: every cell, every
split, every cost combination.  For the service's dominant traffic --
structurally identical requests under fresh operand names -- even that is
redundant: the *entire* optimal plan (the split tree, the kernel chosen per
cell, the wildcard bindings of every kernel call) is a function of the
chain's name-abstracted :meth:`~repro.algebra.expression.Expression.signature`
and the pipeline options, never of the operand names.

:class:`PlanCache` therefore sits *above* the solvers: a
:class:`~repro.frontend.compiler.Compiler` session consults it before
dispatching to :mod:`repro.core.gmc` / :mod:`repro.core.topdown`, and on a
hit the whole DP is skipped.  The cached :class:`PlanRecipe` stores, per
kernel call of the optimal solution, the DP cell ``(i, j)``, the split
``k``, the kernel id and -- exactly as the match cache does -- the *preorder
position* of every wildcard binding inside the call's subject, so the plan
re-binds positionally against the new request's operands: the node at the
same preorder position of a signature-equal subject is the corresponding
operand, and it satisfies the same kernel constraints by construction.

Keys pair the normalized chain's signature with an **options fingerprint**
(solver, metric name, pruning, match-cache policy): two requests only share
a plan when the whole pipeline configuration matches.  Recipes are plain
data (ints, strings), which is what makes the cache snapshottable to disk
(:mod:`repro.persist.snapshot`).

Since the DAG pipeline (:mod:`repro.core.segments`) landed, keys are
naturally **segment-level**: the compiler consults the cache once per chain
segment of a decomposed program, and a segment's leaves may be the named
:class:`~repro.algebra.expression.Temporary` results of earlier segments --
the signature abstracts their names but keeps their inferred properties, so
structurally-sibling DAG programs (Jacobian blocks of one model) hit on
every segment they share a shape with.  Unresolved
:class:`~repro.algebra.expression.Reference` leaves bypass the cache: a
reference's signature does not capture its defining expression.

Invalidation mirrors the match cache, because a plan embeds strictly more
catalog semantics than a match result:

* **catalog extension** -- the cache records the discrimination net's
  ``version`` and flushes when it moves;
* **predicate-registry mutation** -- the cache records
  :func:`~repro.algebra.inference.registry_version` and flushes on change,
  and bypasses entirely while the registry is *customized*;
* nets containing **concrete-leaf patterns** or **opaque predicates** (both
  may observe what the signature abstracts away) bypass the cache, as do
  chains with non-:class:`~repro.algebra.expression.Matrix` leaves, live
  (caller-owned) metric instances and per-call catalogs differing from the
  cache's own.

Solutions produced under an expired :attr:`CompileOptions.deadline_s`
(``complete=False``) are never stored -- a truncated best-so-far plan must
not masquerade as the optimum for every future signature-equal request.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..algebra.expression import Expression, Matrix, Reference, Temporary
from ..algebra.inference import (
    infer_properties,
    registry_is_customized,
    registry_version,
)
from ..algebra.interning import intern
from ..algebra.operators import Times
from ..core.gmc import _coerce_chain
from ..kernels.catalog import KernelCatalog
from ..kernels.kernel import KernelCall, Program
from ..matching.discrimination_net import _flatten_subject
from ..matching.match_cache import _binding_slots
from ..matching.patterns import Substitution
from ..options import CompileOptions

__all__ = ["PlanRecipe", "CachedPlanSolution", "PlanCache", "plan_fingerprint"]


#: One kernel call of a cached plan: the DP cell ``(i, j)`` it computes, the
#: split ``k``, the kernel's catalog id, and the ``(wildcard name, preorder
#: position)`` re-binding slots of its subject expression.
PlanStep = Tuple[int, int, int, str, Tuple[Tuple[str, int], ...]]


def plan_fingerprint(options: CompileOptions) -> Tuple[str, str, bool, bool]:
    """The options fingerprint a plan is keyed under.

    Everything that changes which plan is optimal -- or how it is found --
    participates: the solver (the two DP orders provably agree on cost, but
    may tie-break differently), the metric *name*, pruning and the
    match-cache policy.  ``deadline_s`` is deliberately absent: a *complete*
    solution is the optimum regardless of the budget it was found under, and
    incomplete solutions are never stored.  ``parallelism`` is likewise
    absent: the parallel tier is asserted bit-identical to the serial
    reference (see :mod:`repro.core.parallel`), so a plan solved under any
    backend serves every other -- a serial solve warms the cache for
    ``threads:N`` sessions and vice versa.
    """
    return (
        options.solver,
        options.metric_name,
        bool(options.prune),
        bool(options.match_cache),
    )


@dataclass(frozen=True)
class PlanRecipe:
    """A solved plan reduced to re-bindable plain data (see module docs)."""

    #: Number of chain factors.
    length: int
    #: Kernel calls in dependency (emission) order.
    steps: Tuple[PlanStep, ...]

    def to_wire(self) -> dict:
        """JSON-compatible form (used by :mod:`repro.persist.snapshot`)."""
        return {
            "length": self.length,
            "steps": [
                [i, j, k, kernel_id, [[name, pos] for name, pos in slots]]
                for i, j, k, kernel_id, slots in self.steps
            ],
        }

    @classmethod
    def from_wire(cls, payload: dict) -> "PlanRecipe":
        return cls(
            length=int(payload["length"]),
            steps=tuple(
                (
                    int(i),
                    int(j),
                    int(k),
                    str(kernel_id),
                    tuple((str(name), int(pos)) for name, pos in slots),
                )
                for i, j, k, kernel_id, slots in payload["steps"]
            ),
        )


class CachedPlanSolution:
    """A plan-cache hit, re-bound to a new chain's operands.

    Duck-types the solution interface the compiler front-end consumes
    (:meth:`program`, :meth:`kernel_calls`, :meth:`parenthesization`,
    :attr:`optimal_cost`, :attr:`computable`, ...), so a cached plan is a
    drop-in replacement for a :class:`~repro.core.gmc.GMCSolution` /
    :class:`~repro.core.topdown.TopDownSolution` everywhere downstream of
    the solver: code emission, the service response path and telemetry.

    The re-binding replays the recipe against the new factors: temporaries
    are re-materialized per cell (their properties re-inferred from the new
    sub-chain, which memoizes by canonical node), substitutions are re-bound
    by preorder position, and kernel costs are re-evaluated through the
    metric's memo -- all linear in the plan, never ``O(n^3)``.
    """

    #: Cached plans are only stored for computable, complete solutions.
    computable = True
    complete = True
    from_plan_cache = True

    def __init__(
        self,
        recipe: PlanRecipe,
        factors: Tuple[Expression, ...],
        expression: Expression,
        metric,
        catalog: KernelCatalog,
    ) -> None:
        self.recipe = recipe
        self.factors = factors
        self.expression = expression
        self.metric = metric
        self.catalog = catalog
        self.generation_time = 0.0
        self._calls: Optional[List[KernelCall]] = None
        self._operands: Dict[Tuple[int, int], Matrix] = {}
        self._cost: object = metric.zero

    @property
    def length(self) -> int:
        return len(self.factors)

    # ------------------------------------------------------------- rebinding
    def _operand(self, i: int, j: int) -> Matrix:
        """The symbolic operand for ``M[i..j]`` (factor or fresh temporary)."""
        if i == j:
            return self.factors[i]  # type: ignore[return-value]
        key = (i, j)
        operand = self._operands.get(key)
        if operand is None:
            sub_chain = intern(Times(*self.factors[i : j + 1]))
            operand = Temporary(
                rows=sub_chain.rows,
                columns=sub_chain.columns,
                properties=infer_properties(sub_chain),
                origin=sub_chain,
            )
            self._operands[key] = operand
        return operand

    def kernel_calls(self) -> List[KernelCall]:
        """The re-bound kernel calls, materialized once (dependency order)."""
        if self._calls is not None:
            return self._calls
        metric = self.metric
        cell_costs: Dict[Tuple[int, int], object] = {}

        def cost_of(i: int, j: int) -> object:
            return metric.zero if i == j else cell_costs[(i, j)]

        calls: List[KernelCall] = []
        for i, j, k, kernel_id, slots in self.recipe.steps:
            kernel = self.catalog.by_id(kernel_id)
            expr = Times(self._operand(i, k), self._operand(k + 1, j))
            nodes, _ = _flatten_subject(expr)
            substitution = Substitution._from_owned_dict(
                {name: nodes[position] for name, position in slots}
            )
            kernel_cost = metric.kernel_cost_cached(kernel, substitution)
            # Replicate the DP's accumulation tree exactly, so the reported
            # optimum is bit-identical to a cold solve for every metric.
            cell_costs[(i, j)] = metric.combine(
                metric.combine(cost_of(i, k), cost_of(k + 1, j)), kernel_cost
            )
            calls.append(
                KernelCall(
                    kernel=kernel,
                    substitution=substitution,
                    output=self._operand(i, j),
                    expression=expr,
                    flops=kernel.flops(substitution),
                    cost=kernel_cost,
                )
            )
        self._cost = cost_of(0, self.length - 1)
        self._calls = calls
        return calls

    # ------------------------------------------------------ solution surface
    @property
    def optimal_cost(self) -> object:
        self.kernel_calls()
        return self._cost

    @property
    def output(self) -> Optional[Matrix]:
        self.kernel_calls()
        return self._operand(0, self.length - 1)

    def program(self, strategy_name: str = "GMC (cached plan)") -> Program:
        return Program(
            calls=list(self.kernel_calls()),
            output=self.output,
            expression=self.expression,
            strategy=strategy_name,
        )

    @property
    def total_flops(self) -> float:
        return sum(call.flops for call in self.kernel_calls())

    def kernel_sequence(self) -> List[str]:
        return [call.kernel.display_name for call in self.kernel_calls()]

    def parenthesization(self) -> str:
        splits = {(i, j): k for i, j, k, _, _ in self.recipe.steps}

        def render(i: int, j: int) -> str:
            if i == j:
                return str(self.factors[i])
            k = splits[(i, j)]
            return f"({render(i, k)} * {render(k + 1, j)})"

        if self.length == 1:
            return str(self.factors[0])
        return render(0, self.length - 1)

    def __str__(self) -> str:
        return (
            f"cached plan for {self.expression}\n"
            f"  kernels: {' -> '.join(self.kernel_sequence())}"
        )


#: Internal cache key: (chain signature, options fingerprint).
_PlanKey = Tuple[Tuple, Tuple[str, str, bool, bool]]


class PlanCache:
    """An LRU-bounded cache of solved plans keyed by chain signature.

    One instance serves one :class:`~repro.kernels.catalog.KernelCatalog`;
    the :class:`~repro.frontend.compiler.Compiler` session owns the pairing
    (exactly as the catalog owns its match cache).  Joins the telemetry
    protocol as the fifth cache layer (:mod:`repro.telemetry`).
    """

    def __init__(self, catalog: KernelCatalog, max_entries: int = 4096) -> None:
        self._catalog = catalog
        self._net = catalog.net
        self._entries: "OrderedDict[_PlanKey, PlanRecipe]" = OrderedDict()
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.bypasses = 0
        self.stores = 0
        #: Entries imported from an on-disk snapshot (warm boot).
        self.restored = 0
        self._net_version = self._net.version
        self._registry_version = registry_version()

    # ------------------------------------------------------------ inspection
    @property
    def catalog(self) -> KernelCatalog:
        return self._catalog

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        """Plain-dict counters (uniform cache-stats protocol)."""
        return {
            "layer": "plan_cache",
            "size": len(self._entries),
            "max_entries": self.max_entries,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "evictions": self.evictions,
            "bypasses": self.bypasses,
            "stores": self.stores,
            "restored": self.restored,
        }

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.bypasses = 0
        self.stores = 0
        self.restored = 0

    def clear(self) -> None:
        """Drop all entries (and re-sync the watched versions)."""
        self._entries.clear()
        self._net_version = self._net.version
        self._registry_version = registry_version()

    # ---------------------------------------------------------- eligibility
    def _usable(self, options: CompileOptions) -> bool:
        """Whether this request may touch the cache at all.

        Version drift *flushes* (handled by the caller via :meth:`_sync`);
        the conditions here *bypass*: they describe requests or catalogs the
        signature cannot fully characterize.
        """
        if not isinstance(options.metric, str):
            return False  # live metric instances may be arbitrarily custom
        if options.catalog is not None and options.catalog is not self._catalog:
            return False
        if registry_is_customized():
            return False
        if self._net.has_concrete_leaf_patterns or self._net.has_opaque_predicates:
            return False
        return True

    def _sync(self) -> None:
        if (
            self._registry_version != registry_version()
            or self._net_version != self._net.version
        ):
            self.clear()

    @staticmethod
    def _chain(expression: Expression):
        """Normalize to interned chain factors; ``None`` when not a chain."""
        try:
            factors, _ = _coerce_chain(expression)
        except Exception:  # noqa: BLE001 -- let the solver raise its own error
            return None
        factors = tuple(intern(factor) for factor in factors)
        for factor in factors:
            for node in factor.preorder():
                if isinstance(node, Reference):
                    # An unresolved reference leaf stands for the result of
                    # another assignment; its signature does not capture the
                    # defining expression's structure or inferred properties,
                    # so caching on it would alias distinct programs.  The
                    # segment layer resolves references into result operands
                    # (named temporaries with inferred properties) *before*
                    # the cache is consulted.
                    return None
                if not node.children and not isinstance(node, Matrix):
                    return None  # wildcard/opaque leaf: signature incomplete
        return factors

    @staticmethod
    def _chain_expression(factors: Tuple[Expression, ...]) -> Expression:
        return intern(Times(*factors)) if len(factors) > 1 else factors[0]

    # ---------------------------------------------------------------- lookup
    def lookup(
        self,
        expression: Expression,
        options: CompileOptions,
        metric,
    ) -> Optional[CachedPlanSolution]:
        """A re-bound solution for *expression*, or ``None`` on miss/bypass.

        *metric* is the live metric instance the session would hand the
        solver -- the cached plan evaluates its kernel costs through it, so
        the session's kernel-cost LRU stays warm exactly as on a solve.
        """
        self._sync()
        if not self._usable(options):
            self.bypasses += 1
            return None
        factors = self._chain(expression)
        if factors is None or len(factors) < 2:
            self.bypasses += 1
            return None
        chain_expression = self._chain_expression(factors)
        key = (chain_expression.signature(), plan_fingerprint(options))
        recipe = self._entries.get(key)
        if recipe is None:
            self.misses += 1
            return None
        self.hits += 1
        self._entries.move_to_end(key)
        return CachedPlanSolution(
            recipe=recipe,
            factors=factors,
            expression=chain_expression,
            metric=metric,
            catalog=self._catalog,
        )

    # ----------------------------------------------------------------- store
    def store(self, expression: Expression, options: CompileOptions, solution) -> bool:
        """Record a freshly solved plan; returns ``True`` when cached.

        Only complete, computable multi-factor solutions are stored; a
        solution truncated by a deadline or an uncomputable chain never
        enters the cache.
        """
        self._sync()
        if not self._usable(options):
            return False
        if not getattr(solution, "computable", False):
            return False
        if not getattr(solution, "complete", True):
            return False
        factors = self._chain(expression)
        if factors is None or len(factors) < 2:
            return False
        recipe = self._recipe_from(solution)
        if recipe is None:
            return False
        chain_expression = self._chain_expression(factors)
        key = (chain_expression.signature(), plan_fingerprint(options))
        if key not in self._entries and len(self._entries) >= self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1
        self._entries[key] = recipe
        self._entries.move_to_end(key)
        self.stores += 1
        return True

    def _recipe_from(self, solution) -> Optional[PlanRecipe]:
        """Extract the re-bindable recipe from a solver solution."""
        length = solution.length
        table = getattr(solution, "table", None)

        def cell(i: int, j: int):
            if table is not None:  # top-down solver
                return table.get((i, j))
            return solution.choices[i][j]

        steps: List[PlanStep] = []

        def visit(i: int, j: int) -> bool:
            if i == j:
                return True
            choice = cell(i, j)
            if choice is None or choice.kernel is None:
                return False
            if choice.kernel.id not in self._catalog:
                return False
            if not visit(i, choice.split) or not visit(choice.split + 1, j):
                return False
            nodes, _ = _flatten_subject(choice.expression)
            slots = _binding_slots(nodes, choice.substitution)
            if slots is None:
                return False
            steps.append((i, j, choice.split, choice.kernel.id, slots))
            return True

        if not visit(0, length - 1) or not steps:
            return None
        return PlanRecipe(length=length, steps=tuple(steps))

    # ------------------------------------------------------------- snapshots
    def export_entries(self) -> List[Tuple[Tuple, Tuple, PlanRecipe]]:
        """All entries as ``(signature, fingerprint, recipe)``, LRU order."""
        return [
            (signature, fingerprint, recipe)
            for (signature, fingerprint), recipe in self._entries.items()
        ]

    def import_entries(self, entries) -> int:
        """Insert snapshot entries (cold keys only); returns the count.

        The caller (:mod:`repro.persist.snapshot`) has already validated
        that the snapshot's catalog/net/registry versions match this
        process; entries never overwrite warmer in-memory state.  Exports
        are LRU-ordered oldest-first; when capacity runs short the *newest*
        (most recently used) entries win, whatever the cache already holds.
        """
        self._sync()
        capacity = self.max_entries - len(self._entries)
        selected: List[Tuple[_PlanKey, PlanRecipe]] = []
        for signature, fingerprint, recipe in reversed(list(entries)):
            if len(selected) >= capacity:
                break
            key = (signature, fingerprint)
            if key not in self._entries:
                selected.append((key, recipe))
        # Insert oldest-first so the imported slice keeps its LRU order.
        for key, recipe in reversed(selected):
            self._entries.setdefault(key, recipe)
        self.restored += len(selected)
        return len(selected)

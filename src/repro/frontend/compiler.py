"""A Linnea-style compiler front-end: textual problem in, kernel code out.

The paper positions the GMC algorithm as the chain-solving core of the
Linnea compiler: the user supplies operand definitions and assignments
(Figs. 1 and 2) and receives a sequence of kernel calls.  This module wires
the pieces of this repository into that end-to-end pipeline:

    source text --(repro.algebra.dsl)--> expressions
                --(repro.core)---------> kernel programs
                --(repro.codegen)------> registered emitters (Julia, NumPy)

The front door is a :class:`Compiler` **session**: it is configured by one
frozen :class:`~repro.options.CompileOptions` value and owns the catalog,
the per-metric cost-cache instances and the cache telemetry, so repeated
compilations share every warm cache.  The same session class backs the
command line (``python -m repro.frontend``), the HTTP service
(:mod:`repro.service`) and the benchmark scripts, which is what guarantees
identical kernel sequences across all entry points.

:func:`compile_source` / :func:`compile_program` remain as conveniences
that run one compilation on a throwaway session; their pre-options
``metric=``/``catalog=`` keywords are deprecated in favour of ``options=``.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from ..algebra.dsl import Program as ParsedProgram
from ..algebra.dsl import parse_program
from ..algebra.expression import Expression, Matrix
from ..codegen import available_emitters, get_emitter
from ..core import make_solver
from ..core.gmc import UncomputableChainError
from ..core.segments import (
    UncomputableSegmentError,
    decompose_program,
    segment_telemetry,
)
from ..core.parallel import solver_work_telemetry
from ..cost.metrics import CostMetric, resolve_metric
from ..kernels.catalog import KernelCatalog
from ..kernels.kernel import KernelCall, Program
from ..obs.trace import Tracer
from ..options import CompileOptions, warn_legacy
from ..persist.plan_cache import PlanCache
from ..telemetry import reset as _telemetry_reset
from ..telemetry import snapshot as _telemetry_snapshot


@dataclass
class CompiledAssignment:
    """The compilation result for one chain segment of the input program.

    User assignments map to segments one-to-one; the decomposition layer
    (:mod:`repro.core.segments`) may additionally create *synthetic*
    segments (``synthetic=True``, ``_sN`` targets) for non-chain subtrees
    and shared subexpressions.  ``expression`` is the canonical chain that
    was solved (references resolved to earlier segments' result operands);
    ``result_operand`` is the operand later segments -- and the stitched
    program -- use for this segment's value.
    """

    target: str
    expression: Expression
    solution: object  # GMCSolution or TopDownSolution
    program: Program
    synthetic: bool = False
    result_operand: Optional[Expression] = None

    @property
    def kernel_sequence(self) -> List[str]:
        return list(self.program.kernel_names)

    @property
    def flops(self) -> float:
        return self.program.total_flops

    def emit(self, target_language: str) -> str:
        """Source for this assignment in any registered emitter's language."""
        emitter = get_emitter(target_language)
        return emitter.emit(self.program, self.target)

    def julia(self) -> str:
        """Julia-flavoured source for this assignment (``emit("julia")``)."""
        return self.emit("julia")

    def numpy(self) -> str:
        """NumPy source for this assignment (``emit("numpy")``)."""
        return self.emit("numpy")

    def summary(self) -> str:
        marker = "  (synthetic segment)" if self.synthetic else ""
        return (
            f"{self.target} := {self.expression}{marker}\n"
            f"  parenthesization: {self.solution.parenthesization()}\n"
            f"  kernels:          {' -> '.join(self.kernel_sequence)}\n"
            f"  FLOPs:            {self.flops:.4g}\n"
            f"  generation time:  {getattr(self.solution, 'generation_time', 0.0) * 1e3:.2f} ms"
        )


@dataclass
class CompilationResult:
    """The compilation result for a whole program (several assignments).

    Assignments are kept both in submission order (iteration) and in an
    insertion-ordered target index (:meth:`assignment` is O(1)).  Mutate
    through :meth:`add`; appending to ``assignments`` directly (the legacy
    construction pattern) is also supported.  Other list mutations
    (replacing or removing entries in place) are not -- the index may keep
    serving the object it was built from.
    """

    operands: Dict[str, Matrix]
    assignments: List[CompiledAssignment] = field(default_factory=list)
    options: Optional[CompileOptions] = None
    #: The compilation's span tree (:class:`repro.obs.trace.Tracer`) when
    #: compiled with ``CompileOptions(trace=True)``; ``None`` otherwise.
    trace: Optional[Tracer] = None

    def __post_init__(self) -> None:
        self._index: Dict[str, CompiledAssignment] = {}
        self._indexed_count = 0
        self._reindex()

    def _reindex(self) -> None:
        """Fold not-yet-indexed assignments into the target index.

        ``setdefault`` keeps the pre-index semantics of the linear scan:
        for duplicate targets the *first* assignment wins.  The cursor makes
        indexing incremental, so external appends to ``assignments`` (the
        legacy construction pattern) cost O(new entries), not a rebuild.
        """
        if self._indexed_count > len(self.assignments):  # list was mutated
            self._index = {}
            self._indexed_count = 0
        for compiled in self.assignments[self._indexed_count:]:
            self._index.setdefault(compiled.target, compiled)
        self._indexed_count = len(self.assignments)

    def __iter__(self):
        return iter(self.assignments)

    def __len__(self) -> int:
        return len(self.assignments)

    def add(self, compiled: CompiledAssignment) -> None:
        """Record one compiled assignment (keeps the target index in sync)."""
        self.assignments.append(compiled)
        self._reindex()

    def assignment(self, target: str) -> CompiledAssignment:
        """The compiled assignment for *target* (O(1) dict lookup).

        Appending to ``assignments`` is the supported external mutation; a
        lookup miss additionally forces one full re-index, so a target that
        is present in the list is always found (even after pop-then-append
        mutations).  In-place *replacement* under an already-indexed target
        is unsupported (see the class docstring).
        """
        if self._indexed_count != len(self.assignments):
            self._reindex()
        if target not in self._index:
            self._index = {}
            self._indexed_count = 0
            self._reindex()
        try:
            return self._index[target]
        except KeyError:
            available = ", ".join(repr(name) for name in self._index) or "<none>"
            raise KeyError(
                f"no assignment {target!r}; available targets: {available}"
            ) from None

    @property
    def total_flops(self) -> float:
        return sum(compiled.flops for compiled in self.assignments)

    @property
    def targets(self) -> List[str]:
        """User assignment targets, in program order (synthetic excluded)."""
        return [c.target for c in self.assignments if not c.synthetic]

    def stitched_program(self) -> Program:
        """One topologically-ordered kernel program for the whole DAG.

        Per-segment kernel calls are concatenated in segment order (segments
        come out of the decomposition dependency-ordered, so every call's
        inputs are operands or outputs of earlier calls) and each
        multi-kernel segment's final call is renamed to write the segment's
        result operand -- the named temporary later segments reference.  The
        program's output is the last user assignment's result.
        """
        calls: List[KernelCall] = []
        output: Optional[Expression] = None
        expression: Optional[Expression] = None
        for compiled in self.assignments:
            seg_calls = list(compiled.program.calls)
            if seg_calls and isinstance(compiled.result_operand, Matrix):
                seg_calls[-1] = dataclasses.replace(
                    seg_calls[-1], output=compiled.result_operand
                )
            calls.extend(seg_calls)
            if not compiled.synthetic:
                expression = compiled.expression
                if seg_calls:
                    output = seg_calls[-1].output
                else:
                    # Trivial (alias) segment: its value is an existing
                    # operand or an earlier segment's result.
                    output = (
                        compiled.result_operand
                        if compiled.result_operand is not None
                        else compiled.program.output
                    )
        return Program(
            calls=calls,
            output=output,
            expression=expression,
            strategy="GMC[stitched]",
        )

    def emit(self, target_language: str) -> str:
        """Source for the whole program via any registered emitter.

        Each segment (user assignments and synthetic CSE/extraction
        segments alike) becomes its own function; synthetic results appear
        as input parameters of the functions that consume them.  Use
        :meth:`emit_stitched` for one self-contained function computing the
        whole DAG.  Emitters registered with ``stitched=True`` (the
        ``module`` emitter of :mod:`repro.exec`) always render the stitched
        whole-DAG program -- one importable artifact, not one per segment.
        """
        if get_emitter(target_language).stitched:
            return self.emit_stitched(target_language)
        return "\n\n".join(
            compiled.emit(target_language) for compiled in self.assignments
        )

    def emit_stitched(
        self, target_language: str, function_name: Optional[str] = None
    ) -> str:
        """Source for the whole DAG as ONE function (the stitched program).

        The function takes the declared operands that actually appear in
        kernel calls and computes every segment in dependency order; it is
        named after the last user assignment target unless *function_name*
        overrides it.
        """
        emitter = get_emitter(target_language)
        if function_name is None:
            targets = self.targets
            function_name = targets[-1] if targets else "program"
        return emitter.emit(self.stitched_program(), function_name)

    def julia(self) -> str:
        """Julia-flavoured source for the whole program (``emit("julia")``)."""
        return self.emit("julia")

    def numpy(self) -> str:
        """NumPy source for the whole program (``emit("numpy")``)."""
        return self.emit("numpy")

    def explain(self) -> str:
        """A plan-provenance report: per segment, where the plan came from
        (plan-cache hit / trivial alias / cold DP), its kernels and its DP
        work -- with traced phase timings folded in when available."""
        from ..obs.explain import explain_result

        return explain_result(self)

    def report(self) -> str:
        lines = ["compiled program:"]
        for name, operand in self.operands.items():
            properties = ", ".join(sorted(p.name for p in operand.properties)) or "-"
            lines.append(f"  operand {name}: {operand.rows} x {operand.columns}  <{properties}>")
        lines.append("")
        for compiled in self.assignments:
            lines.append(compiled.summary())
            lines.append("")
        lines.append(f"total cost: {self.total_flops:.4g} FLOPs")
        return "\n".join(lines)


#: Inputs :meth:`Compiler.compile` accepts.
CompileInput = Union[str, ParsedProgram, Expression]

#: Bound on the live metric instances one session keeps (metric names are
#: few; the custom-cost_cache_size variants are the client-controlled part).
_MAX_METRIC_INSTANCES = 16


class Compiler:
    """A compilation session: one options value, warm caches, telemetry.

    The session owns the kernel catalog and one live
    :class:`~repro.cost.metrics.CostMetric` instance per metric name, so
    every compilation through it shares the interner, the inference memo,
    the signature-keyed match cache and the kernel-cost LRU -- exactly the
    state a warm service worker keeps between requests.

    Per-call options may override the session options (same catalog, fresh
    pipeline flags), which is how the service serves requests with differing
    solver/metric/prune settings from one warm session.

    Example
    -------
    >>> compiler = Compiler(CompileOptions(solver="topdown"))
    >>> result = compiler.compile('''
    ... Matrix A (100, 100) <SPD>
    ... Matrix B (100, 40) <>
    ... X := A^-1 * B
    ... ''')
    >>> result.assignment("X").kernel_sequence
    ['POSV']
    """

    def __init__(self, options: Optional[CompileOptions] = None, **overrides) -> None:
        base = options if options is not None else CompileOptions()
        if overrides:
            base = base.replace(**overrides)
        self.options: CompileOptions = base
        self.catalog: KernelCatalog = base.resolve_catalog()
        #: Live metric instances keyed by metric name; reusing one instance
        #: across compilations is what keeps its kernel-cost LRU warm.
        self._metrics: Dict[str, CostMetric] = {}
        #: Whole-plan cache consulted before dispatching to a solver
        #: (:mod:`repro.persist`); bound to the session's catalog.
        self.plan_cache: PlanCache = PlanCache(self.catalog)

    # ----------------------------------------------------------- resolution
    def _effective_options(
        self, options: Optional[CompileOptions], overrides: dict
    ) -> CompileOptions:
        """Merge per-call options into the session configuration.

        A session is a warm-cache scope bound to one catalog, so a per-call
        request for a *different* catalog is an error (silently swapping
        catalogs would cross cache domains and give wrong-catalog answers);
        build a new :class:`Compiler` for a different catalog.  The metric
        is swapped for the session's live instance so its kernel-cost LRU
        stays warm across calls.
        """
        effective = options if options is not None else self.options
        if overrides:
            effective = effective.replace(**overrides)
        if effective.catalog is not None and effective.catalog is not self.catalog:
            raise ValueError(
                "this Compiler session is bound to catalog "
                f"{self.catalog!r}; build a new Compiler(CompileOptions("
                "catalog=...)) to compile against a different catalog"
            )
        return effective.replace(
            catalog=self.catalog, metric=self.metric_for(effective)
        )

    def metric_for(self, options: Optional[CompileOptions] = None) -> CostMetric:
        """The session's live metric instance for *options* (default: own).

        Instances are cached per ``(name, cost_cache_size)``: a request with
        a custom cache size warms its own instance instead of resizing (and
        thereby cold-starting) the LRU every default request shares.  Live
        metric instances in the options are caller-owned and returned as-is.
        """
        options = options if options is not None else self.options
        if isinstance(options.metric, CostMetric):
            return options.metric
        # Default-sized metrics are keyed by plain name (also the key scheme
        # of the pre-session ``metrics=`` dicts execute_request still
        # accepts); custom-sized ones get their own (name, size) slot.
        key = (
            options.metric
            if options.cost_cache_size is None
            else (options.metric, options.cost_cache_size)
        )
        metric = self._metrics.get(key)
        if metric is None:
            if len(self._metrics) >= _MAX_METRIC_INSTANCES:
                # cost_cache_size is client-controlled on the service wire;
                # without a bound, cycling sizes would grow a worker's
                # metric cache forever.  Evict a custom-sized instance
                # first so the plain-name defaults stay warm.
                sized = [k for k in self._metrics if isinstance(k, tuple)]
                del self._metrics[sized[0] if sized else next(iter(self._metrics))]
            metric = self._metrics[key] = resolve_metric(options.metric)
            if options.cost_cache_size is not None:
                metric.cost_cache_size = options.cost_cache_size
        return metric

    def solver(self, options: Optional[CompileOptions] = None, **overrides):
        """A solver (bottom-up or top-down per ``options.solver``) bound to
        the session's catalog and live metric instance."""
        return make_solver(self._effective_options(options, overrides))

    # ------------------------------------------------------------------ API
    def compile(
        self,
        problem: CompileInput,
        options: Optional[CompileOptions] = None,
        **overrides,
    ) -> CompilationResult:
        """Compile DSL text, a parsed program or a bare expression.

        Strings are parsed with the Fig. 1/2 grammar; expressions become a
        single anonymous assignment (target ``X``).  Returns a
        :class:`CompilationResult` carrying the effective options.

        The program is first normalized into ordered chain segments
        (:func:`repro.core.segments.decompose_program`): later assignments
        may reference earlier targets, non-chain subtrees (inverses or
        transposes around products that cannot be pushed to the leaves)
        become synthetic segments, and shared subexpressions are solved
        once.  Each segment is solved independently.

        When ``options.plan_cache`` is on (the default), each segment first
        consults the session's :class:`~repro.persist.PlanCache`: a
        signature-equal chain solved before under the same options
        fingerprint skips the dynamic program entirely and re-binds the
        cached plan to this request's operands.  Fresh solves (complete,
        computable ones) are stored back.  Because caching is per segment,
        structurally-sibling DAGs (e.g. Jacobian blocks of one model)
        amortize: every segment they share a signature with is a hit.
        """
        requested = options if options is not None else self.options
        if overrides:
            requested = requested.replace(**overrides)
        effective = self._effective_options(requested, {})
        # Tracing is opt-in per compilation; the untraced path only ever
        # tests ``tracer is not None`` at phase boundaries.
        tracer = Tracer() if effective.trace else None
        if tracer is not None:
            tracer.begin("compile", solver=effective.solver, metric=effective.metric_name)
            tracer.begin("parse")
        program = self._coerce_program(problem)
        if tracer is not None:
            tracer.end(
                operands=len(program.operands),
                assignments=len(program.assignments),
            )
            tracer.begin("decompose")
        plan = decompose_program(program)
        if tracer is not None:
            tracer.end(
                segments=len(plan.segments),
                synthetic=plan.synthetic_count,
                cse_reuses=plan.cse_reuses,
            )
        result = CompilationResult(
            operands=dict(program.operands), options=effective
        )
        use_plan_cache = requested.plan_cache
        telemetry = segment_telemetry()
        match_cache = self.catalog.match_cache
        solver = None  # built on the first plan-cache miss
        for seg in plan:
            expression = seg.expression
            solution = None
            if tracer is not None:
                tracer.begin(
                    "segment",
                    target=seg.target,
                    source=str(seg.source),
                    synthetic=seg.synthetic,
                    trivial=seg.trivial,
                )
                match_hits0 = match_cache.hits
                match_misses0 = match_cache.misses
                memo_hits0 = solver_work_telemetry().stats().get("hits", 0)
            if use_plan_cache:
                started = time.perf_counter()
                if tracer is not None:
                    tracer.begin("plan_cache_lookup")
                solution = self.plan_cache.lookup(
                    expression, requested, metric=effective.metric
                )
                if solution is not None:
                    # Materialize the rebinding (temporaries, inference,
                    # kernel costs) inside the timing window, so the
                    # reported generation time is the cached solve's real
                    # cost, not just the dict lookup.
                    solution.kernel_calls()
                    solution.generation_time = time.perf_counter() - started
                if tracer is not None:
                    tracer.end(hit=solution is not None)
                if not seg.trivial:
                    # Trivial (single-factor) segments register a cache
                    # bypass above but are not segment traffic: nothing is
                    # solved, so they would dilute the segment hit rate.
                    telemetry.record_lookup(solution is not None)
            if solution is None:
                if solver is None:
                    solver = make_solver(effective)
                    if tracer is not None:
                        # Both solvers carry a ``tracer`` handle defaulting
                        # to None; sharing this tracer nests their per-solve
                        # spans under the current segment span.
                        solver.tracer = tracer
                solution = solver.solve(expression)
                if use_plan_cache:
                    self.plan_cache.store(expression, requested, solution)
            try:
                kernel_program = solution.program(
                    strategy_name=f"GMC[{seg.target}]"
                )
            except UncomputableSegmentError:
                raise
            except UncomputableChainError as exc:
                raise UncomputableSegmentError(
                    f"segment {seg.target!r} ({seg.source}): {exc}",
                    segment=seg.target,
                    signature=getattr(exc, "signature", None)
                    or expression.signature(),
                ) from exc
            result.add(
                CompiledAssignment(
                    target=seg.target,
                    expression=expression,
                    solution=solution,
                    program=kernel_program,
                    synthetic=seg.synthetic,
                    result_operand=seg.result,
                )
            )
            if tracer is not None:
                # Cache-hit provenance for this segment: whole-plan hit vs
                # trivial alias vs cold DP, with the match-cache and
                # decision-memo hit deltas the solve generated.
                if getattr(solution, "from_plan_cache", False):
                    provenance = "plan_cache"
                elif seg.trivial:
                    provenance = "trivial"
                else:
                    provenance = "cold_dp"
                tracer.end(
                    provenance=provenance,
                    match_cache_hits=match_cache.hits - match_hits0,
                    match_cache_misses=match_cache.misses - match_misses0,
                    decision_memo_hits=(
                        solver_work_telemetry().stats().get("hits", 0) - memo_hits0
                    ),
                    flops=kernel_program.total_flops,
                )
        if tracer is not None:
            tracer.end(
                segments=len(result.assignments), total_flops=result.total_flops
            )
            tracer.finish()
            result.trace = tracer
        return result

    def solve(
        self,
        chain,
        options: Optional[CompileOptions] = None,
        **overrides,
    ):
        """Solve one chain through the session (returns the solution object)."""
        return self.solver(options, **overrides).solve(chain)

    @staticmethod
    def _coerce_program(problem: CompileInput) -> ParsedProgram:
        if isinstance(problem, ParsedProgram):
            return problem
        if isinstance(problem, str):
            return parse_program(problem)
        if isinstance(problem, Expression):
            operands = {}
            for leaf in problem.leaves():
                if isinstance(leaf, Matrix):
                    operands.setdefault(leaf.name, leaf)
            return ParsedProgram(operands=operands, assignments=[("X", problem)])
        raise TypeError(
            f"cannot compile {problem!r}; expected DSL text, a parsed Program "
            f"or an Expression"
        )

    # ------------------------------------------------------------ telemetry
    def cache_stats(self) -> Dict[str, dict]:
        """Per-layer cache counters of this session (uniform stats protocol:
        plan cache, match cache, interner, inference memo, kernel-cost
        LRUs)."""
        return _telemetry_snapshot(
            self.catalog, self._metrics, plan_cache=self.plan_cache
        )

    def reset_cache_stats(self) -> None:
        """Zero every cache counter the session can see."""
        _telemetry_reset(self.catalog, self._metrics, plan_cache=self.plan_cache)


# ---------------------------------------------------------------------------
# Convenience functions (one-shot sessions).
# ---------------------------------------------------------------------------

def _convenience_options(
    metric, catalog, options: Optional[CompileOptions], caller: str
) -> Optional[CompileOptions]:
    """Shared shim of :func:`compile_source`/:func:`compile_program`: map the
    deprecated ``metric=``/``catalog=`` keywords onto an options value."""
    if metric is None and catalog is None:
        return options
    if options is not None:
        raise TypeError(f"{caller}() takes either options or metric=/catalog=, not both")
    warn_legacy(
        f"{caller}(metric=..., catalog=...)",
        f"{caller}(..., options=CompileOptions(...))",
        stacklevel=4,
    )
    return CompileOptions(
        metric="flops" if metric is None else metric, catalog=catalog
    )


def compile_program(
    program: ParsedProgram,
    metric: Union[CostMetric, str, None] = None,
    catalog: Optional[KernelCatalog] = None,
    *,
    options: Optional[CompileOptions] = None,
) -> CompilationResult:
    """Compile an already-parsed DSL program on a one-shot session."""
    options = _convenience_options(metric, catalog, options, "compile_program")
    return Compiler(options).compile(program)


def compile_source(
    source: str,
    metric: Union[CostMetric, str, None] = None,
    catalog: Optional[KernelCatalog] = None,
    *,
    options: Optional[CompileOptions] = None,
) -> CompilationResult:
    """Compile a textual problem description (Figs. 1/2 grammar) end to end.

    >>> result = compile_source('''
    ... Matrix A (100, 100) <SPD>
    ... Matrix B (100, 40) <>
    ... X := A^-1 * B
    ... ''')
    >>> result.assignment("X").kernel_sequence
    ['POSV']
    """
    options = _convenience_options(metric, catalog, options, "compile_source")
    return Compiler(options).compile(source)


# ---------------------------------------------------------------------------
# Command line.
# ---------------------------------------------------------------------------

def _parallel_policy(value: str) -> str:
    """argparse type for ``--parallel``: validate the policy eagerly."""
    from ..core.parallel import parse_parallelism

    try:
        parse_parallelism(value)
    except (TypeError, ValueError) as exc:
        raise argparse.ArgumentTypeError(str(exc))
    return value


def build_options(args: argparse.Namespace) -> CompileOptions:
    """The one place CLI flags become a :class:`CompileOptions` value."""
    return CompileOptions(
        solver=args.solver,
        metric=args.metric,
        prune=not args.no_prune,
        match_cache=not args.no_match_cache,
        parallelism=args.parallel,
        trace=getattr(args, "trace", None) is not None,
        profile=getattr(args, "profile", False),
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Command-line entry point: ``python -m repro.frontend problem.chain``."""
    parser = argparse.ArgumentParser(
        prog="repro.frontend",
        description="Compile generalized matrix chain problems to kernel code",
    )
    parser.add_argument(
        "source",
        nargs="?",
        help="path to the problem description (reads stdin when omitted)",
    )
    parser.add_argument(
        "--metric",
        default="flops",
        choices=["flops", "time", "memory", "accuracy", "kernels"],
        help="cost metric to minimize (default: flops)",
    )
    parser.add_argument(
        "--solver",
        default="gmc",
        choices=["gmc", "topdown"],
        help="DP solver: bottom-up gmc or memoized topdown (default: gmc)",
    )
    parser.add_argument(
        "--no-prune",
        action="store_true",
        help="disable DP split pruning (exhaustive reference loop)",
    )
    parser.add_argument(
        "--no-match-cache",
        action="store_true",
        help="bypass the signature-keyed kernel-match cache",
    )
    parser.add_argument(
        "--parallel",
        default="serial",
        type=_parallel_policy,
        metavar="POLICY",
        help=(
            "intra-solve parallelism policy: 'serial' (default), "
            "'threads:N' (dispatch each DP anti-diagonal across N "
            "threads) or 'auto' (one thread per available core)"
        ),
    )
    parser.add_argument(
        "--emit",
        default="report",
        choices=["report", *available_emitters()],
        help="what to print: a human-readable report or generated code",
    )
    parser.add_argument(
        "--execute",
        action="store_true",
        help=(
            "after compiling, run the program through the execution tier: "
            "emit the plan as a standalone module, import it, execute it "
            "on seeded property-respecting random operands and validate "
            "the result against the reference evaluation"
        ),
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="random-operand seed for --execute (default: 0)",
    )
    parser.add_argument(
        "--rtol",
        type=float,
        default=1e-6,
        help="relative validation tolerance for --execute (default: 1e-6)",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help=(
            "record a span tree for the compilation and write it to PATH "
            "(see --trace-format); also appends the provenance report "
            "(explain) to the printed output"
        ),
    )
    parser.add_argument(
        "--trace-format",
        default="json",
        choices=["json", "chrome"],
        help=(
            "trace export format: 'json' (raw span tree) or 'chrome' "
            "(Chrome trace-event JSON, loadable in Perfetto / "
            "chrome://tracing); default: json"
        ),
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help=(
            "run the compilation under cProfile and append the top "
            "functions to the printed output (see also --profile-out)"
        ),
    )
    parser.add_argument(
        "--profile-out",
        default=None,
        metavar="PATH",
        help=(
            "with --profile, write flamegraph.pl-compatible collapsed "
            "stacks ('frame;frame count' lines) to PATH"
        ),
    )
    serve_group = parser.add_argument_group(
        "service mode", "run as a long-lived HTTP compilation service"
    )
    serve_group.add_argument(
        "--serve",
        action="store_true",
        help="start the HTTP compilation service instead of compiling once",
    )
    serve_group.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)"
    )
    serve_group.add_argument(
        "--port",
        type=int,
        default=8077,
        help="bind port; 0 picks an ephemeral port (default: 8077)",
    )
    serve_group.add_argument(
        "--workers",
        type=int,
        default=None,
        help="warm-cache worker processes (default: min(4, cpu count))",
    )
    serve_group.add_argument(
        "--in-process",
        action="store_true",
        help="serve synchronously in this process (no worker processes)",
    )
    serve_group.add_argument(
        "--snapshot-dir",
        default=None,
        help=(
            "directory for plan-/match-cache snapshots: workers load it at "
            "boot (warm start) and persist on shutdown or POST /snapshot"
        ),
    )
    serve_group.add_argument(
        "--log-level",
        default="info",
        choices=["debug", "info", "warning", "error"],
        help=(
            "service log verbosity: one structured JSON line per event on "
            "stderr (access log, worker restarts, saturation rejections, "
            "snapshot loads/saves); default: info"
        ),
    )
    args = parser.parse_args(argv)
    if args.snapshot_dir and not args.serve:
        parser.error("--snapshot-dir requires --serve")
    if args.serve:
        # Pipeline flags configure ONE compilation; service requests each
        # carry their own complete CompileOptions on the wire, so server-wide
        # pipeline flags would be silently overridden by every request.
        # Reject them loudly rather than pretend they apply.
        ignored = []
        if args.solver != "gmc":
            ignored.append("--solver")
        if args.metric != "flops":
            ignored.append("--metric")
        if args.no_prune:
            ignored.append("--no-prune")
        if args.no_match_cache:
            ignored.append("--no-match-cache")
        if args.parallel != "serial":
            ignored.append("--parallel")
        if args.emit != "report":
            ignored.append("--emit")
        if args.trace is not None:
            ignored.append("--trace")
        if args.execute:
            ignored.append("--execute")
        if args.profile:
            ignored.append("--profile")
        if args.profile_out is not None:
            ignored.append("--profile-out")
        if ignored:
            parser.error(
                f"{', '.join(ignored)} cannot be combined with --serve: "
                f"service requests carry their own options "
                f"(the 'options' object of POST /compile)"
            )
        from ..obs.logging import configure_logging
        from ..service.http import run_server
        from ..service.pool import create_executor

        configure_logging(args.log_level)
        executor = create_executor(
            workers=args.workers,
            in_process=args.in_process,
            snapshot_dir=args.snapshot_dir,
        )
        return run_server(executor, host=args.host, port=args.port)
    if args.source:
        with open(args.source, "r", encoding="utf-8") as handle:
            text = handle.read()
    else:
        text = sys.stdin.read()
    compiler = Compiler(build_options(args))
    profile = None
    if args.profile:
        from ..obs.profile import profile_call, profile_payload

        result, profiler = profile_call(lambda: compiler.compile(text))
        profile = profile_payload(profiler)
    else:
        result = compiler.compile(text)
    if args.emit == "report":
        print(result.report())
    else:
        print(result.emit(args.emit))
    if profile is not None:
        print(_profile_report(profile))
        if args.profile_out is not None:
            with open(args.profile_out, "w", encoding="utf-8") as handle:
                handle.write(profile.get("collapsed", ""))
            print(
                f"collapsed stacks written to {args.profile_out} "
                f"(flamegraph.pl-compatible)"
            )
    if args.trace is not None:
        result.trace.write(args.trace, fmt=args.trace_format)
        print(result.explain())
        print(f"trace written to {args.trace} ({args.trace_format})")
    if args.execute:
        # Same warm session: the plan cache answers the recompile inside
        # the execution path, so --execute costs one run, not two solves.
        from ..exec.api import ExecuteRequest, run_execute_request
        from ..service.api import CompileRequest

        response = run_execute_request(
            ExecuteRequest(
                compile=CompileRequest(source=text, options=build_options(args)),
                seed=args.seed,
                rtol=args.rtol,
            ),
            compiler=compiler,
        )
        print(_execution_report(response))
        if not response.ok:
            return 1
    return 0


def _profile_report(profile: dict) -> str:
    """The human-readable ``--profile`` section appended to CLI output."""
    lines = ["", "profile (top functions by cumulative time):"]
    for row in profile.get("top_functions", ())[:10]:
        lines.append(
            f"  {row['tottime_s'] * 1e3:9.3f} ms self"
            f"  {row['cumtime_s'] * 1e3:9.3f} ms cum"
            f"  {row['calls']:>7} calls  {row['function']}"
        )
    return "\n".join(lines)


def _execution_report(response) -> str:
    """The human-readable ``--execute`` section appended to CLI output."""
    lines = ["", "execution:"]
    if not response.ok:
        lines.append(f"  FAILED in phase {response.phase!r}: {response.error}")
        return "\n".join(lines)
    cache = "  [module cache hit]" if response.module_cache_hit else ""
    lines.append(f"  engine: {response.engine} ({response.implementation}){cache}")
    for summary in response.results:
        lines.append(
            f"  result {summary['target']}: "
            f"{summary['rows']} x {summary['columns']}"
            f"  |fro| = {summary['fro_norm']:.6g}"
        )
    if response.validated is not None:
        lines.append(
            f"  validated against reference: max relative error "
            f"{response.max_rel_error:.3g}"
        )
    timing = response.timing or {}
    phases = ", ".join(
        f"{key[:-2]} {timing[key] * 1e3:.2f} ms"
        for key in ("compile_s", "emit_s", "import_s", "run_s", "validate_s")
        if key in timing
    )
    if phases:
        lines.append(f"  timing: {phases}")
    return "\n".join(lines)

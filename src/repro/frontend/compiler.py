"""A Linnea-style compiler front-end: textual problem in, kernel code out.

The paper positions the GMC algorithm as the chain-solving core of the
Linnea compiler: the user supplies operand definitions and assignments
(Figs. 1 and 2) and receives a sequence of kernel calls.  This module wires
the pieces of this repository into that end-to-end pipeline:

    source text --(repro.algebra.dsl)--> expressions
                --(repro.core.gmc)-----> kernel programs
                --(repro.codegen)------> Julia-style / NumPy code

Use :func:`compile_source` programmatically or ``python -m repro.frontend``
from the command line.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from ..algebra.dsl import Program as ParsedProgram
from ..algebra.dsl import parse_program
from ..algebra.expression import Expression, Matrix
from ..codegen.julia import generate_julia
from ..codegen.python_numpy import generate_numpy
from ..core.gmc import GMCAlgorithm, GMCSolution
from ..cost.metrics import CostMetric
from ..kernels.catalog import KernelCatalog
from ..kernels.kernel import Program


@dataclass
class CompiledAssignment:
    """The compilation result for one assignment of the input program."""

    target: str
    expression: Expression
    solution: GMCSolution
    program: Program

    @property
    def kernel_sequence(self) -> List[str]:
        return list(self.program.kernel_names)

    @property
    def flops(self) -> float:
        return self.program.total_flops

    def julia(self) -> str:
        """Julia-flavoured source for this assignment."""
        return generate_julia(self.program, function_name=f"compute_{self.target}")

    def numpy(self) -> str:
        """NumPy source for this assignment."""
        return generate_numpy(self.program, function_name=f"compute_{self.target.lower()}")

    def summary(self) -> str:
        return (
            f"{self.target} := {self.expression}\n"
            f"  parenthesization: {self.solution.parenthesization()}\n"
            f"  kernels:          {' -> '.join(self.kernel_sequence)}\n"
            f"  FLOPs:            {self.flops:.4g}\n"
            f"  generation time:  {self.solution.generation_time * 1e3:.2f} ms"
        )


@dataclass
class CompilationResult:
    """The compilation result for a whole program (several assignments)."""

    operands: Dict[str, Matrix]
    assignments: List[CompiledAssignment] = field(default_factory=list)

    def __iter__(self):
        return iter(self.assignments)

    def __len__(self) -> int:
        return len(self.assignments)

    def assignment(self, target: str) -> CompiledAssignment:
        for compiled in self.assignments:
            if compiled.target == target:
                return compiled
        raise KeyError(target)

    @property
    def total_flops(self) -> float:
        return sum(compiled.flops for compiled in self.assignments)

    def julia(self) -> str:
        """Julia-flavoured source for the whole program."""
        return "\n\n".join(compiled.julia() for compiled in self.assignments)

    def numpy(self) -> str:
        """NumPy source for the whole program."""
        return "\n\n".join(compiled.numpy() for compiled in self.assignments)

    def report(self) -> str:
        lines = ["compiled program:"]
        for name, operand in self.operands.items():
            properties = ", ".join(sorted(p.name for p in operand.properties)) or "-"
            lines.append(f"  operand {name}: {operand.rows} x {operand.columns}  <{properties}>")
        lines.append("")
        for compiled in self.assignments:
            lines.append(compiled.summary())
            lines.append("")
        lines.append(f"total cost: {self.total_flops:.4g} FLOPs")
        return "\n".join(lines)


def compile_program(
    program: ParsedProgram,
    metric: Union[CostMetric, str, None] = None,
    catalog: Optional[KernelCatalog] = None,
) -> CompilationResult:
    """Compile an already-parsed DSL program."""
    gmc = GMCAlgorithm(catalog=catalog, metric=metric)
    result = CompilationResult(operands=dict(program.operands))
    for target, expression in program.assignments:
        solution = gmc.solve(expression)
        kernel_program = solution.program(strategy_name=f"GMC[{target}]")
        result.assignments.append(
            CompiledAssignment(
                target=target,
                expression=expression,
                solution=solution,
                program=kernel_program,
            )
        )
    return result


def compile_source(
    source: str,
    metric: Union[CostMetric, str, None] = None,
    catalog: Optional[KernelCatalog] = None,
) -> CompilationResult:
    """Compile a textual problem description (Figs. 1/2 grammar) end to end.

    >>> result = compile_source('''
    ... Matrix A (100, 100) <SPD>
    ... Matrix B (100, 40) <>
    ... X := A^-1 * B
    ... ''')
    >>> result.assignment("X").kernel_sequence
    ['POSV']
    """
    return compile_program(parse_program(source), metric=metric, catalog=catalog)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Command-line entry point: ``python -m repro.frontend problem.chain``."""
    parser = argparse.ArgumentParser(
        prog="repro.frontend",
        description="Compile generalized matrix chain problems to kernel code",
    )
    parser.add_argument(
        "source",
        nargs="?",
        help="path to the problem description (reads stdin when omitted)",
    )
    parser.add_argument(
        "--metric",
        default="flops",
        choices=["flops", "time", "memory", "accuracy", "kernels"],
        help="cost metric to minimize (default: flops)",
    )
    parser.add_argument(
        "--emit",
        default="report",
        choices=["report", "julia", "numpy"],
        help="what to print: a human-readable report or generated code",
    )
    serve_group = parser.add_argument_group(
        "service mode", "run as a long-lived HTTP compilation service"
    )
    serve_group.add_argument(
        "--serve",
        action="store_true",
        help="start the HTTP compilation service instead of compiling once",
    )
    serve_group.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)"
    )
    serve_group.add_argument(
        "--port",
        type=int,
        default=8077,
        help="bind port; 0 picks an ephemeral port (default: 8077)",
    )
    serve_group.add_argument(
        "--workers",
        type=int,
        default=None,
        help="warm-cache worker processes (default: min(4, cpu count))",
    )
    serve_group.add_argument(
        "--in-process",
        action="store_true",
        help="serve synchronously in this process (no worker processes)",
    )
    args = parser.parse_args(argv)
    if args.serve:
        from ..service.http import run_server
        from ..service.pool import create_executor

        executor = create_executor(workers=args.workers, in_process=args.in_process)
        return run_server(executor, host=args.host, port=args.port)
    if args.source:
        with open(args.source, "r", encoding="utf-8") as handle:
            text = handle.read()
    else:
        text = sys.stdin.read()
    result = compile_source(text, metric=args.metric)
    if args.emit == "julia":
        print(result.julia())
    elif args.emit == "numpy":
        print(result.numpy())
    else:
        print(result.report())
    return 0

"""``python -m repro.frontend`` — compile a problem description to kernel code."""

from .compiler import main

if __name__ == "__main__":
    raise SystemExit(main())

"""End-to-end compiler front-end (the Linnea-style pipeline of the paper)."""

from .compiler import (
    CompilationResult,
    CompiledAssignment,
    compile_program,
    compile_source,
    main,
)

__all__ = [
    "CompilationResult",
    "CompiledAssignment",
    "compile_program",
    "compile_source",
    "main",
]

"""End-to-end compiler front-end (the Linnea-style pipeline of the paper)."""

from ..options import CompileOptions
from .compiler import (
    CompilationResult,
    CompiledAssignment,
    Compiler,
    compile_program,
    compile_source,
    main,
)

__all__ = [
    "CompileOptions",
    "Compiler",
    "CompilationResult",
    "CompiledAssignment",
    "compile_program",
    "compile_source",
    "main",
]

"""The baseline strategies of the paper's evaluation (Section 4).

Nine library implementations are compared against the GMC-generated code:
Julia, Armadillo, Eigen and Matlab in a *naive* and a *recommended* variant
each, plus Blaze (naive only, as it offers no linear-system solver).  The
configurations below encode, per library, how it parenthesizes, how it
handles the inverse operator and which structural properties its type system
exposes -- following the descriptions in Section 4 and Table 2 of the paper.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..algebra.expression import Expression
from ..algebra.properties import Property
from ..core.gmc import GMCAlgorithm
from ..cost.metrics import CostMetric
from ..kernels.catalog import KernelCatalog
from ..kernels.kernel import Program
from ..options import CompileOptions
from .strategy import EvaluationStrategy

_TRIANGULAR = frozenset({Property.LOWER_TRIANGULAR, Property.UPPER_TRIANGULAR})
_DIAG = frozenset({Property.DIAGONAL})
_SYM = frozenset({Property.SYMMETRIC})
_SPD = frozenset({Property.SPD})

#: Properties representable by Julia's type system (Triangular, Symmetric,
#: Diagonal wrappers); SPD is only exploited when solving (cholesky).
_JULIA_TYPES = _TRIANGULAR | _DIAG | _SYM
#: Properties representable by Blaze adaptors.
_BLAZE_ADAPTORS = _TRIANGULAR | _DIAG | _SYM
#: Properties representable by Armadillo (trimatu/trimatl, diagmat, sympd).
_ARMA_TYPES = _TRIANGULAR | _DIAG
#: Properties Eigen exposes through views / dedicated solvers.
_EIGEN_VIEWS = _TRIANGULAR


JULIA_NAIVE = EvaluationStrategy(
    name="julia_naive",
    label="Jl n",
    library="Julia",
    parenthesization="left_to_right",
    explicit_inversion=True,
    product_properties=_JULIA_TYPES,
    solve_properties=frozenset(),
    description="Julia, inv(A)*B*C', products left to right, typed operands",
)

JULIA_RECOMMENDED = EvaluationStrategy(
    name="julia_recommended",
    label="Jl r",
    library="Julia",
    parenthesization="left_to_right",
    explicit_inversion=False,
    product_properties=_JULIA_TYPES,
    solve_properties=_JULIA_TYPES | _SPD,
    description="Julia, (A\\B)*C', backslash dispatches on operand types",
)

MATLAB_NAIVE = EvaluationStrategy(
    name="matlab_naive",
    label="Mat n",
    library="Matlab",
    parenthesization="left_to_right",
    explicit_inversion=True,
    product_properties=frozenset(),
    solve_properties=frozenset(),
    description="Matlab, inv(A)*B*C', products left to right, no structure use",
)

MATLAB_RECOMMENDED = EvaluationStrategy(
    name="matlab_recommended",
    label="Mat r",
    library="Matlab",
    parenthesization="left_to_right",
    explicit_inversion=False,
    product_properties=frozenset(),
    solve_properties=_TRIANGULAR | _DIAG | _SYM | _SPD,
    description="Matlab, (A\\B)*C', mldivide inspects entries to pick a solver",
)

EIGEN_NAIVE = EvaluationStrategy(
    name="eigen_naive",
    label="Eig n",
    library="Eigen",
    parenthesization="left_to_right",
    explicit_inversion=True,
    product_properties=frozenset(),
    solve_properties=frozenset(),
    description="Eigen, A.inverse()*B*C.transpose(), no views",
)

EIGEN_RECOMMENDED = EvaluationStrategy(
    name="eigen_recommended",
    label="Eig r",
    library="Eigen",
    parenthesization="left_to_right",
    explicit_inversion=False,
    product_properties=_EIGEN_VIEWS,
    solve_properties=_EIGEN_VIEWS | _SPD,
    description="Eigen, A.llt().solve(B)*C.transpose(), structure-aware solvers",
)

ARMADILLO_NAIVE = EvaluationStrategy(
    name="armadillo_naive",
    label="Arma n",
    library="Armadillo",
    parenthesization="armadillo",
    explicit_inversion=True,
    product_properties=_ARMA_TYPES,
    solve_properties=_SPD | _DIAG,
    description="Armadillo, inv_sympd/inv, chain heuristic, trimat operands",
)

ARMADILLO_RECOMMENDED = EvaluationStrategy(
    name="armadillo_recommended",
    label="Arma r",
    library="Armadillo",
    parenthesization="armadillo",
    explicit_inversion=False,
    product_properties=_ARMA_TYPES,
    solve_properties=_TRIANGULAR | _DIAG,
    description="Armadillo, solve(A, B) with solve_opts::fast, chain heuristic",
)

BLAZE_NAIVE = EvaluationStrategy(
    name="blaze_naive",
    label="Bl n",
    library="Blaze",
    parenthesization="vector_aware",
    explicit_inversion=True,
    product_properties=_BLAZE_ADAPTORS,
    solve_properties=frozenset(),
    description="Blaze, blaze::inv(A)*B*trans(C), adaptors, A*(B*v) for vectors",
)

#: The nine baselines, in the order of the paper's Fig. 8.
BASELINE_STRATEGIES: Sequence[EvaluationStrategy] = (
    JULIA_NAIVE,
    JULIA_RECOMMENDED,
    ARMADILLO_NAIVE,
    ARMADILLO_RECOMMENDED,
    EIGEN_NAIVE,
    EIGEN_RECOMMENDED,
    BLAZE_NAIVE,
    MATLAB_NAIVE,
    MATLAB_RECOMMENDED,
)

_BY_NAME: Dict[str, EvaluationStrategy] = {s.name: s for s in BASELINE_STRATEGIES}
_BY_LABEL: Dict[str, EvaluationStrategy] = {s.label: s for s in BASELINE_STRATEGIES}


def baseline_strategies() -> List[EvaluationStrategy]:
    """The nine baseline strategies of the paper, in Fig. 8 order."""
    return list(BASELINE_STRATEGIES)


def strategy_by_name(name: str) -> EvaluationStrategy:
    """Look a baseline up by name (``"julia_naive"``) or label (``"Jl n"``)."""
    if name in _BY_NAME:
        return _BY_NAME[name]
    if name in _BY_LABEL:
        return _BY_LABEL[name]
    raise KeyError(f"unknown strategy {name!r}")


def build_gmc_program(
    chain: Expression,
    catalog: Optional[KernelCatalog] = None,
    metric: Optional[CostMetric] = None,
) -> Program:
    """Build the GMC program for a chain with the same call signature as the
    baselines, so the experiment harness can treat all strategies uniformly."""
    algorithm = GMCAlgorithm(
        CompileOptions(metric=metric if metric is not None else "flops", catalog=catalog)
    )
    return algorithm.generate(chain, strategy_name="GMC")

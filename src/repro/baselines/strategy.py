"""The generic library-strategy simulator.

Every library/language the paper compares against (Section 4) is modeled as
an :class:`EvaluationStrategy` that deterministically maps a generalized
matrix chain to a kernel program, the way that library would evaluate the
expression:

* a *parenthesization policy* (left-to-right for Matlab/Julia/Eigen/Blaze,
  the size heuristic for Armadillo, vector-aware right association for
  Blaze);
* *inverse handling*: naive variants invert explicitly (``inv(A)*B``),
  recommended variants solve linear systems (``A\\B``);
* *property visibility*: which structural properties the library's type
  system (Julia types, Eigen views, Blaze adaptors, Armadillo trimat/sympd,
  Matlab's runtime inspection) makes available when kernels are selected.

The simulator reuses the kernel catalog and the pattern matcher, so baseline
programs are built from exactly the same kernels as GMC programs and can be
costed and executed identically -- the comparison isolates the *decisions*
(parenthesization, solve vs. invert, specialization), which is what the
paper's Fig. 8/9 measure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..algebra.expression import Expression, Matrix, Temporary
from ..algebra.inference import infer_properties
from ..algebra.interning import intern
from ..algebra.operators import Inverse, InverseTranspose, Times, Transpose
from ..algebra.properties import Property
from ..algebra.simplify import as_chain, unary_decomposition, wrap_leaf
from ..cost.metrics import CostMetric, FlopCount
from ..kernels.catalog import KernelCatalog, default_catalog
from ..kernels.kernel import Kernel, KernelCall, Program
from ..matching.patterns import Substitution
from . import parenthesizers


class StrategyError(RuntimeError):
    """Raised when a strategy cannot map a chain onto the kernel catalog."""


#: Structural properties (beyond shape bookkeeping) that a library can "see".
STRUCTURAL_PROPERTIES = frozenset(
    {
        Property.LOWER_TRIANGULAR,
        Property.UPPER_TRIANGULAR,
        Property.DIAGONAL,
        Property.SYMMETRIC,
        Property.SPD,
        Property.SPSD,
        Property.IDENTITY,
        Property.ORTHOGONAL,
        Property.PERMUTATION,
        Property.UNIT_DIAGONAL,
        Property.BANDED,
        Property.TRIDIAGONAL,
        Property.ZERO,
    }
)

#: Non-structural bookkeeping properties that every library sees trivially.
SHAPE_PROPERTIES = frozenset(
    {
        Property.SQUARE,
        Property.VECTOR,
        Property.SCALAR,
        Property.NON_SINGULAR,
        Property.FULL_RANK,
    }
)

ALL_STRUCTURAL = STRUCTURAL_PROPERTIES


@dataclass(frozen=True)
class EvaluationStrategy:
    """Configuration of one simulated library implementation.

    Attributes
    ----------
    name:
        Machine-readable identifier (``"julia_naive"``).
    label:
        The short label used in the paper's figures (``"Jl n"``).
    library:
        Library family name (``"Julia"``), used for grouping in reports.
    parenthesization:
        Key into :data:`repro.baselines.parenthesizers.PARENTHESIZERS`.
    explicit_inversion:
        ``True`` for naive variants (``inv(A)``), ``False`` for recommended
        variants (linear-system solves).
    product_properties:
        Properties visible when choosing multiplication kernels.
    solve_properties:
        Properties visible when choosing solve kernels (recommended variants)
        or explicit-inversion kernels (naive variants).
    description:
        One-line description used in reports.
    """

    name: str
    label: str
    library: str
    parenthesization: str = "left_to_right"
    explicit_inversion: bool = False
    product_properties: FrozenSet[Property] = frozenset()
    solve_properties: FrozenSet[Property] = frozenset()
    description: str = ""

    def __post_init__(self) -> None:
        if self.parenthesization not in parenthesizers.PARENTHESIZERS:
            raise ValueError(f"unknown parenthesization policy {self.parenthesization!r}")

    # ------------------------------------------------------------------ API
    def build_program(
        self,
        chain: Expression,
        catalog: Optional[KernelCatalog] = None,
        metric: Optional[CostMetric] = None,
    ) -> Program:
        """Map *chain* to the kernel program this library would execute."""
        builder = _StrategyProgramBuilder(
            strategy=self,
            catalog=catalog if catalog is not None else default_catalog(),
            metric=metric if metric is not None else FlopCount(),
        )
        return builder.build(chain)

    def __str__(self) -> str:
        return self.label


class _StrategyProgramBuilder:
    """Builds the kernel program of one strategy for one chain."""

    def __init__(
        self, strategy: EvaluationStrategy, catalog: KernelCatalog, metric: CostMetric
    ) -> None:
        self.strategy = strategy
        self.catalog = catalog
        self.metric = metric
        self.calls: List[KernelCall] = []

    # ----------------------------------------------------------------- build
    def build(self, chain: Expression) -> Program:
        factors = list(as_chain(chain))
        if self.strategy.explicit_inversion:
            factors = [self._resolve_inverse(factor) for factor in factors]
        if len(factors) == 1:
            output = self._only_factor_output(factors[0])
            return Program(
                calls=self.calls,
                output=output,
                expression=chain,
                strategy=self.strategy.name,
            )
        shapes = [(factor.rows, factor.columns) for factor in factors]
        policy = parenthesizers.PARENTHESIZERS[self.strategy.parenthesization]
        tree = policy(shapes)
        outputs: Dict[object, Expression] = {}
        result: Optional[Expression] = None
        for left_tree, right_tree in parenthesizers.tree_products(tree):
            left = outputs.get(_key(left_tree))
            if left is None:
                left = factors[left_tree]  # type: ignore[index]
            right = outputs.get(_key(right_tree))
            if right is None:
                right = factors[right_tree]  # type: ignore[index]
            result = self._emit_product(left, right)
            outputs[_key((left_tree, right_tree))] = result
        return Program(
            calls=self.calls,
            output=result,
            expression=chain,
            strategy=self.strategy.name,
        )

    # ------------------------------------------------------------- inversion
    def _resolve_inverse(self, factor: Expression) -> Expression:
        """Naive strategies: replace ``A^-1`` by an explicit inversion call."""
        if not isinstance(factor, (Inverse, InverseTranspose)):
            return factor
        leaf, transposed, _ = unary_decomposition(factor)
        masked = self._masked(leaf, self.strategy.solve_properties)
        expr = intern(Inverse(masked))
        kernel, substitution = self._select_kernel(expr)
        properties = infer_properties(expr) & (
            self.strategy.product_properties | SHAPE_PROPERTIES
        )
        output = Temporary(
            rows=leaf.rows,
            columns=leaf.columns,
            properties=properties,
            origin=expr,
        )
        self._record(kernel, substitution, output, expr)
        return Transpose(output) if transposed else output

    # -------------------------------------------------------------- products
    def _emit_product(self, left: Expression, right: Expression) -> Expression:
        expr = intern(Times(self._mask_factor(left), self._mask_factor(right)))
        kernel, substitution = self._select_kernel(expr)
        properties = infer_properties(expr) & (
            self.strategy.product_properties | SHAPE_PROPERTIES
        )
        output = Temporary(
            rows=expr.rows,
            columns=expr.columns,
            properties=properties,
            origin=expr,
        )
        self._record(kernel, substitution, output, expr)
        return output

    def _only_factor_output(self, factor: Expression) -> Optional[Matrix]:
        if isinstance(factor, Matrix):
            return factor
        return None

    # -------------------------------------------------------------- plumbing
    def _mask_factor(self, factor: Expression) -> Expression:
        """Hide the properties the library cannot see, preserving the wrapper."""
        if isinstance(factor, Matrix):
            return self._masked(factor, self.strategy.product_properties)
        if isinstance(factor, (Transpose, Inverse, InverseTranspose)):
            leaf, transposed, inverted = unary_decomposition(factor)
            visible = (
                self.strategy.solve_properties if inverted else self.strategy.product_properties
            )
            return wrap_leaf(self._masked(leaf, visible), transposed, inverted)
        raise StrategyError(f"unexpected chain factor {factor}")

    def _masked(self, leaf: Matrix, visible: FrozenSet[Property]) -> Matrix:
        kept = (leaf.properties & visible) | (leaf.properties & SHAPE_PROPERTIES)
        if kept == leaf.properties:
            return leaf
        # Masked copies recur for every product the strategy emits; interning
        # dedupes them so inference over masked operands memoizes by identity.
        return intern(Matrix(leaf.name, leaf.rows, leaf.columns, kept))

    def _select_kernel(self, expr: Expression) -> Tuple[Kernel, Substitution]:
        matches = self.catalog.match(expr)
        if not matches:
            raise StrategyError(
                f"strategy {self.strategy.name} cannot compute {expr} with the catalog"
            )
        best = None
        best_key = None
        for kernel, substitution in matches:
            cost = self.metric.kernel_cost_cached(kernel, substitution)
            key = (cost, -len(kernel.pattern.constraints), kernel.id)
            if best_key is None or key < best_key:
                best_key = key
                best = (kernel, substitution)
        return best

    def _record(
        self,
        kernel: Kernel,
        substitution: Substitution,
        output: Matrix,
        expr: Expression,
    ) -> None:
        self.calls.append(
            KernelCall(
                kernel=kernel,
                substitution=substitution,
                output=output,
                expression=expr,
                flops=kernel.flops(substitution),
                cost=self.metric.kernel_cost_cached(kernel, substitution),
            )
        )


def _key(tree: object) -> object:
    """Hashable identity of a parenthesization sub-tree."""
    if isinstance(tree, int):
        return tree
    left, right = tree
    return (_key(left), _key(right))

"""Baseline evaluation strategies: simulators of the compared libraries.

The paper's evaluation (Section 4) compares GMC-generated code against
Julia, Matlab, Eigen, Armadillo and Blaze, each in a naive and (where the
library supports linear-system solves) a recommended variant.  Those
libraries are not available offline; each is modeled here as a deterministic
:class:`EvaluationStrategy` that maps a chain to a kernel program the way
that library evaluates expressions (see DESIGN.md, substitution 2).
"""

from . import parenthesizers
from .registry import (
    ARMADILLO_NAIVE,
    ARMADILLO_RECOMMENDED,
    BASELINE_STRATEGIES,
    BLAZE_NAIVE,
    EIGEN_NAIVE,
    EIGEN_RECOMMENDED,
    JULIA_NAIVE,
    JULIA_RECOMMENDED,
    MATLAB_NAIVE,
    MATLAB_RECOMMENDED,
    baseline_strategies,
    build_gmc_program,
    strategy_by_name,
)
from .strategy import EvaluationStrategy, StrategyError

__all__ = [
    "EvaluationStrategy",
    "StrategyError",
    "parenthesizers",
    "baseline_strategies",
    "strategy_by_name",
    "build_gmc_program",
    "BASELINE_STRATEGIES",
    "JULIA_NAIVE",
    "JULIA_RECOMMENDED",
    "ARMADILLO_NAIVE",
    "ARMADILLO_RECOMMENDED",
    "EIGEN_NAIVE",
    "EIGEN_RECOMMENDED",
    "BLAZE_NAIVE",
    "MATLAB_NAIVE",
    "MATLAB_RECOMMENDED",
]

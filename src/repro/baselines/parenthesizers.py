"""Parenthesization policies used by the baseline library simulators.

Each policy maps the shapes of the chain factors to a binary evaluation tree
(nested tuples of factor indices).  The policies mirror how the libraries of
the paper's evaluation (Section 4) actually order their products:

* :func:`left_to_right` -- Matlab, Julia, Eigen, Blaze: expressions are
  evaluated strictly left to right.
* :func:`right_to_left` -- the mirror policy, used in tests and ablations.
* :func:`vector_aware` -- Blaze's special case: products of the form
  ``A * B * v`` with a vector ``v`` are evaluated as ``A * (B * v)``.
* :func:`armadillo` -- the heuristic described in Section 4: chains of
  length 3 and 4 are split by comparing the sizes of candidate
  sub-products, longer chains are broken into groups of at most four
  factors; the parenthesization ``(AB)(CD)`` can never be produced.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

#: A parenthesization tree: either an ``int`` (factor index) or a pair of trees.
Tree = object


def _shapes_product(shapes: Sequence[Tuple[int, int]], i: int, j: int) -> Tuple[int, int]:
    """Shape of the product of factors ``i..j`` (inclusive)."""
    return shapes[i][0], shapes[j][1]


def _elements(shape: Tuple[int, int]) -> int:
    return shape[0] * shape[1]


def left_to_right(shapes: Sequence[Tuple[int, int]]) -> Tree:
    """((((f0 f1) f2) f3) ...): the default of Matlab, Julia, Eigen, Blaze."""
    tree: Tree = 0
    for index in range(1, len(shapes)):
        tree = (tree, index)
    return tree


def right_to_left(shapes: Sequence[Tuple[int, int]]) -> Tree:
    """(f0 (f1 (f2 ...))): the mirror policy."""
    n = len(shapes)
    tree: Tree = n - 1
    for index in range(n - 2, -1, -1):
        tree = (index, tree)
    return tree


def vector_aware(shapes: Sequence[Tuple[int, int]]) -> Tree:
    """Blaze's policy: right-to-left over the prefix ending in a column vector.

    When some factor ``p`` is a column vector, the prefix ``f0 .. fp`` is
    evaluated right to left (every step is a matrix-vector product) and the
    remaining factors -- e.g. the transposed vector of an outer product tail
    ``v1 v2^T`` -- are folded in left to right afterwards.  Without a column
    vector the policy degenerates to plain left-to-right evaluation.
    """
    n = len(shapes)
    vector_positions = [
        index for index, (rows, columns) in enumerate(shapes) if columns == 1 and rows > 1
    ]
    if not vector_positions:
        return left_to_right(shapes)
    pivot = vector_positions[-1]
    tree: Tree = pivot
    for index in range(pivot - 1, -1, -1):
        tree = (index, tree)
    for index in range(pivot + 1, n):
        tree = (tree, index)
    return tree


def _armadillo_three(shapes: Sequence[Tuple[int, int]], i: int, j: int, k: int) -> Tree:
    """Armadillo's rule for a chain of three: compare |AB| and |BC|."""
    ab = _elements((shapes[i][0], shapes[j][1]))
    bc = _elements((shapes[j][0], shapes[k][1]))
    if ab <= bc:
        return ((i, j), k)
    return (i, (j, k))


def _armadillo_group(shapes: Sequence[Tuple[int, int]], indices: Sequence[int]) -> Tree:
    """Armadillo's rule for a group of at most four factors."""
    if len(indices) == 1:
        return indices[0]
    if len(indices) == 2:
        return (indices[0], indices[1])
    if len(indices) == 3:
        return _armadillo_three(shapes, *indices)
    a, b, c, d = indices
    abc = _elements((shapes[a][0], shapes[c][1]))
    bcd = _elements((shapes[b][0], shapes[d][1]))
    if abc <= bcd:
        return (_armadillo_three(shapes, a, b, c), d)
    return (a, _armadillo_three(shapes, b, c, d))


def armadillo(shapes: Sequence[Tuple[int, int]]) -> Tree:
    """The Armadillo heuristic of Section 4.

    Chains with more than four factors are broken down deterministically
    (following how expression templates accumulate from the left): the first
    four factors form a group solved with the 3/4-factor rules, the group's
    result then acts as the first factor of the next group, and so on.  Note
    that ``(AB)(CD)`` can never be produced.
    """
    n = len(shapes)
    if n <= 4:
        return _armadillo_group(shapes, list(range(n)))
    # First group: factors 0..3.
    group_shapes: List[Tuple[int, int]] = list(shapes[:4])
    tree = _armadillo_group(shapes, [0, 1, 2, 3])
    current_shape = (shapes[0][0], shapes[3][1])
    index = 4
    while index < n:
        remaining = min(3, n - index)
        group_indices = list(range(index, index + remaining))
        # The accumulated result plays the role of the first factor.
        virtual_shapes = {0: current_shape}
        for offset, original in enumerate(group_indices, start=1):
            virtual_shapes[offset] = shapes[original]

        def shape_of(position: int) -> Tuple[int, int]:
            return virtual_shapes[position]

        local_shapes = [shape_of(position) for position in range(remaining + 1)]
        local_tree = _armadillo_group(local_shapes, list(range(remaining + 1)))
        tree = _substitute(local_tree, [tree] + group_indices)
        current_shape = (current_shape[0], shapes[group_indices[-1]][1])
        index += remaining
    return tree


def _substitute(tree: Tree, mapping: Sequence[Tree]) -> Tree:
    """Replace the integer leaves of a local tree with the global sub-trees."""
    if isinstance(tree, int):
        return mapping[tree]
    left, right = tree
    return (_substitute(left, mapping), _substitute(right, mapping))


def tree_products(tree: Tree) -> List[Tuple[Tree, Tree]]:
    """The binary products of a tree in dependency (bottom-up) order."""
    products: List[Tuple[Tree, Tree]] = []

    def visit(node: Tree) -> None:
        if isinstance(node, int):
            return
        left, right = node
        visit(left)
        visit(right)
        products.append((left, right))

    visit(tree)
    return products


def tree_to_string(tree: Tree, labels: Sequence[str]) -> str:
    """Render a tree with factor labels, e.g. ``((A * B) * C)``."""
    if isinstance(tree, int):
        return labels[tree]
    left, right = tree
    return f"({tree_to_string(left, labels)} * {tree_to_string(right, labels)})"


PARENTHESIZERS = {
    "left_to_right": left_to_right,
    "right_to_left": right_to_left,
    "vector_aware": vector_aware,
    "armadillo": armadillo,
}

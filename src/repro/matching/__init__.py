"""Syntactic many-to-one pattern matching (the MatchPy stand-in).

The matcher is used by the kernel catalog to decide which kernels can
compute a given sub-expression, mirroring the role MatchPy plays in the
paper's reference implementation (Section 3.1).
"""

from .discrimination_net import DiscriminationNet, legacy_binding
from .match_cache import MatchCache, match_caching_disabled
from .patterns import (
    Constraint,
    Pattern,
    Substitution,
    Wildcard,
    match,
    matches,
    property_constraint,
)

__all__ = [
    "Wildcard",
    "Substitution",
    "Constraint",
    "Pattern",
    "match",
    "matches",
    "property_constraint",
    "DiscriminationNet",
    "legacy_binding",
    "MatchCache",
    "match_caching_disabled",
]

"""Signature-keyed caching of kernel-match results.

Profiling shows that the per-split matching step of the GMC dynamic program
-- the discrimination-net walk plus constraint checks -- dominates generation
time even after expression hash-consing, and that structurally identical
cells re-pay it on every solve: a DP cell's subject is ``Times(left, right)``
over two operands, and the *outcome* of matching depends only on the
operands' shapes, declared properties and equality structure, never on their
names.  Repeated solves of the same (or a similar) chain create fresh
temporaries each time, so identity- or equality-keyed caches miss; a cache
keyed by the name-abstracted :meth:`~repro.algebra.expression.Expression.signature`
hits.

:class:`MatchCache` sits in front of :meth:`KernelCatalog.match
<repro.kernels.catalog.KernelCatalog.match>`:

* on a **miss** it walks the discrimination net once, returns the matches,
  and records -- per matched kernel -- the *preorder position* of every
  wildcard binding inside the subject;
* on a **hit** it skips the net walk and constraint checks entirely and
  re-binds each recorded substitution against the new subject: the operand
  at the same preorder position of a signature-equal subject is the
  corresponding one, and it satisfies the same constraints by construction
  (signatures capture exactly what constraints can observe).

Invalidation
------------
Cached kernel lists embed two kinds of semantics that can change:

* **catalog extension** -- adding a pattern to the net would make every
  cached list stale; the cache records the net's ``version`` and flushes
  when it moves (catalogs built via ``KernelCatalog.extended`` get a fresh
  net *and* a fresh cache, so they are safe either way);
* **predicate-registry mutation** -- constraints evaluate properties through
  :data:`repro.algebra.inference.PREDICATES`; the cache records the registry
  version and flushes on any change, and while the registry is *customized*
  (differs from the built-in set) it bypasses caching entirely, because a
  user predicate may inspect details the signature abstracts away.

The cache additionally bypasses nets containing concrete-leaf patterns
(which match on operand names), nets containing wildcard predicates or
constraints not marked :func:`~repro.matching.patterns.structural_predicate`
(user-supplied callables may observe what the signature abstracts away),
and subjects containing wildcards.  Entries
are evicted LRU-style under a configurable bound, so long-running (batch /
server) processes hold their working set instead of resetting wholesale.
"""

from __future__ import annotations

from collections import OrderedDict
from contextlib import contextmanager
from typing import Iterator, List, Optional, Tuple

from ..algebra.expression import Expression
from ..algebra.inference import registry_is_customized, registry_version
from .discrimination_net import DiscriminationNet, _flatten_subject
from .patterns import Substitution, Wildcard

__all__ = ["MatchCache", "match_caching_disabled"]


#: Per-kernel re-binding recipe: the matched payload (kernel) plus, for every
#: wildcard of its pattern, the name and the preorder position of the subject
#: node it bound to.
_CachedMatch = Tuple[object, Tuple[Tuple[str, int], ...]]

#: Module-level switch consulted by ``KernelCatalog.match``; flipped by
#: :func:`match_caching_disabled` so benchmarks and differential tests can
#: measure the uncached reference path.
_ENABLED = True


@contextmanager
def match_caching_disabled() -> Iterator[None]:
    """Route ``KernelCatalog.match`` around the match cache while active."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = False
    try:
        yield
    finally:
        _ENABLED = previous


class MatchCache:
    """An LRU-bounded cache of net-match results keyed by subject signature.

    One instance serves one :class:`DiscriminationNet`; the kernel catalog
    owns the pairing.  ``match`` is a drop-in replacement for collecting the
    net's ``(payload, substitution)`` pairs.
    """

    def __init__(self, net: DiscriminationNet, max_entries: int = 100_000) -> None:
        self._net = net
        self._entries: "OrderedDict[Tuple, List[_CachedMatch]]" = OrderedDict()
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.bypasses = 0
        self._net_version = net.version
        self._registry_version = registry_version()
        self._registry_custom = registry_is_customized()

    # -------------------------------------------------------------- inspection
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        """Fraction of cacheable lookups answered without a net walk."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        """Plain-dict counters (uniform cache-stats protocol).

        ``bypasses`` counts lookups routed around the cache by the
        invalidation rules (customized predicate registry, concrete-leaf or
        opaque-predicate patterns); they are excluded from the hit rate
        because no cache decision was made.
        """
        return {
            "layer": "match_cache",
            "size": len(self._entries),
            "max_entries": self.max_entries,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "evictions": self.evictions,
            "bypasses": self.bypasses,
        }

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.bypasses = 0

    def clear(self) -> None:
        """Drop all entries (and re-sync the watched versions)."""
        self._entries.clear()
        self._net_version = self._net.version
        self._registry_version = registry_version()
        self._registry_custom = registry_is_customized()

    # --------------------------------------------------------------- snapshot
    def export_entries(self) -> List[Tuple[Tuple, List[_CachedMatch]]]:
        """All cached entries as ``(signature, matches)`` pairs (LRU order).

        Used by :mod:`repro.persist.snapshot` to persist the cache; payloads
        are the live kernel objects (the snapshot layer maps them to ids).
        """
        return [(signature, list(entries)) for signature, entries in self._entries.items()]

    def import_entries(self, items) -> int:
        """Insert snapshot entries for keys not already cached.

        The caller (:mod:`repro.persist.snapshot`) validates that the
        snapshot's net/registry versions match this process before calling;
        warm in-memory entries are never overwritten.  Exports are
        LRU-ordered oldest-first; when capacity runs short the *newest*
        (most recently used) entries win, whatever the cache already
        holds.  Returns the number of entries inserted.
        """
        if self._registry_version != registry_version() or (
            self._net_version != self._net.version
        ):
            self.clear()
        capacity = self.max_entries - len(self._entries)
        selected = []
        for signature, entries in reversed(list(items)):
            if len(selected) >= capacity:
                break
            if signature not in self._entries:
                selected.append((signature, entries))
        # Insert oldest-first so the imported slice keeps its LRU order.
        for signature, entries in reversed(selected):
            self._entries.setdefault(signature, list(entries))
        return len(selected)

    # ------------------------------------------------------------------ lookup
    def match(self, subject: Expression) -> List[Tuple[object, Substitution]]:
        """All ``(payload, substitution)`` pairs matching *subject*.

        Equivalent to walking the net directly; the walk is skipped when a
        signature-equal subject was matched before.
        """
        if self._registry_version != registry_version():
            self.clear()
        net = self._net
        if (
            self._registry_custom
            or net.has_concrete_leaf_patterns
            or net.has_opaque_predicates
        ):
            self.bypasses += 1
            return [
                (payload, substitution)
                for _, substitution, payload in self._net.match(subject)
            ]
        if self._net_version != self._net.version:
            self.clear()

        signature = subject.signature()
        cached = self._entries.get(signature)
        if cached is not None:
            self.hits += 1
            try:
                self._entries.move_to_end(signature)
            except KeyError:
                # The intra-solve thread pool shares this cache; a
                # concurrent eviction can drop the entry between the get
                # and the LRU touch.  The cached matches stay valid.
                pass
            nodes, _ = _flatten_subject(subject)
            results: List[Tuple[object, Substitution]] = []
            for payload, slots in cached:
                results.append(
                    (
                        payload,
                        Substitution._from_owned_dict(
                            {name: nodes[position] for name, position in slots}
                        ),
                    )
                )
            return results

        self.misses += 1
        nodes, _ = _flatten_subject(subject)
        results = []
        entry: Optional[List[_CachedMatch]] = []
        for _, substitution, payload in self._net.match(subject):
            results.append((payload, substitution))
            if entry is not None:
                slots = _binding_slots(nodes, substitution)
                entry = None if slots is None else entry + [(payload, slots)]
        if entry is not None and not any(
            isinstance(node, Wildcard) for node in nodes
        ):
            if len(self._entries) >= self.max_entries:
                try:
                    self._entries.popitem(last=False)
                    self.evictions += 1
                except KeyError:  # emptied by a concurrent solver thread
                    pass
            self._entries[signature] = entry
        return results


def _binding_slots(
    nodes: List[Expression], substitution: Substitution
) -> Optional[Tuple[Tuple[str, int], ...]]:
    """Locate every bound operand inside the subject's preorder node list.

    Any structurally equal occurrence is a valid anchor: signature-equal
    subjects have identical equality patterns, so the node at the same
    position of a future subject is structurally interchangeable with the
    "true" binding position.  Returns ``None`` when a binding cannot be
    anchored (never the case for net-produced substitutions; kept defensive).
    """
    slots: List[Tuple[str, int]] = []
    for name, value in substitution.items():
        for position, node in enumerate(nodes):
            if node is value or node == value:
                slots.append((name, position))
                break
        else:
            return None
    return tuple(slots)

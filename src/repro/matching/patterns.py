"""Patterns, wildcards and substitutions for syntactic expression matching.

The GMC algorithm selects kernels by *many-to-one syntactic pattern
matching* (paper Section 3.1): the set of patterns is the kernel catalog, and
for each candidate sub-expression the matcher reports which kernels apply.
The reference implementation uses the MatchPy library; this module is a
self-contained replacement providing exactly the functionality GMC needs:

* :class:`Wildcard` -- a pattern leaf that matches any expression and binds
  it to a name; the same name may occur several times (non-linear patterns
  such as the SYRK pattern ``X^T X``), in which case all occurrences must
  bind to structurally equal expressions.
* :class:`Substitution` -- an immutable mapping from wildcard names to the
  matched sub-expressions.
* :class:`Pattern` -- a pattern expression plus a set of constraints that the
  substitution must satisfy (for example "the operand bound to X is lower
  triangular").
* :func:`match` / :func:`matches` -- match a single pattern against a subject
  expression.

Matching is purely syntactic: operator types and arities must agree.  This is
sufficient for the bounded expressions produced by the GMC algorithm (trees
of at most five nodes, Section 3.4) and keeps each match O(pattern size).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, Mapping, Optional, Sequence, Tuple

from ..algebra.expression import Expression, Matrix
from ..algebra.operators import Inverse, InverseTranspose, Plus, Times, Transpose


class Wildcard(Expression):
    """A pattern leaf matching any expression.

    Parameters
    ----------
    name:
        Binding name; equal names within one pattern must bind to equal
        sub-expressions.
    predicate:
        Optional per-wildcard predicate evaluated on the candidate
        sub-expression before binding.
    """

    __slots__ = ("name", "predicate")

    def __init__(
        self,
        name: str,
        predicate: Optional[Callable[[Expression], bool]] = None,
    ) -> None:
        if not name:
            raise ValueError("wildcard name must be non-empty")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "predicate", predicate)

    def __setattr__(self, key: str, value: object) -> None:  # pragma: no cover
        raise AttributeError("Wildcard instances are immutable")

    @property
    def rows(self) -> None:
        return None

    @property
    def columns(self) -> None:
        return None

    def admits(self, expr: Expression) -> bool:
        """True when this wildcard may bind to *expr*."""
        if self.predicate is None:
            return True
        return bool(self.predicate(expr))

    def _key(self) -> Tuple:
        return (self.name,)

    def __str__(self) -> str:
        return f"_{self.name}"


class Substitution(Mapping[str, Expression]):
    """An immutable mapping from wildcard names to matched expressions."""

    __slots__ = ("_bindings", "_hash")

    def __init__(self, bindings: Optional[Mapping[str, Expression]] = None) -> None:
        self._bindings: Dict[str, Expression] = dict(bindings or {})
        self._hash: Optional[int] = None

    @classmethod
    def _from_owned_dict(cls, bindings: Dict[str, Expression]) -> "Substitution":
        """Wrap a freshly built dict without copying it.

        The caller must relinquish ownership of *bindings*; used by the
        matcher's acceptance path, which builds one dict per candidate match.
        """
        substitution = cls.__new__(cls)
        substitution._bindings = bindings
        substitution._hash = None
        return substitution

    def __getitem__(self, key: str) -> Expression:
        return self._bindings[key]

    def __iter__(self) -> Iterator[str]:
        return iter(self._bindings)

    def __len__(self) -> int:
        return len(self._bindings)

    # Direct delegation to the underlying dict: the ``Mapping`` mixin
    # versions go through ``__getitem__`` + exception handling per call,
    # which is measurable in the kernel-matching inner loop.
    def get(self, key: str, default=None):
        return self._bindings.get(key, default)

    def keys(self):
        return self._bindings.keys()

    def values(self):
        return self._bindings.values()

    def items(self):
        return self._bindings.items()

    def __contains__(self, key: object) -> bool:
        return key in self._bindings

    def extended(self, name: str, expr: Expression) -> Optional["Substitution"]:
        """Return a new substitution with ``name -> expr`` added.

        Returns ``None`` when *name* is already bound to a different
        expression (non-linear pattern conflict).
        """
        existing = self._bindings.get(name)
        if existing is not None:
            return self if existing == expr else None
        merged = dict(self._bindings)
        merged[name] = expr
        return Substitution._from_owned_dict(merged)

    def __repr__(self) -> str:
        inner = ", ".join(f"{name}={expr}" for name, expr in sorted(self._bindings.items()))
        return f"Substitution({inner})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Substitution):
            return NotImplemented
        return self._bindings == other._bindings

    def __hash__(self) -> int:
        # Substitutions are immutable; caching the hash makes them cheap dict
        # keys (e.g. for memoized kernel costs).  The expression values cache
        # their own hashes, so the first computation is O(#bindings).
        value = self._hash
        if value is None:
            value = hash(frozenset(self._bindings.items()))
            self._hash = value
        return value


def structural_predicate(callable_):
    """Mark a predicate/constraint callable as *structural*.

    A structural callable is a pure function of operand shapes, declared or
    symbolically inferred properties, and expression structure -- exactly
    the information the shape/property signature
    (:meth:`~repro.algebra.expression.Expression.signature`) captures.  The
    signature-keyed match cache only caches results of patterns whose
    wildcard predicates and constraints are all marked structural; an
    unmarked callable (which may inspect operand names, close over mutable
    state, ...) routes its whole net around the cache.  All stock kernel
    constraints carry the mark.
    """
    callable_.structural = True
    return callable_


def is_structural_predicate(callable_) -> bool:
    """True for ``None`` and for callables marked by :func:`structural_predicate`."""
    return callable_ is None or getattr(callable_, "structural", False)


class Constraint:
    """A named predicate over a :class:`Substitution`.

    Constraints express kernel applicability conditions such as
    "``is_lower_triangular(X)``" from Table 1 of the paper.
    """

    def __init__(
        self,
        predicate: Callable[[Substitution], bool],
        description: str = "",
    ) -> None:
        self._predicate = predicate
        self.description = description or getattr(predicate, "__name__", "constraint")

    @property
    def predicate(self) -> Callable[[Substitution], bool]:
        """The underlying predicate (for callers that pre-extract it)."""
        return self._predicate

    def __call__(self, substitution: Substitution) -> bool:
        return bool(self._predicate(substitution))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Constraint({self.description})"


def property_constraint(wildcard_name: str, prop) -> Constraint:
    """Build a constraint requiring the operand bound to *wildcard_name*
    to have (symbolically inferable) property *prop*."""
    from ..algebra.inference import has_property

    def predicate(substitution: Substitution) -> bool:
        expr = substitution.get(wildcard_name)
        if expr is None:
            return False
        return has_property(expr, prop)

    return Constraint(
        structural_predicate(predicate), f"{prop.name.lower()}({wildcard_name})"
    )


class Pattern:
    """A pattern expression together with its applicability constraints."""

    def __init__(
        self,
        expression: Expression,
        constraints: Sequence[Constraint] = (),
        name: Optional[str] = None,
    ) -> None:
        self.expression = expression
        self.constraints = tuple(constraints)
        self.name = name or str(expression)

    @property
    def wildcard_names(self) -> Tuple[str, ...]:
        names = []
        for node in self.expression.preorder():
            if isinstance(node, Wildcard) and node.name not in names:
                names.append(node.name)
        return tuple(names)

    def check_constraints(self, substitution: Substitution) -> bool:
        return all(constraint(substitution) for constraint in self.constraints)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Pattern({self.expression}, name={self.name!r})"


# ---------------------------------------------------------------------------
# Single-pattern matching
# ---------------------------------------------------------------------------

_OPERATOR_TYPES = (Times, Plus, Transpose, Inverse, InverseTranspose)


def _match_node(
    pattern: Expression, subject: Expression, substitution: Substitution
) -> Optional[Substitution]:
    if isinstance(pattern, Wildcard):
        if not pattern.admits(subject):
            return None
        return substitution.extended(pattern.name, subject)
    if isinstance(pattern, _OPERATOR_TYPES):
        if type(subject) is not type(pattern):
            return None
        if len(pattern.children) != len(subject.children):
            return None
        current: Optional[Substitution] = substitution
        for pattern_child, subject_child in zip(pattern.children, subject.children):
            current = _match_node(pattern_child, subject_child, current)
            if current is None:
                return None
        return current
    # Concrete leaf in the pattern: require structural equality.
    if pattern == subject:
        return substitution
    return None


def match(pattern: Pattern, subject: Expression) -> Optional[Substitution]:
    """Match *pattern* against *subject*.

    Returns the substitution when the match succeeds (including all pattern
    constraints), otherwise ``None``.
    """
    substitution = _match_node(pattern.expression, subject, Substitution())
    if substitution is None:
        return None
    if not pattern.check_constraints(substitution):
        return None
    return substitution


def matches(pattern: Pattern, subject: Expression) -> bool:
    """Boolean convenience wrapper around :func:`match`."""
    return match(pattern, subject) is not None

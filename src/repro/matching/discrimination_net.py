"""A discrimination net for many-to-one syntactic pattern matching.

A discrimination net indexes a *set* of patterns in a trie keyed by the
preorder traversal of the pattern trees, so that matching a subject
expression against all patterns requires a single walk over the subject
instead of one walk per pattern.  This is the data structure the paper's
reference implementation obtains from MatchPy (Section 3.1, citing
Christian 1993 and Graef 1991) and is what makes the per-split matching cost
of the GMC algorithm independent of the number of kernels (Section 3.4).

Implementation notes
--------------------
* Every expression node is flattened to a token: operator nodes become
  ``(class name, arity)``; concrete leaves become ``("leaf", key)``; pattern
  wildcards become the special token ``"*"`` which, during matching, consumes
  an entire subject subtree.
* Because several patterns can share prefixes, and because at any point both
  a wildcard edge and an exact edge may be applicable, matching performs a
  depth-first search over net states.  The net's depth is bounded by the
  pattern size, which for GMC kernels is a small constant, so each match is
  O(1) with respect to both the number of patterns and the chain length.
* Non-linear patterns (repeated wildcard names, e.g. SYRK's ``X^T X``) and
  per-pattern constraints are checked at acceptance time on the collected
  bindings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..algebra.expression import Expression
from ..algebra.operators import Inverse, InverseTranspose, Plus, Times, Transpose
from .patterns import Pattern, Substitution, Wildcard

_WILDCARD_TOKEN = "*"

_OPERATOR_TYPES = (Times, Plus, Transpose, Inverse, InverseTranspose)


def _node_token(node: Expression) -> Tuple:
    """Flatten one expression node to a hashable trie token."""
    if isinstance(node, _OPERATOR_TYPES):
        return (type(node).__name__, len(node.children))
    return ("leaf", type(node).__name__, node._key())


def _flatten_pattern(expression: Expression) -> Tuple[List, List[Optional[str]]]:
    """Return the token sequence of a pattern and the wildcard name per slot.

    The wildcard-name list is parallel to the token list; non-wildcard
    positions hold ``None``.
    """
    tokens: List = []
    names: List[Optional[str]] = []

    def visit(node: Expression) -> None:
        if isinstance(node, Wildcard):
            tokens.append(_WILDCARD_TOKEN)
            names.append(node.name)
            return
        tokens.append(_node_token(node))
        names.append(None)
        for child in node.children:
            visit(child)

    visit(expression)
    return tokens, names


def _flatten_subject(expression: Expression) -> Tuple[List[Expression], List[int]]:
    """Preorder node list of the subject plus the subtree size of each node.

    The subtree sizes let a wildcard edge skip a whole subtree in O(1).
    """
    nodes: List[Expression] = []
    sizes: List[int] = []

    def visit(node: Expression) -> int:
        index = len(nodes)
        nodes.append(node)
        sizes.append(1)
        total = 1
        for child in node.children:
            total += visit(child)
        sizes[index] = total
        return total

    visit(expression)
    return nodes, sizes


@dataclass
class _Node:
    """One trie node of the discrimination net."""

    edges: Dict[object, "_Node"] = field(default_factory=dict)
    wildcard_edge: Optional["_Node"] = None
    #: Patterns accepted at this node, together with their per-slot wildcard
    #: names (parallel to the token sequence) and their payloads.
    accepts: List[Tuple[Pattern, List[Optional[str]], object]] = field(default_factory=list)


class DiscriminationNet:
    """Many-to-one matcher over a fixed set of patterns.

    Each pattern may carry an arbitrary *payload* (for the GMC algorithm the
    payload is the kernel the pattern belongs to); :meth:`match` yields
    ``(pattern, substitution, payload)`` triples.
    """

    def __init__(self, patterns: Sequence[Tuple[Pattern, object]] = ()) -> None:
        self._root = _Node()
        self._size = 0
        for pattern, payload in patterns:
            self.add(pattern, payload)

    def __len__(self) -> int:
        return self._size

    def add(self, pattern: Pattern, payload: object = None) -> None:
        """Insert a pattern (with an optional payload) into the net."""
        tokens, names = _flatten_pattern(pattern.expression)
        node = self._root
        for token in tokens:
            if token == _WILDCARD_TOKEN:
                if node.wildcard_edge is None:
                    node.wildcard_edge = _Node()
                node = node.wildcard_edge
            else:
                node = node.edges.setdefault(token, _Node())
        node.accepts.append((pattern, names, payload))
        self._size += 1

    # ------------------------------------------------------------------ match
    def match(self, subject: Expression) -> Iterator[Tuple[Pattern, Substitution, object]]:
        """Yield every pattern of the net that matches *subject*."""
        nodes, sizes = _flatten_subject(subject)
        total = len(nodes)

        # Depth-first search over (net node, subject position, bindings).
        # ``bindings`` is the list of subject sub-expressions consumed by
        # wildcard edges, in pattern preorder order.
        stack: List[Tuple[_Node, int, Tuple[Expression, ...]]] = [(self._root, 0, ())]
        while stack:
            net_node, position, bindings = stack.pop()
            if position == total:
                for pattern, names, payload in net_node.accepts:
                    substitution = self._bind(pattern, names, bindings)
                    if substitution is not None:
                        yield pattern, substitution, payload
                continue
            subject_node = nodes[position]
            token = _node_token(subject_node)
            exact_next = net_node.edges.get(token)
            if exact_next is not None:
                stack.append((exact_next, position + 1, bindings))
            if net_node.wildcard_edge is not None:
                skip = sizes[position]
                stack.append(
                    (net_node.wildcard_edge, position + skip, bindings + (subject_node,))
                )

    def _bind(
        self,
        pattern: Pattern,
        names: List[Optional[str]],
        bindings: Tuple[Expression, ...],
    ) -> Optional[Substitution]:
        """Turn the collected wildcard bindings into a substitution and check
        wildcard predicates, non-linear consistency and pattern constraints."""
        wildcard_names = [name for name in names if name is not None]
        if len(wildcard_names) != len(bindings):
            return None
        substitution: Optional[Substitution] = Substitution()
        wildcards_by_name = {
            node.name: node
            for node in pattern.expression.preorder()
            if isinstance(node, Wildcard)
        }
        for name, expr in zip(wildcard_names, bindings):
            wildcard = wildcards_by_name.get(name)
            if wildcard is not None and not wildcard.admits(expr):
                return None
            substitution = substitution.extended(name, expr)
            if substitution is None:
                return None
        if not pattern.check_constraints(substitution):
            return None
        return substitution

    def match_first(self, subject: Expression) -> Optional[Tuple[Pattern, Substitution, object]]:
        """Return an arbitrary successful match, or ``None``."""
        for result in self.match(subject):
            return result
        return None

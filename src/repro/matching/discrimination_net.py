"""A discrimination net for many-to-one syntactic pattern matching.

A discrimination net indexes a *set* of patterns in a trie keyed by the
preorder traversal of the pattern trees, so that matching a subject
expression against all patterns requires a single walk over the subject
instead of one walk per pattern.  This is the data structure the paper's
reference implementation obtains from MatchPy (Section 3.1, citing
Christian 1993 and Graef 1991) and is what makes the per-split matching cost
of the GMC algorithm independent of the number of kernels (Section 3.4).

Implementation notes
--------------------
* Every expression node is flattened to a token: operator nodes become
  ``(class name, arity)``; concrete leaves become ``("leaf", key)``; pattern
  wildcards become the special token ``"*"`` which, during matching, consumes
  an entire subject subtree.
* Because several patterns can share prefixes, and because at any point both
  a wildcard edge and an exact edge may be applicable, matching performs a
  depth-first search over net states.  The net's depth is bounded by the
  pattern size, which for GMC kernels is a small constant, so each match is
  O(1) with respect to both the number of patterns and the chain length.
* Non-linear patterns (repeated wildcard names, e.g. SYRK's ``X^T X``) and
  per-pattern constraints are checked at acceptance time on the collected
  bindings.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from ..algebra.expression import Expression
from ..algebra.operators import Inverse, InverseTranspose, Plus, Times, Transpose
from .patterns import Pattern, Substitution, Wildcard, is_structural_predicate

_WILDCARD_TOKEN = "*"

_OPERATOR_TYPES = (Times, Plus, Transpose, Inverse, InverseTranspose)

#: When true, :meth:`DiscriminationNet.match` routes acceptance through the
#: reference binding path (see :func:`legacy_binding`).
_LEGACY_BINDING = False


@contextmanager
def legacy_binding() -> Iterator[None]:
    """Route match acceptance through the reference (pre-optimization) path.

    The reference path re-derives the wildcard table from the pattern tree
    and builds the substitution through a chain of copies, exactly as the
    original implementation did; it is kept for differential testing and so
    the generation-time benchmark can compare against the legacy matcher.
    """
    global _LEGACY_BINDING
    previous = _LEGACY_BINDING
    _LEGACY_BINDING = True
    try:
        yield
    finally:
        _LEGACY_BINDING = previous


def _node_token(node: Expression) -> Tuple:
    """Flatten one expression node to a hashable trie token.

    Tokens are cached on the node (expressions are immutable): leaf tokens
    embed the cached structural key, and a shared operand -- e.g. a DP
    temporary appearing in many candidate splits -- is tokenized exactly
    once instead of once per match.
    """
    try:
        return node._token_cache
    except AttributeError:
        pass
    if isinstance(node, _OPERATOR_TYPES):
        token: Tuple = (type(node).__name__, len(node.children))
    else:
        token = ("leaf", type(node).__name__, node.structural_key())
    object.__setattr__(node, "_token_cache", token)
    return token


def _flatten_pattern(expression: Expression) -> Tuple[List, List[Optional[str]]]:
    """Return the token sequence of a pattern and the wildcard name per slot.

    The wildcard-name list is parallel to the token list; non-wildcard
    positions hold ``None``.
    """
    tokens: List = []
    names: List[Optional[str]] = []

    def visit(node: Expression) -> None:
        if isinstance(node, Wildcard):
            tokens.append(_WILDCARD_TOKEN)
            names.append(node.name)
            return
        tokens.append(_node_token(node))
        names.append(None)
        for child in node.children:
            visit(child)

    visit(expression)
    return tokens, names


def _flatten_subject(expression: Expression) -> Tuple[List[Expression], List[int]]:
    """Preorder node list of the subject plus the subtree size of each node.

    The subtree sizes let a wildcard edge skip a whole subtree in O(1).
    The result is cached per (immutable) node, so an operand shared by many
    candidate splits -- every DP temporary -- is flattened once, and a fresh
    product subject only concatenates its children's cached flattenings.
    """
    try:
        return expression._flat_cache
    except AttributeError:
        pass
    nodes: List[Expression] = [expression]
    sizes: List[int] = [0]
    for child in expression.children:
        child_nodes, child_sizes = _flatten_subject(child)
        nodes.extend(child_nodes)
        sizes.extend(child_sizes)
    sizes[0] = len(nodes)
    result = (nodes, sizes)
    object.__setattr__(expression, "_flat_cache", result)
    return result


@dataclass
class _AcceptEntry:
    """A pattern accepted at a trie node, with precomputed binding metadata.

    ``slot_names`` lists the wildcard name of every wildcard slot in pattern
    preorder; ``slot_predicates`` holds the per-slot wildcard predicate (or
    ``None``) and ``constraint_predicates`` the raw constraint callables.
    All of it is computed once at insertion time so that acceptance -- which
    runs for every candidate match in the GMC inner loop -- never re-walks
    the pattern tree and pays no dispatch overhead per check.
    """

    pattern: Pattern
    slot_names: Tuple[str, ...]
    slot_predicates: Tuple[Optional[Callable[[Expression], bool]], ...]
    constraint_predicates: Tuple[Callable[[Substitution], bool], ...]
    payload: object


@dataclass
class _AcceptGroup:
    """Accepted patterns sharing one wildcard slot layout.

    Kernel catalogs contain many patterns that differ only in their
    constraints (GEMM / SYMM / TRMM / ... are all ``X * Y``); grouping them
    by ``(slot_names, slot_predicates)`` lets the matcher validate the
    bindings and build the substitution *once per group* instead of once per
    pattern -- the per-pattern work shrinks to the constraint checks.
    """

    slot_names: Tuple[str, ...]
    slot_predicates: Tuple[Optional[Callable[[Expression], bool]], ...]
    entries: List[_AcceptEntry] = field(default_factory=list)


@dataclass
class _Node:
    """One trie node of the discrimination net."""

    edges: Dict[object, "_Node"] = field(default_factory=dict)
    wildcard_edge: Optional["_Node"] = None
    #: The wildcard predicate shared by *every* pattern slot routed through
    #: ``wildcard_edge``, or ``None`` when the slots disagree (or none of
    #: them carries a predicate).  When set, the matcher evaluates it once
    #: while traversing the edge and prunes the whole pattern family on
    #: failure, instead of rejecting each accepted pattern at bind time.
    wildcard_predicate: Optional[Callable[[Expression], bool]] = None
    #: False once two patterns routed different predicates through the edge.
    wildcard_predicate_shared: bool = True
    #: Patterns accepted at this node, grouped by wildcard slot layout.
    accepts: List[_AcceptGroup] = field(default_factory=list)


class DiscriminationNet:
    """Many-to-one matcher over a fixed set of patterns.

    Each pattern may carry an arbitrary *payload* (for the GMC algorithm the
    payload is the kernel the pattern belongs to); :meth:`match` yields
    ``(pattern, substitution, payload)`` triples.
    """

    def __init__(self, patterns: Sequence[Tuple[Pattern, object]] = ()) -> None:
        self._root = _Node()
        self._size = 0
        #: Bumped on every :meth:`add`; signature-keyed match caches record
        #: the value they were filled against and flush when it moves, so an
        #: extended net never serves a stale (pre-extension) kernel list.
        self.version = 0
        #: True once any pattern contains a concrete (non-wildcard) leaf.
        #: Concrete leaves match by full structural key -- including the
        #: operand *name* -- which the name-abstracting signature cannot
        #: distinguish, so caches must bypass such nets.  No stock kernel
        #: pattern has concrete leaves.
        self.has_concrete_leaf_patterns = False
        #: True once any pattern carries a wildcard predicate or constraint
        #: not marked by :func:`~repro.matching.patterns.structural_predicate`.
        #: An unmarked callable may observe details the signature abstracts
        #: away (operand names, external state), so caches must bypass such
        #: nets too.  All stock kernel constraints are marked.
        self.has_opaque_predicates = False
        for pattern, payload in patterns:
            self.add(pattern, payload)

    def __len__(self) -> int:
        return self._size

    def add(self, pattern: Pattern, payload: object = None) -> None:
        """Insert a pattern (with an optional payload) into the net."""
        tokens, names = _flatten_pattern(pattern.expression)
        self.version += 1
        if any(token != _WILDCARD_TOKEN and token[0] == "leaf" for token in tokens):
            self.has_concrete_leaf_patterns = True
        wildcards_by_name = {
            wildcard.name: wildcard
            for wildcard in pattern.expression.preorder()
            if isinstance(wildcard, Wildcard)
        }
        slot_names = tuple(name for name in names if name is not None)
        slot_predicates = tuple(
            wildcards_by_name[name].predicate for name in slot_names
        )
        if not all(
            is_structural_predicate(predicate) for predicate in slot_predicates
        ) or not all(
            is_structural_predicate(constraint.predicate)
            for constraint in pattern.constraints
        ):
            self.has_opaque_predicates = True
        node = self._root
        slot = 0
        for token in tokens:
            if token == _WILDCARD_TOKEN:
                predicate = slot_predicates[slot]
                slot += 1
                edge = node.wildcard_edge
                if edge is None:
                    edge = node.wildcard_edge = _Node()
                    edge.wildcard_predicate = predicate
                elif edge.wildcard_predicate_shared and (
                    edge.wildcard_predicate is not predicate
                ):
                    edge.wildcard_predicate = None
                    edge.wildcard_predicate_shared = False
                node = edge
            else:
                node = node.edges.setdefault(token, _Node())
        entry = _AcceptEntry(
            pattern=pattern,
            slot_names=slot_names,
            slot_predicates=slot_predicates,
            constraint_predicates=tuple(
                constraint.predicate for constraint in pattern.constraints
            ),
            payload=payload,
        )
        for group in node.accepts:
            # Tuples of callables compare by identity, which is exactly the
            # sharing criterion: same names, same predicate functions.
            if group.slot_names == slot_names and group.slot_predicates == slot_predicates:
                group.entries.append(entry)
                break
        else:
            node.accepts.append(
                _AcceptGroup(
                    slot_names=slot_names,
                    slot_predicates=slot_predicates,
                    entries=[entry],
                )
            )
        self._size += 1

    # ------------------------------------------------------------------ match
    def match(self, subject: Expression) -> Iterator[Tuple[Pattern, Substitution, object]]:
        """Yield every pattern of the net that matches *subject*."""
        nodes, sizes = _flatten_subject(subject)
        total = len(nodes)
        legacy = _LEGACY_BINDING
        prune = not legacy

        # Depth-first search over (net node, subject position, bindings).
        # ``bindings`` is the list of subject sub-expressions consumed by
        # wildcard edges, in pattern preorder order.
        stack: List[Tuple[_Node, int, Tuple[Expression, ...]]] = [(self._root, 0, ())]
        while stack:
            net_node, position, bindings = stack.pop()
            if position == total:
                if legacy:
                    for group in net_node.accepts:
                        for entry in group.entries:
                            substitution = self._bind_reference(entry, bindings)
                            if substitution is not None:
                                yield entry.pattern, substitution, entry.payload
                    continue
                for group in net_node.accepts:
                    slot_names = group.slot_names
                    if len(slot_names) != len(bindings):
                        continue
                    # Validate the shared slot layout and build the (single,
                    # immutable) substitution once for the whole group.
                    mapping: Dict[str, Expression] = {}
                    ok = True
                    for name, predicate, expr in zip(
                        slot_names, group.slot_predicates, bindings
                    ):
                        if predicate is not None and not predicate(expr):
                            ok = False
                            break
                        existing = mapping.get(name)
                        if existing is None:
                            mapping[name] = expr
                        elif existing != expr:
                            ok = False
                            break
                    if not ok:
                        continue
                    substitution = Substitution._from_owned_dict(mapping)
                    for entry in group.entries:
                        for constraint in entry.constraint_predicates:
                            if not constraint(substitution):
                                break
                        else:
                            yield entry.pattern, substitution, entry.payload
                continue
            subject_node = nodes[position]
            token = _node_token(subject_node)
            exact_next = net_node.edges.get(token)
            if exact_next is not None:
                stack.append((exact_next, position + 1, bindings))
            wildcard_edge = net_node.wildcard_edge
            if wildcard_edge is not None:
                # When every pattern slot routed through this edge carries
                # the same predicate, evaluate it here once and prune the
                # whole branch on failure (bind would reject each pattern
                # individually otherwise).  Disabled in legacy mode, which
                # reproduces the original acceptance behaviour.
                predicate = wildcard_edge.wildcard_predicate
                if prune and predicate is not None and not predicate(subject_node):
                    continue
                skip = sizes[position]
                stack.append(
                    (wildcard_edge, position + skip, bindings + (subject_node,))
                )

    def _bind_reference(
        self,
        entry: _AcceptEntry,
        bindings: Tuple[Expression, ...],
    ) -> Optional[Substitution]:
        """Reference acceptance path, kept verbatim from the original
        implementation: rebuilds the wildcard table from the pattern tree and
        extends the substitution binding by binding.

        Semantically identical to :meth:`_bind` (asserted by the
        differential tests); activated by :func:`legacy_binding` so the
        generation-time benchmark can measure the pre-optimization matcher.
        """
        pattern = entry.pattern
        slot_names = entry.slot_names
        if len(slot_names) != len(bindings):
            return None
        substitution: Optional[Substitution] = Substitution()
        wildcards_by_name = {
            node.name: node
            for node in pattern.expression.preorder()
            if isinstance(node, Wildcard)
        }
        for name, expr in zip(slot_names, bindings):
            wildcard = wildcards_by_name.get(name)
            if wildcard is not None and not wildcard.admits(expr):
                return None
            substitution = substitution.extended(name, expr)
            if substitution is None:
                return None
        if not pattern.check_constraints(substitution):
            return None
        return substitution

    def match_first(self, subject: Expression) -> Optional[Tuple[Pattern, Substitution, object]]:
        """Return an arbitrary successful match, or ``None``."""
        for result in self.match(subject):
            return result
        return None

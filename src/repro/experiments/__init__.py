"""Experiment harness: workloads, measurement, and per-figure/table scripts.

The modules in this package regenerate every table and figure of the paper's
evaluation (Section 4) plus the worked examples of Section 3; see DESIGN.md
for the experiment index and EXPERIMENTS.md for paper-vs-measured numbers.
"""

from .harness import (
    GMC_NAME,
    ExperimentResult,
    HarnessConfig,
    ProblemResult,
    StrategyResult,
    run_experiment,
    run_problem,
)
from .workload import (
    ChainGenerator,
    TestProblem,
    named_examples,
    paper_generator,
    paper_sizes,
)

__all__ = [
    "ChainGenerator",
    "TestProblem",
    "paper_generator",
    "paper_sizes",
    "named_examples",
    "HarnessConfig",
    "StrategyResult",
    "ProblemResult",
    "ExperimentResult",
    "run_problem",
    "run_experiment",
    "GMC_NAME",
]

"""Random generalized-matrix-chain workloads (paper Section 4).

The evaluation problems of the paper are generated randomly: chains of
length uniform in [3, 10]; operand sizes uniform over {50, 100, ..., 2000};
a mix of square and rectangular matrices as well as vectors; operands may be
transposed and/or inverted; and each operand may carry one of the properties
diagonal, lower triangular, upper triangular, symmetric or SPD.  The
generator below reproduces that distribution (with a configurable size grid
so the test-suite and benchmark defaults stay laptop-friendly) while
enforcing well-formedness: adjacent dimensions match, only square operands
are inverted, and square-only properties are only attached to square
operands.

Beyond random chains, :func:`jacobian_workload` generates the Solverz-style
DAG traffic the plan cache is built for: a small symbolic model (equations
``f_k = A_k G^-1 B_k x_k`` over a shared Gram matrix ``G = H P H^T``) is
differentiated per state vector (:func:`differentiate_product`), yielding
many structurally-sibling multi-assignment DAG programs whose segments all
share a handful of name-abstracted signatures.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..algebra.expression import Expression, Matrix
from ..algebra.operators import Inverse, Times
from ..algebra.properties import Property
from ..algebra.simplify import unary_decomposition, wrap_leaf

#: The property choices of Section 4 ("may have one of the following
#: properties"), including "no property".
PROPERTY_CHOICES: Tuple[Optional[Property], ...] = (
    None,
    Property.DIAGONAL,
    Property.LOWER_TRIANGULAR,
    Property.UPPER_TRIANGULAR,
    Property.SYMMETRIC,
    Property.SPD,
)


@dataclass(frozen=True)
class TestProblem:
    """One randomly generated chain problem."""

    identifier: str
    expression: Expression
    factors: Tuple[Expression, ...]
    operands: Tuple[Matrix, ...]
    seed: int

    @property
    def length(self) -> int:
        return len(self.factors)

    def __str__(self) -> str:
        return f"{self.identifier}: {self.expression}"


@dataclass
class ChainGenerator:
    """Random generator of generalized matrix chains.

    Parameters
    ----------
    min_length, max_length:
        Chain length range (paper: 3 to 10, inclusive).
    size_choices:
        The grid operand dimensions are drawn from.  The paper uses
        ``range(50, 2001, 50)``; the default here is a scaled-down grid so
        that executing every strategy on every problem stays fast.  Use
        :func:`paper_sizes` for the full-scale grid.
    vector_probability:
        Probability that a dimension is 1, which makes the adjacent operands
        vectors (the paper's problems include vectors).
    square_probability:
        Probability that a dimension repeats the previous one, making the
        operand square.  The paper's problems mix square and rectangular
        operands; square operands are required for inversion and for the
        square-only properties (triangular, symmetric, SPD).
    transpose_probability / inverse_probability:
        Probability that an operand is transposed / inverted (inversion is
        only applied to square operands).
    property_probability:
        Probability that an eligible operand carries a structural property.
    seed:
        Seed of the underlying pseudo-random generator.
    """

    min_length: int = 3
    max_length: int = 10
    size_choices: Sequence[int] = tuple(range(50, 301, 50))
    vector_probability: float = 0.10
    square_probability: float = 0.40
    transpose_probability: float = 0.25
    inverse_probability: float = 0.25
    property_probability: float = 0.60
    seed: int = 0
    _rng: random.Random = field(init=False, repr=False)
    _counter: int = field(init=False, default=0, repr=False)

    def __post_init__(self) -> None:
        if self.min_length < 2:
            raise ValueError("chains must have at least two factors")
        if self.max_length < self.min_length:
            raise ValueError("max_length must be >= min_length")
        if not self.size_choices:
            raise ValueError("size_choices must not be empty")
        self._rng = random.Random(self.seed)

    # ------------------------------------------------------------------- API
    def generate(self) -> TestProblem:
        """Generate one random, well-formed chain problem."""
        self._counter += 1
        rng = self._rng
        length = rng.randint(self.min_length, self.max_length)
        dimensions = self._random_dimensions(length)
        factors: List[Expression] = []
        operands: List[Matrix] = []
        for index in range(length):
            rows, columns = dimensions[index], dimensions[index + 1]
            factor, operand = self._random_factor(index, rows, columns)
            factors.append(factor)
            operands.append(operand)
        expression = Times(*factors)
        return TestProblem(
            identifier=f"chain{self._counter:03d}",
            expression=expression,
            factors=tuple(factors),
            operands=tuple(operands),
            seed=self.seed,
        )

    def generate_many(self, count: int) -> List[TestProblem]:
        """Generate a batch of problems (the paper uses 100)."""
        return [self.generate() for _ in range(count)]

    # ------------------------------------------------------------- internals
    def _random_dimensions(self, length: int) -> List[int]:
        rng = self._rng
        dimensions: List[int] = [rng.choice(list(self.size_choices))]
        for position in range(1, length + 1):
            interior = position < length
            if interior and rng.random() < self.vector_probability:
                dimensions.append(1)
            elif dimensions[-1] > 1 and rng.random() < self.square_probability:
                # Repeat the previous dimension: the operand at ``position - 1``
                # becomes square and is eligible for inversion and for
                # square-only properties.
                dimensions.append(dimensions[-1])
            else:
                dimensions.append(rng.choice(list(self.size_choices)))
        return dimensions

    def _random_factor(self, index: int, rows: int, columns: int) -> Tuple[Expression, Matrix]:
        rng = self._rng
        square = rows == columns and rows > 1
        transposed = rng.random() < self.transpose_probability
        inverted = square and rng.random() < self.inverse_probability
        # The factor occupies ``rows x columns`` in the chain; the declared
        # operand is transposed relative to that when the factor is transposed.
        operand_rows, operand_columns = (columns, rows) if transposed else (rows, columns)
        properties = self._random_properties(operand_rows, operand_columns, inverted)
        operand = Matrix(f"M{index}", operand_rows, operand_columns, properties)
        factor = wrap_leaf(operand, transposed, inverted)
        return factor, operand

    def _random_properties(
        self, rows: int, columns: int, inverted: bool
    ) -> Tuple[Property, ...]:
        rng = self._rng
        properties: List[Property] = []
        if rows == columns and rows > 1 and rng.random() < self.property_probability:
            choice = rng.choice([p for p in PROPERTY_CHOICES if p is not None])
            properties.append(choice)
        if inverted:
            properties.append(Property.NON_SINGULAR)
        return tuple(properties)


def paper_sizes() -> Tuple[int, ...]:
    """The full-scale operand size grid of the paper: 50, 100, ..., 2000."""
    return tuple(range(50, 2001, 50))


def paper_generator(seed: int = 0, full_scale: bool = False) -> ChainGenerator:
    """A generator configured like the paper's experiment (Section 4).

    With ``full_scale=False`` (the default) the size grid is scaled down so
    that executing all strategies on 100 chains finishes in minutes; pass
    ``full_scale=True`` to use the paper's 50..2000 grid.
    """
    sizes = paper_sizes() if full_scale else tuple(range(50, 301, 50))
    return ChainGenerator(
        min_length=3,
        max_length=10,
        size_choices=sizes,
        vector_probability=0.10,
        square_probability=0.40,
        transpose_probability=0.25,
        inverse_probability=0.25,
        property_probability=0.60,
        seed=seed,
    )


def named_examples() -> Dict[str, TestProblem]:
    """Hand-written chains from the paper's introduction and Section 4.

    These exercise the application patterns the paper motivates:
    triangular-matrix inversion, the ensemble Kalman filter, the generalized
    eigenproblem reduction, and the matrix-times-vectors tail case.
    """
    problems: Dict[str, TestProblem] = {}

    # Blocked triangular inversion: L22^-1 L21 L11^-1 L10  [Bientinesi 2008].
    n = 120
    l22 = Matrix("L22", n, n, {Property.LOWER_TRIANGULAR, Property.NON_SINGULAR})
    l21 = Matrix("L21", n, n)
    l11 = Matrix("L11", n, n, {Property.LOWER_TRIANGULAR, Property.NON_SINGULAR})
    l10 = Matrix("L10", n, 80)
    factors = (l22.I, l21, l11.I, l10)
    problems["triangular_inversion"] = TestProblem(
        identifier="triangular_inversion",
        expression=Times(*factors),
        factors=factors,
        operands=(l22, l21, l11, l10),
        seed=0,
    )

    # Ensemble Kalman filter: X S Y^T R^-1  [Rao 2017].
    xb = Matrix("Xb", 200, 50)
    s = Matrix("S", 50, 50, {Property.SPD})
    yb = Matrix("Yb", 150, 50)
    r = Matrix("R", 150, 150, {Property.SPD})
    factors = (xb, s, yb.T, r.I)
    problems["kalman_filter"] = TestProblem(
        identifier="kalman_filter",
        expression=Times(*factors),
        factors=factors,
        operands=(xb, s, yb, r),
        seed=0,
    )

    # Generalized eigenproblem reduction: L^-1 A L^-T  [Section 3.2].
    m = 150
    lower = Matrix("L", m, m, {Property.LOWER_TRIANGULAR, Property.NON_SINGULAR})
    a = Matrix("A", m, m, {Property.SYMMETRIC})
    factors = (lower.I, a, lower.invT)
    problems["generalized_eigenproblem"] = TestProblem(
        identifier="generalized_eigenproblem",
        expression=Times(*factors),
        factors=factors,
        operands=(lower, a, lower),
        seed=0,
    )

    # Matrix chain with a vector tail: M1 M2 M3 v1 v2^T  [Section 4].
    m1 = Matrix("M1", 180, 150)
    m2 = Matrix("M2", 150, 120)
    m3 = Matrix("M3", 120, 90)
    v1 = Matrix("v1", 90, 1)
    v2 = Matrix("v2", 60, 1)
    factors = (m1, m2, m3, v1, v2.T)
    problems["vector_tail"] = TestProblem(
        identifier="vector_tail",
        expression=Times(*factors),
        factors=factors,
        operands=(m1, m2, m3, v1, v2),
        seed=0,
    )

    # Tridiagonal reduction fragment: tau * v v^T A u u^T (scalars dropped).
    k = 130
    v = Matrix("v", k, 1)
    a_full = Matrix("A", k, k, {Property.SYMMETRIC})
    u = Matrix("u", k, 1)
    factors = (v, v.T, a_full, u, u.T)
    problems["tridiagonal_reduction"] = TestProblem(
        identifier="tridiagonal_reduction",
        expression=Times(*factors),
        factors=factors,
        operands=(v, a_full, u),
        seed=0,
    )

    return problems


# ---------------------------------------------------------------------------
# Jacobian DAG workload (Solverz-style plan-cache stress traffic).
# ---------------------------------------------------------------------------

def differentiate_product(
    factors: Sequence[Expression], wrt: Matrix
) -> Optional[Tuple[Expression, ...]]:
    """The Jacobian of a product chain with respect to a trailing operand.

    For a chain ``f0 * f1 * ... * f(n-1)`` that is *linear* in *wrt* with the
    occurrence in tail position (``f(n-1) is wrt``, the shape symbolic-model
    equations take: ``A G^-1 B x`` for state vector ``x``), the derivative is
    the prefix product ``f0 ... f(n-2)``.  Returns ``None`` when *wrt* does
    not occur (the zero block of a sparse Jacobian).  Occurrences that are
    not a bare tail leaf (wrapped, interior, or repeated -- a nonlinear
    dependency) raise :class:`ValueError`; this helper covers exactly the
    model shape :func:`jacobian_workload` generates, not general matrix
    calculus.
    """
    factors = tuple(factors)
    if not factors:
        return None

    def mentions(factor: Expression) -> bool:
        leaf, _, _ = (
            unary_decomposition(factor)
            if not isinstance(factor, Matrix)
            else (factor, False, False)
        )
        return leaf == wrt

    occurrences = [index for index, factor in enumerate(factors) if mentions(factor)]
    if not occurrences:
        return None
    if occurrences != [len(factors) - 1] or factors[-1] != wrt:
        raise ValueError(
            f"cannot differentiate: {wrt} must occur exactly once, as the "
            f"bare trailing factor of the product"
        )
    return factors[:-1]


@dataclass(frozen=True)
class JacobianProblem:
    """One model instance of the Jacobian workload: a DAG program.

    ``source`` is a multi-assignment DSL program: the shared Gram segment
    ``G := H * P * H^T`` followed by one Jacobian block per equation, each
    referencing ``G``.  ``targets`` lists the block targets (``J1``, ...).
    """

    identifier: str
    source: str
    targets: Tuple[str, ...]
    model_index: int

    def __str__(self) -> str:
        return f"{self.identifier}: {len(self.targets)} Jacobian blocks"


def _render_factor(factor: Expression) -> str:
    """A chain factor in DSL syntax (``X``, ``X^T``, ``X^-1``, ``X^-T``)."""
    leaf, transposed, inverted = unary_decomposition(factor)
    suffix = {(False, False): "", (True, False): "^T", (False, True): "^-1",
              (True, True): "^-T"}[(transposed, inverted)]
    return f"{leaf.name}{suffix}"


def jacobian_workload(
    models: int = 12,
    blocks: int = 6,
    *,
    outputs: int = 70,
    gram: int = 50,
    latent: int = 90,
    states: int = 40,
) -> List[JacobianProblem]:
    """Structurally-sibling Jacobian DAG programs from a symbolic model.

    Each of the *models* instances carries equations
    ``f_k := A_k * G^-1 * B_k * x_k`` (``k = 1..blocks``) over one shared
    Gram matrix ``G := H * P * H^T`` (``H``: *gram* x *latent*, ``P``: SPD,
    so ``G`` is symmetric positive semi-definite by inference).  The
    workload symbolically differentiates every equation with respect to its
    state vector (:func:`differentiate_product`) and emits the non-zero
    blocks as one multi-assignment DAG program per model.

    Every block segment shares one name-abstracted signature and every Gram
    segment another, so a warm compiler session should miss the plan cache
    roughly twice for the whole workload -- the segment-level hit rate
    approaches ``1 - 2 / (models * (blocks + 1))``.  This is the repo's
    stand-in for Solverz-style generated-module traffic, where Jacobian
    expansion of a small model yields hundreds of sibling expressions.
    """
    if models < 1 or blocks < 1:
        raise ValueError("models and blocks must be positive")
    problems: List[JacobianProblem] = []
    for m in range(models):
        h = Matrix(f"H_{m}", gram, latent)
        p = Matrix(f"P_{m}", latent, latent, {Property.SPD})
        # Placeholder leaf for the shared Gram result; the DSL parser turns
        # the name into a Reference to the ``G`` assignment, and the segment
        # layer substitutes the inferred-property result operand.
        g = Matrix("G", gram, gram)
        lines = [
            f"Matrix {h.name} ({gram}, {latent}) <>",
            f"Matrix {p.name} ({latent}, {latent}) <SPD>",
        ]
        assignments = [f"G := {h.name} * {p.name} * {h.name}^T"]
        targets: List[str] = []
        for k in range(1, blocks + 1):
            a_k = Matrix(f"A_{m}_{k}", outputs, gram)
            b_k = Matrix(f"B_{m}_{k}", gram, states)
            x_k = Matrix(f"x_{m}_{k}", states, 1)
            lines.append(f"Matrix {a_k.name} ({outputs}, {gram}) <>")
            lines.append(f"Matrix {b_k.name} ({gram}, {states}) <>")
            equation = (a_k, Inverse(g), b_k, x_k)
            block = differentiate_product(equation, x_k)
            if block is None:  # pragma: no cover - every equation has a state
                continue
            target = f"J{k}"
            targets.append(target)
            rendered = " * ".join(_render_factor(factor) for factor in block)
            assignments.append(f"{target} := {rendered}")
        source = "\n".join(lines + [""] + assignments) + "\n"
        problems.append(
            JacobianProblem(
                identifier=f"jacobian{m:03d}",
                source=source,
                targets=tuple(targets),
                model_index=m,
            )
        )
    return problems

"""The worked examples of Sections 3.2 and 3.3 of the paper.

* :func:`section32_property_example` -- the chain ``X := A^T A B`` with
  ``A`` 20x20 and ``B`` 20x15: the paper compares the solution that ignores
  the symmetry of ``A^T A`` (24000 FLOPs for the ``A (A B)``-style grouping,
  28000 FLOPs for ``(A^T A) B`` with general kernels) against the solution
  that exploits it (22000 FLOPs with SYMM, 14000 FLOPs when SYRK is also
  used), showing that properties change both kernel selection and
  parenthesization.
* :func:`section33_cost_function_example` -- the chain ``ABCDE`` with sizes
  130, 700, 383, 1340, 193, 900: the FLOP-optimal parenthesization is
  ``(((AB)C)D)E`` with 3.16e8 FLOPs while the time-optimal one is
  ``((AB)(CD))E`` with 3.32e8 FLOPs, demonstrating that FLOPs and execution
  time can disagree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping

from ..algebra.expression import Matrix
from ..algebra.operators import Times
from ..core.gmc import GMCAlgorithm
from ..core.mcp import MatrixChainDP, parenthesization_cost
from ..cost.metrics import PerformanceMetric
from ..kernels.catalog import default_catalog
from ..options import CompileOptions
from .reporting import format_table


@dataclass
class WorkedExample:
    """Structured result of a worked example plus its text rendering."""

    name: str
    data: Mapping[str, object]
    text: str

    def __str__(self) -> str:
        return self.text


def section32_property_example(n: int = 20, m: int = 15) -> WorkedExample:
    """Reproduce the FLOP counts of the ``X := A^T A B`` example (Section 3.2)."""
    a = Matrix("A", n, n)
    b = Matrix("B", n, m)
    expression = Times(a.T, a, b)

    # Solution 1 (paper): W := A B, X := A^T W -- two general products.
    right_first = 2.0 * n * n * m + 2.0 * n * n * m

    # Solution 2a (paper): W := A^T A as GEMM, X := W B as GEMM.
    left_first_general = 2.0 * n ** 3 + 2.0 * n * n * m

    # Solution 2b (paper): W := A^T A as GEMM, X := W B as SYMM (half the FLOPs).
    left_first_symm = 2.0 * n ** 3 + float(n) * n * m

    # Solution 2c (paper's note): W := A^T A as SYRK, X := W B as SYMM.
    left_first_syrk = float(n) ** 3 + float(n) * n * m

    # What the GMC algorithm actually chooses, with and without properties.
    gmc_with_properties = GMCAlgorithm().solve(expression)
    gmc_without_properties = GMCAlgorithm(
        CompileOptions(catalog=default_catalog(include_specialized=False))
    ).solve(expression)

    data: Dict[str, object] = {
        "right_first_general": right_first,
        "left_first_general": left_first_general,
        "left_first_symm": left_first_symm,
        "left_first_syrk": left_first_syrk,
        "gmc_flops": gmc_with_properties.total_flops,
        "gmc_parenthesization": gmc_with_properties.parenthesization(),
        "gmc_kernels": gmc_with_properties.kernel_sequence(),
        "gmc_generic_flops": gmc_without_properties.total_flops,
        "gmc_generic_parenthesization": gmc_without_properties.parenthesization(),
        "paper_values": {"right_first": 24000.0, "left_first_general": 28000.0, "left_first_symm": 22000.0},
    }
    table = format_table(
        ["solution", "FLOPs", "paper"],
        [
            ["A^T (A B), two GEMMs", right_first, 24000],
            ["(A^T A) B, two GEMMs", left_first_general, 28000],
            ["(A^T A) B, GEMM + SYMM", left_first_symm, 22000],
            ["(A^T A) B, SYRK + SYMM", left_first_syrk, "(note: half)"],
            [
                f"GMC with properties: {data['gmc_parenthesization']}",
                data["gmc_flops"],
                "<= 22000",
            ],
            [
                f"GMC generic kernels: {data['gmc_generic_parenthesization']}",
                data["gmc_generic_flops"],
                "24000",
            ],
        ],
    )
    text = f"Section 3.2 example: X := A^T A B with n={n}, m={m}\n" + table
    return WorkedExample(name="section32", data=data, text=text)


#: The operand sizes of the Section 3.3 example (from left to right).
SECTION33_SIZES = (130, 700, 383, 1340, 193, 900)


def section33_cost_function_example() -> WorkedExample:
    """Reproduce the FLOPs-vs-time example for ``ABCDE`` (Section 3.3)."""
    sizes = SECTION33_SIZES
    dp = MatrixChainDP(sizes)
    flop_optimal_tree = dp.tree()
    flop_optimal_cost = dp.optimal_cost

    # The time-optimal parenthesization reported by the paper: ((AB)(CD))E.
    time_optimal_tree = (((0, 1), (2, 3)), 4)
    time_optimal_flops = parenthesization_cost(time_optimal_tree, sizes)

    matrices = [Matrix(f"M{i}", sizes[i], sizes[i + 1]) for i in range(5)]
    expression = Times(*matrices)
    gmc_flops_solution = GMCAlgorithm(CompileOptions(metric="flops")).solve(expression)
    gmc_time_solution = GMCAlgorithm(CompileOptions(metric="time")).solve(expression)
    model = PerformanceMetric()

    data: Dict[str, object] = {
        "sizes": sizes,
        "flop_optimal_cost": flop_optimal_cost,
        "flop_optimal_parenthesization": dp.parenthesization(["A", "B", "C", "D", "E"]),
        "time_optimal_flops_paper": 3.32e8,
        "time_optimal_flops": time_optimal_flops,
        "gmc_flops_metric_parenthesization": gmc_flops_solution.parenthesization(),
        "gmc_time_metric_parenthesization": gmc_time_solution.parenthesization(),
        "gmc_flops": gmc_flops_solution.total_flops,
        "paper_flop_optimal": 3.16e8,
    }
    table = format_table(
        ["quantity", "value", "paper"],
        [
            ["FLOP-optimal parenthesization", data["flop_optimal_parenthesization"], "(((AB)C)D)E"],
            ["FLOP-optimal cost", flop_optimal_cost, "3.16e8"],
            ["FLOPs of ((AB)(CD))E", time_optimal_flops, "3.32e8"],
            ["GMC (flops metric)", data["gmc_flops_metric_parenthesization"], "(((AB)C)D)E"],
            ["GMC (time metric)", data["gmc_time_metric_parenthesization"], "((AB)(CD))E"],
        ],
    )
    note = (
        "note: the paper's time-optimal parenthesization differs because of cache\n"
        "effects between consecutive kernels, which the roofline model does not\n"
        "capture (performance is not composable; see Section 3.3 / EXPERIMENTS.md)."
    )
    text = "Section 3.3 example: ABCDE, FLOPs vs. execution time\n" + table + "\n" + note
    return WorkedExample(name="section33", data=data, text=text)


def completeness_example() -> WorkedExample:
    """Reproduce the completeness discussion of Section 3.4.

    Without a kernel for ``X^-1 Y^-1``, the chain ``A^-1 B^-1 C`` is still
    computable (solve two linear systems right to left), whereas the length-2
    chain ``A^-1 B^-1`` is not.
    """
    n = 50
    a = Matrix("A", n, n)
    b = Matrix("B", n, n)
    c = Matrix("C", n, 30)
    catalog = default_catalog(include_combined_inverse=False)
    gmc = GMCAlgorithm(CompileOptions(catalog=catalog))

    three = gmc.solve(Times(a.I, b.I, c))
    two = gmc.solve(Times(a.I, b.I))
    with_kernel = GMCAlgorithm().solve(Times(a.I, b.I))

    data = {
        "three_factor_computable": three.computable,
        "three_factor_parenthesization": three.parenthesization() if three.computable else None,
        "three_factor_kernels": three.kernel_sequence() if three.computable else [],
        "two_factor_computable": two.computable,
        "two_factor_with_gesv2_computable": with_kernel.computable,
    }
    table = format_table(
        ["chain", "catalog", "computable", "solution"],
        [
            [
                "A^-1 B^-1 C",
                "without X^-1 Y^-1 kernel",
                three.computable,
                data["three_factor_parenthesization"] or "-",
            ],
            ["A^-1 B^-1", "without X^-1 Y^-1 kernel", two.computable, "-"],
            ["A^-1 B^-1", "with X^-1 Y^-1 kernel (GESV2)", with_kernel.computable, with_kernel.parenthesization() if with_kernel.computable else "-"],
        ],
    )
    text = "Section 3.4 completeness example\n" + table
    return WorkedExample(name="completeness", data=data, text=text)

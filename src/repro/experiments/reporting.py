"""Plain-text reporting helpers: ASCII bar charts, tables and CSV export.

Matplotlib is not available in the offline environment, so figures are
rendered as ASCII charts and as CSV files that can be plotted elsewhere.
"""

from __future__ import annotations

import csv
import io
import math
from typing import Dict, List, Mapping, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    float_format: str = "{:.4g}",
) -> str:
    """Render a simple fixed-width text table."""
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered: List[str] = []
        for value in row:
            if isinstance(value, float):
                if math.isinf(value):
                    rendered.append("inf")
                elif math.isnan(value):
                    rendered.append("-")
                else:
                    rendered.append(float_format.format(value))
            else:
                rendered.append(str(value))
        rendered_rows.append(rendered)
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    lines.append("  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def bar_chart(
    values: Mapping[str, float],
    title: str = "",
    width: int = 50,
    value_format: str = "{:.2f}",
) -> str:
    """Render a horizontal ASCII bar chart (used for the Fig. 8 reproduction)."""
    lines: List[str] = []
    if title:
        lines.append(title)
    finite = [value for value in values.values() if math.isfinite(value)]
    maximum = max(finite) if finite else 1.0
    label_width = max((len(label) for label in values), default=0)
    for label, value in values.items():
        if not math.isfinite(value):
            bar = "?"
            text = "inf"
        else:
            bar = "#" * max(1, int(round(width * value / maximum))) if maximum > 0 else ""
            text = value_format.format(value)
        lines.append(f"{label.ljust(label_width)} | {bar} {text}")
    return "\n".join(lines)


def series_chart(
    rows: Sequence[Mapping[str, float]],
    series: Sequence[str],
    value_key_format: str = "{:.3g}",
    height: int = 18,
    log_scale: bool = True,
) -> str:
    """Render several series (one column per problem) as an ASCII scatter plot.

    Used for the Fig. 9 reproduction: problems on the x axis (sorted by the
    GMC time), times on the (logarithmic) y axis, one character per series.
    """
    markers = "GabcdefghijklmnopqrstuvwxyZ"
    points: Dict[str, List[float]] = {name: [] for name in series}
    for row in rows:
        for name in series:
            value = row.get(name, float("nan"))
            points[name].append(value)
    finite = [
        value
        for values in points.values()
        for value in values
        if isinstance(value, float) and math.isfinite(value) and value > 0
    ]
    if not finite:
        return "(no data)"
    low, high = min(finite), max(finite)
    if log_scale:
        low, high = math.log10(low), math.log10(max(high, low * 1.0000001))
    span = max(high - low, 1e-12)
    columns = len(rows)
    grid = [[" "] * columns for _ in range(height)]
    for series_index, name in enumerate(series):
        marker = markers[series_index % len(markers)]
        for column, value in enumerate(points[name]):
            if not (isinstance(value, float) and math.isfinite(value) and value > 0):
                continue
            position = math.log10(value) if log_scale else value
            level = int(round((position - low) / span * (height - 1)))
            level = min(max(level, 0), height - 1)
            row_index = height - 1 - level
            if grid[row_index][column] == " ":
                grid[row_index][column] = marker
    lines = ["".join(row) for row in grid]
    legend = ", ".join(
        f"{markers[i % len(markers)]}={name}" for i, name in enumerate(series)
    )
    axis = (
        f"y: {'log10 ' if log_scale else ''}time in "
        f"[{value_key_format.format(10 ** low if log_scale else low)}, "
        f"{value_key_format.format(10 ** high if log_scale else high)}] s; "
        f"x: {columns} problems sorted by GMC time"
    )
    return "\n".join(lines + [axis, "legend: " + legend])


def to_csv(
    rows: Sequence[Mapping[str, object]],
    fieldnames: Optional[Sequence[str]] = None,
) -> str:
    """Serialize result rows as CSV text."""
    if not rows:
        return ""
    if fieldnames is None:
        fieldnames = list(rows[0].keys())
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(fieldnames), extrasaction="ignore")
    writer.writeheader()
    for row in rows:
        writer.writerow(dict(row))
    return buffer.getvalue()


def write_csv(path: str, rows: Sequence[Mapping[str, object]]) -> None:
    """Write result rows to a CSV file."""
    text = to_csv(rows)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)

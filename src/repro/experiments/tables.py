"""Reproduction of the paper's tables.

* :func:`table1` -- Table 1: example kernel patterns, constraints and costs,
  generated from the actual kernel catalog.
* :func:`table2` -- Table 2: the implementations of ``A^-1 B C^T`` (A SPD,
  C lower triangular) produced by the GMC algorithm and by each baseline
  strategy, rendered as kernel-call sequences, together with the literal
  source snippets the paper lists for each library.

``python -m repro.experiments.tables table1`` / ``table2`` prints them.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from ..algebra.expression import Matrix
from ..algebra.properties import Property
from ..baselines.registry import BASELINE_STRATEGIES, build_gmc_program
from ..codegen.julia import julia_call_sequence
from ..kernels.catalog import default_catalog
from .reporting import format_table


@dataclass
class TableResult:
    """A reproduced table: structured rows plus a plain-text rendering."""

    name: str
    rows: List[Mapping[str, object]]
    text: str

    def __str__(self) -> str:
        return self.text


#: The rows of the paper's Table 1: (family, pattern, constraint, cost).
_TABLE1_PAPER_ROWS = (
    ("GEMM", "X Y", "-", "2mnk"),
    ("TRMM", "X Y", "is_lower_triangular(X)", "m^2 n"),
    ("SYMM", "X Y", "is_symmetric(X)", "m^2 n"),
    ("TRSM", "X^-1 Y", "is_lower_triangular(X)", "m^2 n"),
    ("SYRK", "X^T X", "-", "m^2 k"),
)

#: Representative kernel ids in this repository's catalog for each Table 1 row.
_TABLE1_KERNEL_IDS = {
    "GEMM": "gemm_nn",
    "TRMM": "trmm_l_lower_nn",
    "SYMM": "symm_l_n",
    "TRSM": "trsm_lower_l_in",
    "SYRK": "syrk_t",
}


def table1() -> TableResult:
    """Table 1: example kernel patterns, constraints and costs."""
    catalog = default_catalog()
    rows: List[Dict[str, object]] = []
    m, n, k = 1000, 800, 600
    x_general = Matrix("X", m, k)
    y_general = Matrix("Y", k, n)
    for family, pattern_text, constraint_text, cost_text in _TABLE1_PAPER_ROWS:
        kernel = catalog.by_id(_TABLE1_KERNEL_IDS[family])
        constraints = ", ".join(c.description for c in kernel.pattern.constraints) or "-"
        rows.append(
            {
                "name": family,
                "pattern": str(kernel.pattern.expression),
                "paper_pattern": pattern_text,
                "constraints": constraints,
                "paper_constraints": constraint_text,
                "cost": cost_text,
                "variants_in_catalog": len(catalog.by_family(family)),
            }
        )
    del x_general, y_general, m, n, k
    text = "Table 1: examples of patterns for BLAS kernels\n" + format_table(
        ["Name", "Pattern", "Constraints", "Cost", "Catalog variants"],
        [
            [
                row["name"],
                row["pattern"],
                row["constraints"],
                row["cost"],
                row["variants_in_catalog"],
            ]
            for row in rows
        ],
    )
    return TableResult(name="table1", rows=rows, text=text)


#: The literal implementations listed in the paper's Table 2.
_TABLE2_PAPER_IMPLEMENTATIONS = {
    "GMC": "trmm!('R','L','T','N',1.0,C,B) posv!('L',A,B)",
    "Jl n": "inv(A)*B*C'",
    "Jl r": "(A\\B)*C'",
    "Arma n": "arma::inv_sympd(A)*B*(C).t()",
    "Arma r": "arma::solve(A, B)*C.t()",
    "Eig n": "A.inverse()*B*C.transpose()",
    "Eig r": "A.llt().solve(B)*C.transpose()",
    "Bl n": "blaze::inv(A)*B*blaze::trans(C)",
    "Mat n": "inv(A)*B*C'",
    "Mat r": "(A\\B)*C'",
}


def table2(n: int = 1000, m: int = 800, k: int = 600) -> TableResult:
    """Table 2: implementations of ``A^-1 B C^T`` per library.

    For every strategy the table reports the kernel sequence this
    reproduction generates, its FLOP count, and the literal source snippet
    the paper lists for that library.
    """
    a = Matrix("A", n, n, {Property.SPD})
    b = Matrix("B", n, m)
    c = Matrix("C", m, m, {Property.LOWER_TRIANGULAR, Property.NON_SINGULAR})
    expression = a.I * b * c.T

    rows: List[Dict[str, object]] = []
    gmc_program = build_gmc_program(expression)
    rows.append(
        {
            "name": "GMC",
            "kernels": " ; ".join(julia_call_sequence(gmc_program)),
            "kernel_families": " -> ".join(gmc_program.kernel_names),
            "flops": gmc_program.total_flops,
            "paper_implementation": _TABLE2_PAPER_IMPLEMENTATIONS["GMC"],
        }
    )
    for strategy in BASELINE_STRATEGIES:
        program = strategy.build_program(expression)
        rows.append(
            {
                "name": strategy.label,
                "kernels": " ; ".join(julia_call_sequence(program)),
                "kernel_families": " -> ".join(program.kernel_names),
                "flops": program.total_flops,
                "paper_implementation": _TABLE2_PAPER_IMPLEMENTATIONS.get(strategy.label, ""),
            }
        )
    text = (
        f"Table 2: implementations of A^-1 B C^T (A {n}x{n} SPD, "
        f"B {n}x{m}, C {m}x{m} lower triangular)\n"
        + format_table(
            ["Name", "Kernel sequence", "GFLOPs", "Paper implementation"],
            [
                [
                    row["name"],
                    row["kernel_families"],
                    float(row["flops"]) / 1e9,
                    row["paper_implementation"],
                ]
                for row in rows
            ],
        )
    )
    return TableResult(name="table2", rows=rows, text=text)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description="Reproduce the paper's tables")
    parser.add_argument("table", choices=["table1", "table2", "all"])
    args = parser.parse_args(argv)
    if args.table in ("table1", "all"):
        print(table1().text)
        print()
    if args.table in ("table2", "all"):
        print(table2().text)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""The experiment harness: run every strategy on every problem and aggregate.

The harness reproduces the measurement procedure of Section 4: for each test
problem, the GMC algorithm and each baseline strategy produce a kernel
program; each program is costed with the FLOP metric and the performance
model, optionally executed (and timed) on property-respecting random
operands, and validated against a direct reference evaluation.  The
aggregation helpers compute the quantities the paper reports: average
speedup per baseline (Fig. 8), per-problem execution times (Fig. 9), the
fraction of problems where GMC is fastest, worst-case ratios, and GMC
generation-time statistics.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..baselines.registry import BASELINE_STRATEGIES, build_gmc_program
from ..baselines.strategy import EvaluationStrategy, StrategyError
from ..core.gmc import GMCAlgorithm
from ..cost.metrics import CostMetric, FlopCount, PerformanceMetric
from ..options import CompileOptions
from ..kernels.catalog import KernelCatalog, default_catalog
from ..kernels.kernel import Program
from ..runtime.executor import Executor
from ..runtime.operands import instantiate_expression
from ..runtime.reference import allclose
from .workload import TestProblem

#: Name used for the GMC "strategy" in result tables.
GMC_NAME = "GMC"


@dataclass
class StrategyResult:
    """Result of one strategy on one problem."""

    strategy: str
    label: str
    flops: float
    modeled_time: float
    measured_time: Optional[float] = None
    kernel_sequence: Tuple[str, ...] = ()
    correct: Optional[bool] = None
    failed: bool = False
    error: str = ""

    @property
    def time(self) -> float:
        """Measured time when available, modeled time otherwise."""
        if self.measured_time is not None:
            return self.measured_time
        return self.modeled_time


@dataclass
class ProblemResult:
    """Results of every strategy on one problem."""

    problem: TestProblem
    generation_time: float
    results: Dict[str, StrategyResult] = field(default_factory=dict)

    @property
    def gmc(self) -> StrategyResult:
        return self.results[GMC_NAME]

    def speedup_over(self, strategy: str, use_measured: bool = False) -> Optional[float]:
        """Speedup of the GMC program over a baseline on this problem."""
        baseline = self.results.get(strategy)
        if baseline is None or baseline.failed or self.gmc.failed:
            return None
        gmc_time = self.gmc.measured_time if use_measured else self.gmc.modeled_time
        other_time = baseline.measured_time if use_measured else baseline.modeled_time
        if gmc_time is None or other_time is None or gmc_time <= 0.0:
            return None
        return other_time / gmc_time

    def fastest_strategy(self, use_measured: bool = False) -> str:
        """Name of the strategy with the smallest (measured or modeled) time."""
        best_name = ""
        best_time = float("inf")
        for name, result in self.results.items():
            if result.failed:
                continue
            value = result.measured_time if use_measured else result.modeled_time
            if value is None:
                continue
            if value < best_time:
                best_time = value
                best_name = name
        return best_name


@dataclass
class ExperimentResult:
    """Aggregated results over a batch of problems."""

    problems: List[ProblemResult] = field(default_factory=list)
    strategies: Tuple[str, ...] = ()
    labels: Mapping[str, str] = field(default_factory=dict)

    # --------------------------------------------------------------- figures
    def average_speedups(self, use_measured: bool = False) -> Dict[str, float]:
        """Average speedup of GMC over every baseline (the bars of Fig. 8)."""
        speedups: Dict[str, float] = {}
        for strategy in self.strategies:
            if strategy == GMC_NAME:
                continue
            values = [
                problem.speedup_over(strategy, use_measured=use_measured)
                for problem in self.problems
            ]
            values = [value for value in values if value is not None]
            if values:
                speedups[strategy] = sum(values) / len(values)
        return speedups

    def execution_time_table(self, use_measured: bool = False) -> List[Dict[str, float]]:
        """Per-problem times of every strategy, sorted by the GMC time (Fig. 9)."""
        rows: List[Dict[str, float]] = []
        for problem in self.problems:
            row: Dict[str, float] = {"problem": problem.problem.identifier}
            for name, result in problem.results.items():
                value = result.measured_time if use_measured else result.modeled_time
                row[name] = float("nan") if (value is None or result.failed) else value
            rows.append(row)
        rows.sort(key=lambda row: row.get(GMC_NAME, float("inf")))
        return rows

    def fraction_gmc_fastest(self, use_measured: bool = False) -> float:
        """Fraction of problems where the GMC program is the fastest (paper: 86%)."""
        if not self.problems:
            return 0.0
        wins = sum(
            1
            for problem in self.problems
            if problem.fastest_strategy(use_measured=use_measured) == GMC_NAME
        )
        return wins / len(self.problems)

    def worst_case_ratio(self, use_measured: bool = False) -> float:
        """Worst ratio of GMC time to the best strategy's time (paper: <= 1.66)."""
        worst = 1.0
        for problem in self.problems:
            gmc = problem.gmc
            if gmc.failed:
                continue
            gmc_time = gmc.measured_time if use_measured else gmc.modeled_time
            best = min(
                (
                    (result.measured_time if use_measured else result.modeled_time)
                    for result in problem.results.values()
                    if not result.failed
                ),
                default=None,
            )
            if gmc_time and best and best > 0.0:
                worst = max(worst, gmc_time / best)
        return worst

    def generation_time_statistics(self) -> Dict[str, float]:
        """GMC solution-generation time statistics (paper: 0.03 s avg, < 0.07 s max)."""
        times = [problem.generation_time for problem in self.problems]
        if not times:
            return {"mean": 0.0, "max": 0.0, "min": 0.0}
        return {
            "mean": statistics.mean(times),
            "max": max(times),
            "min": min(times),
        }

    def correctness_summary(self) -> Dict[str, Tuple[int, int]]:
        """Per strategy: (number validated correct, number validated)."""
        summary: Dict[str, Tuple[int, int]] = {}
        for strategy in self.strategies:
            checked = 0
            correct = 0
            for problem in self.problems:
                result = problem.results.get(strategy)
                if result is None or result.correct is None:
                    continue
                checked += 1
                correct += int(result.correct)
            summary[strategy] = (correct, checked)
        return summary


@dataclass
class HarnessConfig:
    """Configuration of one harness run."""

    metric: CostMetric = field(default_factory=FlopCount)
    performance_model: PerformanceMetric = field(default_factory=PerformanceMetric)
    catalog: Optional[KernelCatalog] = None
    execute: bool = False
    validate: bool = False
    repetitions: int = 1
    seed: int = 0


def run_problem(
    problem: TestProblem,
    strategies: Sequence[EvaluationStrategy] = BASELINE_STRATEGIES,
    config: Optional[HarnessConfig] = None,
) -> ProblemResult:
    """Run GMC plus every baseline strategy on one problem."""
    config = config or HarnessConfig()
    catalog = config.catalog if config.catalog is not None else default_catalog()
    environment = None
    if config.execute or config.validate:
        environment = instantiate_expression(problem.expression, seed=config.seed)

    start = time.perf_counter()
    gmc_solution = GMCAlgorithm(
        CompileOptions(
            metric=config.metric if config.metric is not None else "flops",
            catalog=catalog,
        )
    ).solve(problem.expression)
    generation_time = time.perf_counter() - start

    problem_result = ProblemResult(problem=problem, generation_time=generation_time)

    programs: List[Tuple[str, str, Optional[Program], str]] = []
    if gmc_solution.computable:
        programs.append((GMC_NAME, GMC_NAME, gmc_solution.program(), ""))
    else:
        programs.append((GMC_NAME, GMC_NAME, None, "chain not computable with the catalog"))
    for strategy in strategies:
        try:
            program = strategy.build_program(problem.expression, catalog=catalog)
            programs.append((strategy.name, strategy.label, program, ""))
        except StrategyError as error:
            programs.append((strategy.name, strategy.label, None, str(error)))

    for name, label, program, error in programs:
        if program is None:
            problem_result.results[name] = StrategyResult(
                strategy=name,
                label=label,
                flops=float("inf"),
                modeled_time=float("inf"),
                failed=True,
                error=error,
            )
            continue
        modeled_time = sum(
            config.performance_model.kernel_cost(call.kernel, call.substitution)
            for call in program.calls
        )
        result = StrategyResult(
            strategy=name,
            label=label,
            flops=program.total_flops,
            modeled_time=modeled_time,
            kernel_sequence=program.kernel_names,
        )
        if environment is not None:
            result.measured_time, result.correct = _execute_and_validate(
                program, problem, environment, config
            )
        problem_result.results[name] = result
    return problem_result


def _execute_and_validate(
    program: Program,
    problem: TestProblem,
    environment: Mapping[str, np.ndarray],
    config: HarnessConfig,
) -> Tuple[Optional[float], Optional[bool]]:
    measured: Optional[float] = None
    correct: Optional[bool] = None
    try:
        samples = []
        value = None
        for _ in range(max(1, config.repetitions)):
            executor = Executor()
            start = time.perf_counter()
            value = executor.execute(program, environment)
            samples.append(time.perf_counter() - start)
        if config.execute:
            measured = min(samples)
        if config.validate and value is not None:
            correct = allclose(problem.expression, environment, value, rtol=1e-6, atol=1e-6)
    except Exception:  # pragma: no cover - defensive: execution errors are recorded
        measured = None
        correct = False
    return measured, correct


def run_experiment(
    problems: Sequence[TestProblem],
    strategies: Sequence[EvaluationStrategy] = BASELINE_STRATEGIES,
    config: Optional[HarnessConfig] = None,
) -> ExperimentResult:
    """Run the full experiment over a batch of problems."""
    config = config or HarnessConfig()
    names = [GMC_NAME] + [strategy.name for strategy in strategies]
    labels = {GMC_NAME: GMC_NAME}
    labels.update({strategy.name: strategy.label for strategy in strategies})
    result = ExperimentResult(strategies=tuple(names), labels=labels)
    for problem in problems:
        result.problems.append(run_problem(problem, strategies=strategies, config=config))
    return result

"""Reproduction of the paper's figures (Fig. 8 and Fig. 9) and the Section 4
generation-time statistics.

Each ``figure*`` function runs the experiment of Section 4 -- 100 random
chains, GMC plus the nine baseline strategies -- and returns the aggregated
numbers together with a plain-text rendering.  ``python -m
repro.experiments.figures fig8`` (or ``fig9`` / ``gentime`` / ``all``) prints
them from the command line; the pytest benchmarks under ``benchmarks/`` call
the same functions with smaller problem counts.
"""

from __future__ import annotations

import argparse
import statistics
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from ..baselines.registry import BASELINE_STRATEGIES
from ..core.gmc import GMCAlgorithm
from ..cost.metrics import FlopCount
from .harness import GMC_NAME, ExperimentResult, HarnessConfig, run_experiment
from .reporting import bar_chart, format_table, series_chart, to_csv
from .workload import TestProblem, paper_generator


@dataclass
class FigureResult:
    """A reproduced figure: the numbers plus a plain-text rendering."""

    name: str
    data: Mapping[str, object]
    text: str
    experiment: Optional[ExperimentResult] = None

    def __str__(self) -> str:
        return self.text


def _default_problems(
    count: int, seed: int, full_scale: bool
) -> List[TestProblem]:
    generator = paper_generator(seed=seed, full_scale=full_scale)
    return generator.generate_many(count)


def _run(
    problems: Sequence[TestProblem],
    execute: bool,
    validate: bool,
    seed: int,
) -> ExperimentResult:
    config = HarnessConfig(
        metric=FlopCount(),
        execute=execute,
        validate=validate,
        repetitions=1,
        seed=seed,
    )
    return run_experiment(problems, strategies=BASELINE_STRATEGIES, config=config)


def figure8(
    count: int = 100,
    seed: int = 0,
    execute: bool = False,
    full_scale: bool = False,
    experiment: Optional[ExperimentResult] = None,
) -> FigureResult:
    """Fig. 8: average speedup of GMC-generated code over every baseline.

    The paper reports speedups between 6 and 15 ("on average by a factor of
    about 9"); the reproduction reports the same statistic over the modeled
    execution time (and the measured time when ``execute=True``).
    """
    if experiment is None:
        problems = _default_problems(count, seed, full_scale)
        experiment = _run(problems, execute=execute, validate=False, seed=seed)
    speedups = experiment.average_speedups(use_measured=execute)
    labeled = {experiment.labels[name]: value for name, value in speedups.items()}
    values = [value for value in speedups.values() if value == value]
    overall = statistics.mean(values) if values else float("nan")
    chart = bar_chart(
        labeled,
        title=(
            "Figure 8: average speedup of GMC-generated code over other libraries "
            f"({'measured' if execute else 'modeled'} time, {len(experiment.problems)} chains)"
        ),
    )
    text = chart + f"\noverall average speedup: {overall:.2f}"
    return FigureResult(
        name="figure8",
        data={"speedups": speedups, "labels": labeled, "overall_average": overall},
        text=text,
        experiment=experiment,
    )


def figure9(
    count: int = 100,
    seed: int = 0,
    execute: bool = False,
    full_scale: bool = False,
    experiment: Optional[ExperimentResult] = None,
) -> FigureResult:
    """Fig. 9: per-problem execution time of every strategy, sorted by GMC.

    Also reports the accompanying statistics of Section 4: the fraction of
    problems where GMC is fastest (paper: 86%), the worst-case ratio against
    the best strategy (paper: 1.66) and the fraction of problems where some
    baseline is more than 10x slower.
    """
    if experiment is None:
        problems = _default_problems(count, seed, full_scale)
        experiment = _run(problems, execute=execute, validate=False, seed=seed)
    rows = experiment.execution_time_table(use_measured=execute)
    label_rows = [
        {
            **{"problem": row["problem"]},
            **{
                experiment.labels[name]: row[name]
                for name in experiment.strategies
                if name in row
            },
        }
        for row in rows
    ]
    series_names = [experiment.labels[name] for name in experiment.strategies]
    chart = series_chart(label_rows, series_names)
    fraction_fastest = experiment.fraction_gmc_fastest(use_measured=execute)
    worst_ratio = experiment.worst_case_ratio(use_measured=execute)
    ten_x = _fraction_much_slower(experiment, factor=10.0, use_measured=execute)
    summary = format_table(
        ["statistic", "value", "paper"],
        [
            ["GMC fastest on", f"{fraction_fastest * 100:.0f}% of problems", "86%"],
            ["worst GMC / best ratio", f"{worst_ratio:.2f}", "1.66"],
            ["baselines >10x slower on", f"{ten_x * 100:.0f}% of problems", ">=10%"],
        ],
    )
    text = (
        f"Figure 9: execution times of all test problems "
        f"({'measured' if execute else 'modeled'}, sorted by GMC time)\n"
        + chart
        + "\n\n"
        + summary
    )
    return FigureResult(
        name="figure9",
        data={
            "rows": rows,
            "fraction_gmc_fastest": fraction_fastest,
            "worst_case_ratio": worst_ratio,
            "fraction_baseline_10x_slower": ten_x,
        },
        text=text,
        experiment=experiment,
    )


def _fraction_much_slower(
    experiment: ExperimentResult, factor: float, use_measured: bool
) -> float:
    """Fraction of problems on which at least one baseline is ``factor`` times
    slower than the GMC program."""
    if not experiment.problems:
        return 0.0
    count = 0
    for problem in experiment.problems:
        gmc_time = (
            problem.gmc.measured_time if use_measured else problem.gmc.modeled_time
        )
        if not gmc_time:
            continue
        for name, result in problem.results.items():
            if name == GMC_NAME or result.failed:
                continue
            value = result.measured_time if use_measured else result.modeled_time
            if value is not None and value > factor * gmc_time:
                count += 1
                break
    return count / len(experiment.problems)


def generation_time(
    count: int = 100,
    seed: int = 0,
    full_scale: bool = True,
) -> FigureResult:
    """Section 4 generation-time claim: solving a chain takes milliseconds.

    The paper reports an average of 0.03 s and a maximum below 0.07 s, and
    stresses that generation time does not depend on matrix sizes; the
    reproduction therefore defaults to the full-scale size grid.
    """
    problems = _default_problems(count, seed, full_scale)
    algorithm = GMCAlgorithm()
    times: List[float] = []
    lengths: List[int] = []
    for problem in problems:
        solution = algorithm.solve(problem.expression)
        times.append(solution.generation_time)
        lengths.append(problem.length)
    data: Dict[str, object] = {
        "mean": statistics.mean(times),
        "max": max(times),
        "min": min(times),
        "count": len(times),
    }
    table = format_table(
        ["statistic", "value", "paper"],
        [
            ["mean generation time", f"{data['mean'] * 1e3:.2f} ms", "30 ms"],
            ["max generation time", f"{data['max'] * 1e3:.2f} ms", "< 70 ms"],
            ["chains", len(times), 100],
            ["mean chain length", f"{statistics.mean(lengths):.1f}", "6.5"],
        ],
    )
    text = "Generation-time statistics of the GMC algorithm\n" + table
    return FigureResult(name="generation_time", data=data, text=text)


def export_figure9_csv(result: FigureResult) -> str:
    """CSV export of the Fig. 9 rows (problem x strategy time matrix)."""
    rows = result.data.get("rows", [])
    return to_csv(list(rows))


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description="Reproduce the paper's figures")
    parser.add_argument("figure", choices=["fig8", "fig9", "gentime", "all"])
    parser.add_argument("--count", type=int, default=100, help="number of random chains")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--execute", action="store_true", help="measure NumPy execution instead of modeled time"
    )
    parser.add_argument(
        "--paper-sizes",
        action="store_true",
        help="use the paper's full 50..2000 operand size grid",
    )
    args = parser.parse_args(argv)
    experiment: Optional[ExperimentResult] = None
    if args.figure in ("fig8", "fig9", "all"):
        problems = _default_problems(args.count, args.seed, args.paper_sizes)
        experiment = _run(problems, execute=args.execute, validate=False, seed=args.seed)
    if args.figure in ("fig8", "all"):
        print(figure8(execute=args.execute, experiment=experiment).text)
        print()
    if args.figure in ("fig9", "all"):
        print(figure9(execute=args.execute, experiment=experiment).text)
        print()
    if args.figure in ("gentime", "all"):
        print(generation_time(count=args.count, seed=args.seed).text)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""The tail-case analysis of Section 4.

The paper inspects the test cases where the GMC-generated code is *not* the
fastest and identifies two patterns:

* chains of the form ``M1 ... Mn v1 v2^T`` (a matrix prefix applied to a
  vector, followed by an outer product), where Armadillo, Blaze and Eigen
  happen to produce the same kernel sequence as GMC but ship a faster outer
  product;
* chains where left-to-right evaluation happens to be optimal (or nearly
  optimal) in FLOPs, so every implementation uses essentially the same
  parenthesization and only kernel implementation quality differs.

This module generates those two chain families and reports, per strategy,
FLOPs and the kernel sequences, verifying the structural claims: on the
vector-tail family the heuristic/vector-aware baselines match GMC's FLOPs,
and on the left-to-right-optimal family every strategy needs the same number
of FLOPs (up to inverse handling).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence

from ..algebra.expression import Matrix
from ..algebra.operators import Times
from ..baselines.registry import BASELINE_STRATEGIES, build_gmc_program
from .reporting import format_table
from .workload import TestProblem


@dataclass
class TailCaseResult:
    name: str
    rows: List[Mapping[str, object]]
    text: str

    def __str__(self) -> str:
        return self.text


def vector_tail_problems(count: int = 5, seed: int = 0, max_size: int = 300) -> List[TestProblem]:
    """Chains ``M1 ... Mk v1 v2^T`` (Section 4 tail case)."""
    rng = random.Random(seed)
    problems: List[TestProblem] = []
    for index in range(count):
        matrices = rng.randint(2, 3)
        sizes = [rng.randrange(50, max_size + 1, 50) for _ in range(matrices + 1)]
        factors = []
        operands = []
        for position in range(matrices):
            operand = Matrix(f"M{position}", sizes[position], sizes[position + 1])
            factors.append(operand)
            operands.append(operand)
        v1 = Matrix("v1", sizes[matrices], 1)
        v2 = Matrix("v2", rng.randrange(50, max_size + 1, 50), 1)
        factors.extend([v1, v2.T])
        operands.extend([v1, v2])
        problems.append(
            TestProblem(
                identifier=f"vector_tail{index:02d}",
                expression=Times(*factors),
                factors=tuple(factors),
                operands=tuple(operands),
                seed=seed,
            )
        )
    return problems


def left_to_right_optimal_problems(
    count: int = 5, seed: int = 0, max_size: int = 300
) -> List[TestProblem]:
    """Chains whose first dimension is the smallest and whose dimensions grow
    monotonically, so that strict left-to-right evaluation is optimal (or very
    close to it): every product keeps the small leading dimension."""
    rng = random.Random(seed)
    problems: List[TestProblem] = []
    for index in range(count):
        length = rng.randint(3, 6)
        sizes = sorted(rng.randrange(50, max_size + 1, 50) for _ in range(length + 1))
        factors = []
        operands = []
        for position in range(length):
            operand = Matrix(f"M{position}", sizes[position], sizes[position + 1])
            factors.append(operand)
            operands.append(operand)
        problems.append(
            TestProblem(
                identifier=f"ltr_optimal{index:02d}",
                expression=Times(*factors),
                factors=tuple(factors),
                operands=tuple(operands),
                seed=seed,
            )
        )
    return problems


def analyze(problems: Sequence[TestProblem], name: str) -> TailCaseResult:
    """Report FLOPs of GMC and every baseline on the given chain family."""
    rows: List[Dict[str, object]] = []
    for problem in problems:
        gmc_program = build_gmc_program(problem.expression)
        row: Dict[str, object] = {
            "problem": problem.identifier,
            "GMC": gmc_program.total_flops,
            "GMC_kernels": " -> ".join(gmc_program.kernel_names),
        }
        for strategy in BASELINE_STRATEGIES:
            program = strategy.build_program(problem.expression)
            row[strategy.label] = program.total_flops
        rows.append(row)
    headers = ["problem", "GMC"] + [s.label for s in BASELINE_STRATEGIES]
    table = format_table(
        headers,
        [[row[h] for h in headers] for row in rows],
    )
    text = f"Tail-case family: {name} (FLOPs per strategy)\n" + table
    return TailCaseResult(name=name, rows=rows, text=text)


def vector_tail_analysis(count: int = 5, seed: int = 0) -> TailCaseResult:
    return analyze(vector_tail_problems(count=count, seed=seed), "M1..Mk v1 v2^T")


def left_to_right_analysis(count: int = 5, seed: int = 0) -> TailCaseResult:
    return analyze(left_to_right_optimal_problems(count=count, seed=seed), "left-to-right optimal")

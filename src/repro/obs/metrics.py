"""Stdlib-only service metrics: counters, latency histograms, Prometheus text.

The service's ``GET /metrics`` endpoint renders two sources in the
Prometheus text exposition format (version 0.0.4):

* the seven uniform cache-telemetry layers (:mod:`repro.telemetry`) pooled
  across workers -- every numeric counter becomes a
  ``repro_<key>{layer="<layer>"}`` gauge sample;
* fixed-bucket latency histograms maintained by the HTTP tier, one per
  endpoint, rendered with the standard ``_bucket``/``_sum``/``_count``
  triple and cumulative ``le`` buckets ending in ``+Inf``.

Everything here is plain stdlib (a few dicts and a lock); no client
library is required to scrape it -- ``curl host:port/metrics`` works.
"""

from __future__ import annotations

import re
import threading
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "render_prometheus",
    "service_metrics",
    "reset_service_metrics",
]

#: Default latency bucket upper bounds, in seconds.  Chain solves span
#: microseconds (plan-cache hits) to seconds (long cold chains), so the
#: buckets cover five decades.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_NAME_BAD_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_ESCAPES = {"\\": "\\\\", '"': '\\"', "\n": "\\n"}


def sanitize_metric_name(name: str) -> str:
    """A Prometheus-legal metric name for *name* (telemetry keys are already
    ``snake_case``; this guards against future keys with odd characters)."""
    if _NAME_OK.match(name):
        return name
    cleaned = _NAME_BAD_CHARS.sub("_", name)
    if not cleaned or not _NAME_OK.match(cleaned):
        cleaned = "_" + cleaned
    return cleaned


def escape_label_value(value: str) -> str:
    """Escape a label value per the exposition-format rules."""
    return "".join(_LABEL_ESCAPES.get(ch, ch) for ch in str(value))


def format_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{sanitize_metric_name(key)}="{escape_label_value(value)}"'
        for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def format_value(value: float) -> str:
    """Render a sample value (integers without a trailing ``.0``)."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    as_float = float(value)
    if as_float != as_float:  # NaN
        return "NaN"
    if as_float in (float("inf"), float("-inf")):
        return "+Inf" if as_float > 0 else "-Inf"
    if as_float.is_integer():
        return str(int(as_float))
    return repr(as_float)


class Counter:
    """A monotonically increasing counter (thread-safe)."""

    __slots__ = ("name", "help", "_lock", "_values")

    def __init__(self, name: str, help_text: str = "") -> None:
        self.name = sanitize_metric_name(name)
        self.help = help_text
        self._lock = threading.Lock()
        self._values: Dict[Tuple[Tuple[str, str], ...], float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        key = tuple(sorted((k, str(v)) for k, v in labels.items()))
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        key = tuple(sorted((k, str(v)) for k, v in labels.items()))
        with self._lock:
            return self._values.get(key, 0.0)

    def render(self) -> List[str]:
        with self._lock:
            items = sorted(self._values.items())
        lines = [
            f"# HELP {self.name} {self.help}" if self.help else f"# HELP {self.name}",
            f"# TYPE {self.name} counter",
        ]
        for key, value in items:
            lines.append(f"{self.name}{format_labels(dict(key))} {format_value(value)}")
        return lines


class Histogram:
    """A fixed-bucket histogram in the Prometheus cumulative style.

    ``observe(v)`` increments the first bucket whose upper bound is
    ``>= v`` (non-cumulative storage); rendering and :meth:`snapshot`
    produce the *cumulative* counts Prometheus expects, so bucket counts
    are monotonically non-decreasing by construction.
    """

    __slots__ = ("buckets", "_counts", "_sum", "_count", "_lock")

    def __init__(self, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if len(set(bounds)) != len(bounds):
            raise ValueError(f"duplicate bucket bounds: {bounds}")
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # +1: the +Inf overflow bucket
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        index = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def snapshot(self) -> Dict[str, object]:
        """Cumulative bucket counts plus sum/count, as plain data."""
        with self._lock:
            counts = list(self._counts)
            total_sum = self._sum
            total = self._count
        cumulative: List[Tuple[float, int]] = []
        running = 0
        for bound, bucket_count in zip(self.buckets, counts):
            running += bucket_count
            cumulative.append((bound, running))
        return {
            "buckets": cumulative,  # [(upper_bound_s, cumulative_count), ...]
            "sum": total_sum,
            "count": total,
        }


class MetricsRegistry:
    """Process-local registry of labelled histograms (and counters).

    The HTTP tier records one observation per request into
    ``request_latency_seconds{endpoint=...}``; tests and the ``/metrics``
    renderer read it back through :meth:`render`.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._histograms: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], Histogram] = {}
        self._help: Dict[str, str] = {}
        self._counters: Dict[str, Counter] = {}

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        help_text: str = "",
        **labels: str,
    ) -> Histogram:
        name = sanitize_metric_name(name)
        key = (name, tuple(sorted((k, str(v)) for k, v in labels.items())))
        with self._lock:
            histogram = self._histograms.get(key)
            if histogram is None:
                histogram = self._histograms[key] = Histogram(buckets)
            if help_text:
                self._help.setdefault(name, help_text)
        return histogram

    def counter(self, name: str, help_text: str = "") -> Counter:
        name = sanitize_metric_name(name)
        with self._lock:
            counter = self._counters.get(name)
            if counter is None:
                counter = self._counters[name] = Counter(name, help_text)
        return counter

    def observe(self, name: str, value: float, **labels: str) -> None:
        self.histogram(name, **labels).observe(value)

    def render(self) -> List[str]:
        """Exposition lines for everything registered (grouped per metric)."""
        with self._lock:
            histograms = sorted(self._histograms.items())
            help_texts = dict(self._help)
            counters = sorted(self._counters.items())
        lines: List[str] = []
        for _, counter in counters:
            lines.extend(counter.render())
        by_name: Dict[str, List[Tuple[Tuple[Tuple[str, str], ...], Histogram]]] = {}
        for (name, label_key), histogram in histograms:
            by_name.setdefault(name, []).append((label_key, histogram))
        for name, entries in sorted(by_name.items()):
            help_text = help_texts.get(name, "")
            lines.append(f"# HELP {name} {help_text}".rstrip())
            lines.append(f"# TYPE {name} histogram")
            for label_key, histogram in entries:
                labels = dict(label_key)
                snap = histogram.snapshot()
                for bound, cumulative in snap["buckets"]:
                    bucket_labels = dict(labels)
                    bucket_labels["le"] = format_value(bound)
                    lines.append(
                        f"{name}_bucket{format_labels(bucket_labels)} {cumulative}"
                    )
                inf_labels = dict(labels)
                inf_labels["le"] = "+Inf"
                lines.append(
                    f"{name}_bucket{format_labels(inf_labels)} {snap['count']}"
                )
                lines.append(
                    f"{name}_sum{format_labels(labels)} {format_value(snap['sum'])}"
                )
                lines.append(f"{name}_count{format_labels(labels)} {snap['count']}")
        return lines

    def reset(self) -> None:
        with self._lock:
            self._histograms.clear()
            self._counters.clear()
            self._help.clear()


# The process-global registry the HTTP tier records into.  One per process
# is the right scope: the HTTP server (and its latency) lives in the front
# process regardless of how many worker processes sit behind it.
_SERVICE_METRICS: Optional[MetricsRegistry] = None
_SERVICE_METRICS_LOCK = threading.Lock()


def service_metrics() -> MetricsRegistry:
    """The process-global registry of service metrics (lazily created)."""
    global _SERVICE_METRICS
    if _SERVICE_METRICS is None:
        with _SERVICE_METRICS_LOCK:
            if _SERVICE_METRICS is None:
                _SERVICE_METRICS = MetricsRegistry()
    return _SERVICE_METRICS


def reset_service_metrics() -> None:
    """Drop all recorded service metrics (test isolation)."""
    service_metrics().reset()


def _telemetry_lines(
    layers: Mapping[str, Mapping[str, object]], prefix: str
) -> List[str]:
    """Gauge samples for the pooled cache-telemetry layers.

    Samples of one metric name must be contiguous in the exposition, so
    the per-layer dicts are first pivoted into per-key sample lists.
    """
    by_metric: Dict[str, List[Tuple[str, float]]] = {}
    for layer, stats in sorted(layers.items()):
        if not isinstance(stats, Mapping):
            continue
        for key, value in sorted(stats.items()):
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            metric = f"{prefix}_{sanitize_metric_name(str(key))}"
            by_metric.setdefault(metric, []).append((str(layer), value))
    lines: List[str] = []
    for metric, samples in sorted(by_metric.items()):
        lines.append(f"# HELP {metric} repro cache-telemetry counter (pooled)")
        lines.append(f"# TYPE {metric} gauge")
        for layer, value in samples:
            lines.append(
                f'{metric}{{layer="{escape_label_value(layer)}"}} {format_value(value)}'
            )
    return lines


def render_prometheus(
    cache_layers: Optional[Mapping[str, Mapping[str, object]]] = None,
    registry: Optional[MetricsRegistry] = None,
    extra_gauges: Optional[Mapping[str, float]] = None,
    prefix: str = "repro",
) -> str:
    """The full ``/metrics`` body: telemetry layers + registry + gauges.

    *cache_layers* is the pooled per-layer dict of ``executor.stats()``
    (the ``"caches"`` entry; the synthetic ``"workers"`` count renders as a
    standalone gauge).  Returns text ending in a newline, as the
    exposition format requires.
    """
    lines: List[str] = []
    if extra_gauges:
        for name, value in sorted(extra_gauges.items()):
            metric = f"{prefix}_{sanitize_metric_name(name)}"
            lines.append(f"# HELP {metric} repro service gauge")
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {format_value(value)}")
    if cache_layers:
        layers = {
            name: stats
            for name, stats in cache_layers.items()
            if isinstance(stats, Mapping)
        }
        scalars = {
            name: value
            for name, value in cache_layers.items()
            if isinstance(value, (int, float)) and not isinstance(value, bool)
        }
        for name, value in sorted(scalars.items()):
            metric = f"{prefix}_{sanitize_metric_name(name)}"
            lines.append(f"# HELP {metric} repro service gauge")
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {format_value(value)}")
        lines.extend(_telemetry_lines(layers, prefix))
    if registry is not None:
        lines.extend(registry.render())
    return "\n".join(lines) + "\n"

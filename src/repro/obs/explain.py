"""Plan provenance: why each segment's kernel sequence was chosen.

:func:`explain_result` renders a human-readable provenance report for a
:class:`~repro.frontend.compiler.CompilationResult` -- per segment: where
the plan came from (plan-cache hit, trivial alias, or a cold dynamic
program), what it cost, which kernels it picked and how much DP work the
solve did.  When the compilation was traced (``CompileOptions(trace=True)``)
the per-phase timings from the span tree are folded in.

The provenance classification reads the same markers the pipeline already
carries: :class:`~repro.persist.plan_cache.CachedPlanSolution` instances
advertise ``from_plan_cache = True``, trivial alias segments have no kernel
calls, and everything else was a cold solve.
"""

from __future__ import annotations

from typing import List, Optional

__all__ = ["explain_execution", "explain_result", "provenance_of"]


def provenance_of(compiled) -> str:
    """One-word provenance for a compiled assignment.

    ``"plan_cache"`` -- the whole plan was a cache hit (the DP never ran);
    ``"trivial"`` -- an alias segment (no kernels to choose);
    ``"cold_dp"`` -- a fresh dynamic-program solve.
    """
    if getattr(compiled.solution, "from_plan_cache", False):
        return "plan_cache"
    if not compiled.program.calls:
        return "trivial"
    return "cold_dp"


def _segment_span(trace, target: str):
    """The traced segment span for *target*, if the result carries a trace."""
    if trace is None:
        return None
    for span in trace.find("segment"):
        if span.attrs.get("target") == target:
            return span
    return None


def explain_result(result) -> str:
    """The provenance report for one compilation (see module docstring)."""
    lines: List[str] = ["plan provenance:"]
    for compiled in result.assignments:
        provenance = provenance_of(compiled)
        solution = compiled.solution
        marker = "  (synthetic)" if compiled.synthetic else ""
        lines.append(f"  {compiled.target} := {compiled.expression}{marker}")
        lines.append(f"    provenance:      {_DESCRIPTIONS[provenance]}")
        lines.append(f"    plan cache:      {_PLAN_CACHE_LINES[provenance]}")
        kernels = " -> ".join(compiled.kernel_sequence) or "<none: alias segment>"
        lines.append(f"    kernels:         {kernels}")
        lines.append(f"    FLOPs:           {compiled.flops:.4g}")
        generation = getattr(solution, "generation_time", 0.0)
        lines.append(f"    generation time: {generation * 1e3:.3f} ms")
        if provenance == "cold_dp":
            cells = getattr(solution, "cells_evaluated", None)
            if cells is not None:
                lines.append(
                    f"    DP work:         {cells} cells evaluated, "
                    f"{getattr(solution, 'cells_pruned', 0)} splits pruned, "
                    f"{getattr(solution, 'diagonals', 0)} diagonals"
                )
            if not getattr(solution, "complete", True):
                lines.append("    NOTE:            deadline expired (best-so-far plan)")
        span = _segment_span(getattr(result, "trace", None), compiled.target)
        if span is not None:
            detail = _span_detail(span)
            if detail:
                lines.append(f"    traced phases:   {detail}")
    trace = getattr(result, "trace", None)
    if trace is not None:
        roots = trace.roots
        if roots:
            total = roots[0].duration
            lines.append(f"  total traced time: {total * 1e3:.3f} ms")
    return "\n".join(lines)


def _span_detail(span) -> Optional[str]:
    parts: List[str] = []
    for child in span.children:
        parts.append(f"{child.name} {child.duration * 1e3:.3f} ms")
    hits = {
        key: span.attrs[key]
        for key in ("match_cache_hits", "decision_memo_hits")
        if span.attrs.get(key)
    }
    for key, value in hits.items():
        parts.append(f"{key}={value}")
    return ", ".join(parts) if parts else None


_DESCRIPTIONS = {
    "plan_cache": "plan-cache hit (DP skipped, plan re-bound)",
    "trivial": "trivial alias segment (nothing to solve)",
    "cold_dp": "cold dynamic-program solve",
}

#: Explicit per-segment plan-cache outcome (satellite of the analytics
#: layer: hit/miss provenance at a glance, before the detail lines).
_PLAN_CACHE_LINES = {
    "plan_cache": "hit",
    "trivial": "bypassed (alias segment, nothing to cache)",
    "cold_dp": "miss (cold solve; plan stored for the next request)",
}

#: Display order and labels of the execution-tier phases.
_EXECUTION_PHASES = (
    ("compile_s", "compile"),
    ("emit_s", "emit"),
    ("import_s", "import"),
    ("run_s", "run"),
    ("validate_s", "validate"),
    ("total_s", "total"),
)


def explain_execution(response) -> str:
    """Per-phase provenance for one execution-tier response.

    The ``/execute`` counterpart of :func:`explain_result`: renders the
    compile/emit/import/run/validate timings an
    :class:`~repro.exec.api.ExecuteResponse` carries, plus the module-cache
    outcome and the validation verdict (also via
    :meth:`ExecuteResponse.explain`).
    """
    lines: List[str] = ["execution phases:"]
    timing = getattr(response, "timing", None) or {}
    for key, label in _EXECUTION_PHASES:
        if key in timing:
            lines.append(f"  {label + ':':<10} {timing[key] * 1e3:.3f} ms")
    cache = "hit (emit + import skipped)" if response.module_cache_hit else "miss"
    lines.append(f"  module cache:    {cache}")
    engine = response.engine
    if response.implementation:
        engine = f"{engine} ({response.implementation})"
    lines.append(f"  engine:          {engine}")
    if response.validated is not None:
        verdict = "agrees with reference" if response.validated else "DIVERGED"
        error = response.max_rel_error
        detail = f" (max relative error {error:.3g})" if error is not None else ""
        lines.append(f"  validation:      {verdict}{detail}")
    if not response.ok:
        lines.append(f"  FAILED in phase {response.phase!r}: {response.error}")
    return "\n".join(lines)

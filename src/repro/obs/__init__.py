"""Observability: tracing, metrics, logging, analytics, profiling.

Six stdlib-only modules, threaded through every layer of the pipeline:

* :mod:`repro.obs.trace` -- opt-in span trees for one compilation
  (``CompileOptions(trace=True)``), exportable as raw JSON or Chrome
  trace-event JSON (Perfetto-loadable), tagged with the service request id;
* :mod:`repro.obs.metrics` -- counters, fixed-bucket latency histograms and
  the Prometheus text exposition behind ``GET /metrics``;
* :mod:`repro.obs.analytics` -- mergeable streaming sketches over service
  traffic: Space-Saving heavy hitters over request signatures
  (``GET /analytics``), DDSketch-style latency quantiles
  (``repro_*_latency{quantile=...}`` on ``/metrics``) and wall-clock
  aligned counter rings (``GET /timeseries``);
* :mod:`repro.obs.profile` -- opt-in per-request ``cProfile`` deep
  profiles (``CompileOptions(profile=True)`` / ``POST /profile``), with
  ``flamegraph.pl``-compatible collapsed-stack output;
* :mod:`repro.obs.logging` -- JSON-lines logging setup for the service
  (worker restarts, saturation rejections, snapshot loads/saves), with a
  token-bucket suppressor for per-request-triggerable warnings;
* :mod:`repro.obs.explain` -- plan and execution provenance reports
  (:meth:`CompilationResult.explain`, :meth:`ExecuteResponse.explain`).

Tracing and profiling are zero-overhead when disabled (the hot DP loops
never see a tracer or profiler object), and the always-on analytics layer
is sketch-cheap; both properties are gated in CI by
``scripts/bench_generation.py --check-trace-overhead`` and
``--check-analytics-overhead``.
"""

from .analytics import (
    CounterRing,
    QuantileSketch,
    SpaceSavingSketch,
    WorkloadAnalytics,
    analytics_disabled,
    analytics_enabled,
    analytics_report,
    merge_analytics_states,
    render_quantile_lines,
    service_analytics,
    set_analytics_enabled,
    timeseries_report,
    workload_analytics,
)
from .explain import explain_execution, explain_result, provenance_of
from .logging import (
    JsonFormatter,
    TokenBucketSuppressor,
    configure_logging,
    get_logger,
    log_rate_limited,
)
from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Histogram,
    MetricsRegistry,
    render_prometheus,
    reset_service_metrics,
    service_metrics,
)
from .profile import collapsed_stacks, profile_call, profile_payload, top_functions
from .trace import Span, Tracer

__all__ = [
    "Counter",
    "CounterRing",
    "DEFAULT_LATENCY_BUCKETS",
    "Histogram",
    "JsonFormatter",
    "MetricsRegistry",
    "QuantileSketch",
    "Span",
    "SpaceSavingSketch",
    "TokenBucketSuppressor",
    "Tracer",
    "WorkloadAnalytics",
    "analytics_disabled",
    "analytics_enabled",
    "analytics_report",
    "collapsed_stacks",
    "configure_logging",
    "explain_execution",
    "explain_result",
    "get_logger",
    "log_rate_limited",
    "merge_analytics_states",
    "profile_call",
    "profile_payload",
    "provenance_of",
    "render_prometheus",
    "render_quantile_lines",
    "reset_service_metrics",
    "service_analytics",
    "service_metrics",
    "set_analytics_enabled",
    "timeseries_report",
    "top_functions",
    "workload_analytics",
]

"""Observability: compile tracing, service metrics, structured logging.

Four stdlib-only modules, threaded through every layer of the pipeline:

* :mod:`repro.obs.trace` -- opt-in span trees for one compilation
  (``CompileOptions(trace=True)``), exportable as raw JSON or Chrome
  trace-event JSON (Perfetto-loadable);
* :mod:`repro.obs.metrics` -- counters, fixed-bucket latency histograms and
  the Prometheus text exposition behind ``GET /metrics``;
* :mod:`repro.obs.logging` -- JSON-lines logging setup for the service
  (worker restarts, saturation rejections, snapshot loads/saves);
* :mod:`repro.obs.explain` -- plan provenance reports
  (:meth:`CompilationResult.explain`).

Tracing is zero-overhead when disabled: the hot DP loops never see a
tracer object (``None`` tests happen at phase boundaries only), which
``scripts/bench_generation.py --check-trace-overhead`` gates in CI.
"""

from .explain import explain_result, provenance_of
from .logging import JsonFormatter, configure_logging, get_logger
from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Histogram,
    MetricsRegistry,
    render_prometheus,
    reset_service_metrics,
    service_metrics,
)
from .trace import Span, Tracer

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Histogram",
    "JsonFormatter",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "configure_logging",
    "explain_result",
    "get_logger",
    "provenance_of",
    "render_prometheus",
    "reset_service_metrics",
    "service_metrics",
]

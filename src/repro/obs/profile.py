"""Opt-in deep profiling of one compilation (stdlib ``cProfile`` only).

``CompileOptions(profile=True)`` -- or ``profile: true`` inside a
request's ``options`` on the service wire -- wraps the solve in a
:class:`cProfile.Profile` and attaches a compact payload to the response:

* ``top_functions`` -- the hottest functions by cumulative time (what the
  CLI's ``--profile`` prints);
* ``collapsed`` -- collapsed-stack text in the format ``flamegraph.pl``
  consumes (``frame;frame;frame count`` per line, counts in microseconds),
  which ``POST /profile`` returns verbatim as ``text/plain``.

The collapsed stacks are reconstructed from cProfile's caller graph the
way ``flameprof`` does it: walk from the root frames, attribute each
function's *self* time along every caller path in proportion to the
cumulative time flowing through that path's edges, and cut cycles by
refusing to revisit a frame already on the current stack.  The result is
an approximation of the true stack samples (cProfile records a caller
*graph*, not full stacks), but one whose per-frame totals match the
profiler's numbers exactly.

Profiling is strictly opt-in and per-request; the disabled path never
constructs a profiler, so the always-on analytics overhead gate
(``--check-analytics-overhead``) is unaffected.
"""

from __future__ import annotations

import cProfile
import os
import pstats
from typing import Any, Callable, Dict, List, Tuple, TypeVar

__all__ = ["profile_call", "top_functions", "collapsed_stacks", "profile_payload"]

T = TypeVar("T")

#: Depth bound of the collapsed-stack walk (far above any real compile
#: stack; guards degenerate caller graphs).
_MAX_DEPTH = 96

#: Frames contributing less than this fraction of total time are dropped
#: from the collapsed output (keeps the text proportional to signal).
_MIN_FRACTION = 1e-5


def profile_call(fn: Callable[[], T]) -> Tuple[T, cProfile.Profile]:
    """Run *fn* under ``cProfile``; returns ``(result, profiler)``."""
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = fn()
    finally:
        profiler.disable()
    return result, profiler


def _frame_name(func: Tuple[str, int, str]) -> str:
    """A compact frame label (no ``;`` or spaces -- both are collapsed-stack
    metacharacters: ``;`` separates frames, space starts the count)."""
    filename, lineno, name = func
    if filename == "~" or not filename:
        label = name  # built-ins already render as <built-in ...>
    else:
        label = f"{os.path.basename(filename)}:{lineno}:{name}"
    return label.replace(";", ",").replace(" ", "_")


def top_functions(profiler: cProfile.Profile, limit: int = 15) -> List[Dict[str, Any]]:
    """The hottest *limit* functions by cumulative time."""
    stats = pstats.Stats(profiler)
    rows = []
    for func, (cc, nc, tt, ct, _callers) in stats.stats.items():  # type: ignore[attr-defined]
        filename, lineno, name = func
        rows.append(
            {
                "function": name,
                "file": filename,
                "line": lineno,
                "calls": nc,
                "tottime_s": tt,
                "cumtime_s": ct,
            }
        )
    rows.sort(key=lambda row: (-row["cumtime_s"], -row["tottime_s"], row["function"]))
    return rows[: max(0, limit)]


def collapsed_stacks(profiler: cProfile.Profile) -> str:
    """``flamegraph.pl``-compatible collapsed stacks (counts in microseconds)."""
    stats = pstats.Stats(profiler).stats  # type: ignore[attr-defined]
    # Invert the caller graph: caller -> [(callee, cumtime via this edge)].
    callees: Dict[Tuple[str, int, str], List[Tuple[Tuple[str, int, str], float]]] = {}
    for func, (_cc, _nc, _tt, _ct, callers) in stats.items():
        for caller, edge in callers.items():
            # Edge stats are (cc, nc, tt, ct) tuples on CPython.
            edge_ct = edge[3] if isinstance(edge, tuple) and len(edge) == 4 else 0.0
            callees.setdefault(caller, []).append((func, edge_ct))
    samples: Dict[str, float] = {}

    def walk(func, stack: List[str], on_stack: set, fraction: float) -> None:
        if fraction < _MIN_FRACTION or len(stack) >= _MAX_DEPTH:
            return
        if func in on_stack:
            return  # recursion: collapse the cycle into the first visit
        _cc, _nc, tt, ct, _callers = stats[func]
        path = stack + [_frame_name(func)]
        self_time = tt * fraction
        if self_time > 0:
            key = ";".join(path)
            samples[key] = samples.get(key, 0.0) + self_time
        on_stack.add(func)
        for child, edge_ct in callees.get(func, ()):
            child_ct = stats[child][3]
            if child_ct <= 0 or edge_ct <= 0:
                continue
            walk(child, path, on_stack, fraction * (edge_ct / child_ct))
        on_stack.discard(func)

    roots = [func for func, entry in stats.items() if not entry[4]]
    for root in roots:
        walk(root, [], set(), 1.0)
    lines = []
    for key in sorted(samples):
        micros = int(round(samples[key] * 1e6))
        if micros > 0:
            lines.append(f"{key} {micros}")
    return "\n".join(lines) + "\n" if lines else ""


def profile_payload(profiler: cProfile.Profile, limit: int = 15) -> Dict[str, Any]:
    """The wire payload attached to profiled responses."""
    return {
        "top_functions": top_functions(profiler, limit),
        "collapsed": collapsed_stacks(profiler),
    }

"""Workload analytics: mergeable streaming sketches over service traffic.

Three stdlib-only sketch structures, all **mergeable** so the worker pool
can aggregate worker-local state through the existing
:func:`repro.telemetry.aggregate` path (the ``"analytics"`` telemetry
layer) exactly like :mod:`repro.persist.snapshot` merges cache state:

* :class:`SpaceSavingSketch` -- the Space-Saving heavy-hitter algorithm
  (Metwally, Agrawal, El Abbadi 2005) over name-abstracted request
  signatures: a bounded set of ``(count, error)`` counters whose top-k is
  provably a superset of every key with frequency above ``N/capacity``.
  Entries carry auxiliary aggregates (plan-cache hits, summed latency) so
  ``GET /analytics`` can report per-signature plan-hit rates and mean
  latency -- the direct input for the ROADMAP's hot-signature promotion.
* :class:`QuantileSketch` -- a fixed-relative-accuracy log-bucket quantile
  sketch in the DDSketch family: bucket ``i`` covers
  ``(gamma^(i-1), gamma^i]`` with ``gamma = (1+alpha)/(1-alpha)``, so any
  reported quantile is within relative error *alpha* of the true value and
  two sketches merge by bucket-wise addition.  Rendered as
  ``repro_*_latency{quantile="0.5|0.95|0.99"}`` gauges on ``/metrics``.
* :class:`CounterRing` -- a wall-clock-aligned ring of counter slots
  (configurable resolution/retention) behind ``GET /timeseries``.  Slots
  are keyed by the **absolute** slot index ``int(now / resolution)``, so
  rings recorded in different processes merge by slot alignment.

:class:`WorkloadAnalytics` bundles one of each behind a lock; two
process-global instances exist per process: :func:`workload_analytics`
(the worker-side view, recorded at ``execute_request`` time and shipped
inside the telemetry snapshot) and :func:`service_analytics` (the HTTP
front-end's endpoint latencies and 429/validation-failure rings, which
must not double-count when the executor runs in-process).

The layer is always-on but cheap (a dict update and a ``log`` per
request); ``scripts/bench_generation.py --check-analytics-overhead`` gates
warm serve throughput within a few percent of :func:`analytics_disabled`.
"""

from __future__ import annotations

import hashlib
import math
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .metrics import escape_label_value, format_value, sanitize_metric_name

__all__ = [
    "SpaceSavingSketch",
    "QuantileSketch",
    "CounterRing",
    "WorkloadAnalytics",
    "workload_analytics",
    "service_analytics",
    "analytics_enabled",
    "set_analytics_enabled",
    "analytics_disabled",
    "merge_analytics_states",
    "analytics_report",
    "timeseries_report",
    "render_quantile_lines",
]

#: Default bound on tracked heavy-hitter entries (error <= N/capacity).
DEFAULT_TOP_CAPACITY = 64

#: Default relative accuracy of the quantile sketches (1%).
DEFAULT_ALPHA = 0.01

#: Default time-series resolution (seconds per slot) and retention (slots).
DEFAULT_RING_RESOLUTION_S = 5.0
DEFAULT_RING_SLOTS = 120

#: Values at or below this collapse into the quantile sketch's zero bucket
#: (sub-nanosecond latencies carry no information at alpha ~ 1%).
_ZERO_THRESHOLD = 1e-9


def signature_digest(signature: str) -> str:
    """A short process-stable digest naming one signature string."""
    return hashlib.sha1(signature.encode("utf-8")).hexdigest()[:12]


# ---------------------------------------------------------------------------
# Space-Saving heavy hitters.
# ---------------------------------------------------------------------------

class SpaceSavingSketch:
    """Bounded heavy-hitter counters with per-entry auxiliary aggregates.

    ``observe`` either increments a tracked entry, claims a free slot, or
    -- at capacity -- evicts the minimum-count entry and inherits its count
    as the new entry's ``error`` bound (the classic Space-Saving update:
    every tracked count overestimates the true frequency by at most its
    ``error``, and every key with true frequency above ``total/capacity``
    is guaranteed to be tracked).

    Auxiliary aggregates (``plan_hits``, ``latency_sum``) are exact for the
    tracked span of an entry's life; an entry that took over an evicted
    slot starts its aggregates fresh, so rates/means are reported over the
    tracked observations only.
    """

    def __init__(self, capacity: int = DEFAULT_TOP_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity!r}")
        self.capacity = capacity
        self.total = 0
        self._entries: Dict[str, Dict[str, float]] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def observe(
        self, key: str, *, plan_hit: bool = False, latency_s: float = 0.0
    ) -> None:
        self.total += 1
        entry = self._entries.get(key)
        if entry is None:
            if len(self._entries) < self.capacity:
                entry = {"count": 0, "error": 0, "plan_hits": 0, "latency_sum": 0.0}
            else:
                victim = min(self._entries, key=lambda k: self._entries[k]["count"])
                floor = self._entries.pop(victim)["count"]
                entry = {
                    "count": floor,
                    "error": floor,
                    "plan_hits": 0,
                    "latency_sum": 0.0,
                }
            self._entries[key] = entry
        entry["count"] += 1
        if plan_hit:
            entry["plan_hits"] += 1
        entry["latency_sum"] += float(latency_s)

    def top(self, k: int = 10) -> List[Dict[str, Any]]:
        """The *k* largest tracked entries, largest count first."""
        ranked = sorted(
            self._entries.items(), key=lambda item: (-item[1]["count"], item[0])
        )
        out: List[Dict[str, Any]] = []
        for key, entry in ranked[: max(0, k)]:
            tracked = entry["count"] - entry["error"]
            out.append(
                {
                    "signature": key,
                    "digest": signature_digest(key),
                    "count": int(entry["count"]),
                    "error": int(entry["error"]),
                    "plan_hits": int(entry["plan_hits"]),
                    "plan_hit_rate": (
                        entry["plan_hits"] / tracked if tracked > 0 else 0.0
                    ),
                    "mean_latency_s": (
                        entry["latency_sum"] / tracked if tracked > 0 else 0.0
                    ),
                }
            )
        return out

    # ----------------------------------------------------------------- state
    def to_state(self) -> Dict[str, Any]:
        return {
            "capacity": self.capacity,
            "total": self.total,
            "entries": {key: dict(entry) for key, entry in self._entries.items()},
        }

    @classmethod
    def from_state(cls, state: Mapping) -> "SpaceSavingSketch":
        sketch = cls(capacity=int(state.get("capacity", DEFAULT_TOP_CAPACITY)))
        sketch.total = int(state.get("total", 0))
        for key, entry in (state.get("entries") or {}).items():
            sketch._entries[str(key)] = {
                "count": int(entry.get("count", 0)),
                "error": int(entry.get("error", 0)),
                "plan_hits": int(entry.get("plan_hits", 0)),
                "latency_sum": float(entry.get("latency_sum", 0.0)),
            }
        return sketch

    def merge(self, state: Mapping) -> None:
        """Fold another sketch's state into this one.

        Counts, error bounds and auxiliary aggregates add per key; when the
        union exceeds capacity the smallest-count entries are dropped
        (their mass stays in ``total``).  For disjoint key sets that fit in
        capacity -- the cross-worker case the pool produces, since affinity
        routing sends each signature to one worker -- the merge is exact.
        """
        self.total += int(state.get("total", 0))
        for key, entry in (state.get("entries") or {}).items():
            key = str(key)
            mine = self._entries.get(key)
            if mine is None:
                self._entries[key] = {
                    "count": int(entry.get("count", 0)),
                    "error": int(entry.get("error", 0)),
                    "plan_hits": int(entry.get("plan_hits", 0)),
                    "latency_sum": float(entry.get("latency_sum", 0.0)),
                }
            else:
                mine["count"] += int(entry.get("count", 0))
                mine["error"] += int(entry.get("error", 0))
                mine["plan_hits"] += int(entry.get("plan_hits", 0))
                mine["latency_sum"] += float(entry.get("latency_sum", 0.0))
        if len(self._entries) > self.capacity:
            ranked = sorted(
                self._entries.items(), key=lambda item: (-item[1]["count"], item[0])
            )
            self._entries = dict(ranked[: self.capacity])


# ---------------------------------------------------------------------------
# Log-bucket quantile sketch (DDSketch-style, fixed gamma).
# ---------------------------------------------------------------------------

class QuantileSketch:
    """Mergeable streaming quantiles with fixed relative accuracy *alpha*.

    Bucket ``i`` covers ``(gamma^(i-1), gamma^i]`` with
    ``gamma = (1+alpha)/(1-alpha)``; a value maps to
    ``ceil(log(v)/log(gamma))`` and is reported as the bucket midpoint
    ``2*gamma^i/(gamma+1)``, which is within relative error *alpha* of any
    value in the bucket.  Non-positive/tiny values land in a zero bucket.
    Merging adds bucket counts, so worker-local sketches pool exactly.
    """

    def __init__(self, alpha: float = DEFAULT_ALPHA) -> None:
        if not 0 < alpha < 1:
            raise ValueError(f"alpha must be in (0, 1), got {alpha!r}")
        self.alpha = alpha
        self.gamma = (1.0 + alpha) / (1.0 - alpha)
        self._log_gamma = math.log(self.gamma)
        self._buckets: Dict[int, int] = {}
        self.zero_count = 0
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        if value <= _ZERO_THRESHOLD:
            self.zero_count += 1
            return
        index = math.ceil(math.log(value) / self._log_gamma)
        self._buckets[index] = self._buckets.get(index, 0) + 1

    def quantile(self, q: float) -> Optional[float]:
        """The *q*-quantile estimate (``None`` on an empty sketch)."""
        if self.count == 0:
            return None
        if not 0 <= q <= 1:
            raise ValueError(f"quantile must be in [0, 1], got {q!r}")
        rank = q * (self.count - 1)
        cumulative = self.zero_count
        estimate = 0.0
        if rank >= cumulative:
            for index in sorted(self._buckets):
                cumulative += self._buckets[index]
                if rank < cumulative:
                    estimate = 2.0 * self.gamma**index / (self.gamma + 1.0)
                    break
            else:
                estimate = self.max if self.max is not None else 0.0
        # Clamp into the observed range: the bucket midpoint of a
        # single-sample sketch must never report outside [min, max].
        if self.min is not None:
            estimate = min(max(estimate, self.min), self.max)
        return estimate

    def summary(self) -> Dict[str, float]:
        """Count plus the dashboard quantiles, for ``GET /analytics``."""
        if self.count == 0:
            return {"count": 0}
        return {
            "count": self.count,
            "mean_s": self.sum / self.count,
            "p50_s": self.quantile(0.5),
            "p95_s": self.quantile(0.95),
            "p99_s": self.quantile(0.99),
            "max_s": self.max,
        }

    # ----------------------------------------------------------------- state
    def to_state(self) -> Dict[str, Any]:
        return {
            "alpha": self.alpha,
            "count": self.count,
            "sum": self.sum,
            "zero": self.zero_count,
            "min": self.min,
            "max": self.max,
            "buckets": dict(self._buckets),
        }

    @classmethod
    def from_state(cls, state: Mapping) -> "QuantileSketch":
        sketch = cls(alpha=float(state.get("alpha", DEFAULT_ALPHA)))
        sketch.merge(state)
        return sketch

    def merge(self, state: Mapping) -> None:
        """Bucket-wise addition of another sketch's state.

        Bucket keys may arrive as strings (the state travels through JSON
        on ``GET /stats``, which stringifies integer dict keys).
        """
        alpha = float(state.get("alpha", self.alpha))
        if not math.isclose(alpha, self.alpha, rel_tol=1e-9):
            raise ValueError(
                f"cannot merge quantile sketches with different accuracy "
                f"({alpha} vs {self.alpha})"
            )
        self.count += int(state.get("count", 0))
        self.sum += float(state.get("sum", 0.0))
        self.zero_count += int(state.get("zero", 0))
        for bound, mine in (("min", min), ("max", max)):
            theirs = state.get(bound)
            if theirs is not None:
                ours = getattr(self, bound)
                setattr(
                    self,
                    bound,
                    float(theirs) if ours is None else mine(ours, float(theirs)),
                )
        for index, count in (state.get("buckets") or {}).items():
            index = int(index)
            self._buckets[index] = self._buckets.get(index, 0) + int(count)


# ---------------------------------------------------------------------------
# Wall-clock-aligned counter rings.
# ---------------------------------------------------------------------------

class CounterRing:
    """A bounded time series of counter increments.

    Slots are keyed by the absolute index ``int(now / resolution_s)`` --
    wall clock, not a per-process epoch -- so rings recorded in different
    worker processes merge by aligning slot indexes and summing.  At most
    *slots* slots are retained (older ones are dropped on record/merge),
    bounding memory like a ring buffer regardless of process lifetime.
    """

    def __init__(
        self,
        resolution_s: float = DEFAULT_RING_RESOLUTION_S,
        slots: int = DEFAULT_RING_SLOTS,
    ) -> None:
        if resolution_s <= 0:
            raise ValueError(f"resolution_s must be positive, got {resolution_s!r}")
        if slots < 1:
            raise ValueError(f"slots must be >= 1, got {slots!r}")
        self.resolution_s = float(resolution_s)
        self.slots = int(slots)
        self._values: Dict[int, float] = {}

    def record(self, value: float = 1.0, now: Optional[float] = None) -> None:
        now = time.time() if now is None else now
        slot = int(now // self.resolution_s)
        values = self._values
        if slot in values:
            # Hot path: incrementing the current slot cannot move the
            # retention horizon, so skip the O(slots) prune scan.
            values[slot] += float(value)
        else:
            values[slot] = float(value)
            self._prune(slot)

    def _prune(self, latest: int) -> None:
        horizon = latest - self.slots + 1
        if len(self._values) > self.slots or min(self._values, default=horizon) < horizon:
            self._values = {
                slot: value for slot, value in self._values.items() if slot >= horizon
            }

    def points(self) -> List[List[float]]:
        """``[[epoch_seconds, value], ...]`` in time order."""
        return [
            [slot * self.resolution_s, value]
            for slot, value in sorted(self._values.items())
        ]

    def total(self) -> float:
        return sum(self._values.values())

    # ----------------------------------------------------------------- state
    def to_state(self) -> Dict[str, Any]:
        return {
            "resolution_s": self.resolution_s,
            "slots": self.slots,
            "values": dict(self._values),
        }

    @classmethod
    def from_state(cls, state: Mapping) -> "CounterRing":
        ring = cls(
            resolution_s=float(state.get("resolution_s", DEFAULT_RING_RESOLUTION_S)),
            slots=int(state.get("slots", DEFAULT_RING_SLOTS)),
        )
        ring.merge(state)
        return ring

    def merge(self, state: Mapping) -> None:
        """Sum another ring's slots into this one by absolute slot index."""
        for slot, value in (state.get("values") or {}).items():
            slot = int(slot)
            self._values[slot] = self._values.get(slot, 0.0) + float(value)
        if self._values:
            self._prune(max(self._values))


# ---------------------------------------------------------------------------
# The per-process bundle.
# ---------------------------------------------------------------------------

class WorkloadAnalytics:
    """One process's workload-analytics state: heavy hitters, latency
    quantile sketches keyed by ``(metric name, label key, label value)``
    and time-series counter rings.  Thread-safe; serializes to one plain
    ``state()`` dict whose numeric top-level keys double as ``/metrics``
    gauges for the ``analytics`` telemetry layer."""

    def __init__(
        self,
        top_capacity: int = DEFAULT_TOP_CAPACITY,
        alpha: float = DEFAULT_ALPHA,
        ring_resolution_s: float = DEFAULT_RING_RESOLUTION_S,
        ring_slots: int = DEFAULT_RING_SLOTS,
    ) -> None:
        self.alpha = alpha
        self.ring_resolution_s = ring_resolution_s
        self.ring_slots = ring_slots
        self._lock = threading.Lock()
        self.signatures = SpaceSavingSketch(top_capacity)
        self._latency: Dict[Tuple[str, str, str], QuantileSketch] = {}
        self._rings: Dict[str, CounterRing] = {}
        self.requests = 0
        self.plan_hits = 0

    # -------------------------------------------------------------- recording
    def record_request(
        self,
        signature: str,
        *,
        plan_hit: bool,
        latency_s: float,
        now: Optional[float] = None,
    ) -> None:
        """One served compile request: heavy-hitter + counters + rings."""
        now = time.time() if now is None else now
        with self._lock:
            self.requests += 1
            self.signatures.observe(signature, plan_hit=plan_hit, latency_s=latency_s)
            self._ring("requests").record(now=now)
            if plan_hit:
                self.plan_hits += 1
                self._ring("plan_hits").record(now=now)

    def observe_latency(
        self, name: str, label_key: str, label_value: str, seconds: float
    ) -> None:
        """One latency sample for ``repro_<name>{<label_key>=<label_value>}``."""
        key = (name, label_key, str(label_value))
        with self._lock:
            sketch = self._latency.get(key)
            if sketch is None:
                sketch = self._latency[key] = QuantileSketch(self.alpha)
            sketch.observe(seconds)

    def observe_latencies(
        self,
        name: str,
        label_key: str,
        samples: Sequence[Tuple[str, float]],
    ) -> None:
        """Several ``(label_value, seconds)`` samples under one lock
        acquisition (the per-request hot path records every compile phase
        at once)."""
        with self._lock:
            for label_value, seconds in samples:
                key = (name, label_key, str(label_value))
                sketch = self._latency.get(key)
                if sketch is None:
                    sketch = self._latency[key] = QuantileSketch(self.alpha)
                sketch.observe(seconds)

    def record_point(
        self, key: str, value: float = 1.0, now: Optional[float] = None
    ) -> None:
        """One time-series increment (e.g. a 429 or a validation failure)."""
        with self._lock:
            self._ring(key).record(value, now=now)

    def _ring(self, key: str) -> CounterRing:
        ring = self._rings.get(key)
        if ring is None:
            ring = self._rings[key] = CounterRing(
                self.ring_resolution_s, self.ring_slots
            )
        return ring

    # ----------------------------------------------------------------- state
    def state(self) -> Dict[str, Any]:
        """The mergeable snapshot shipped as the ``analytics`` telemetry
        layer (numeric top-level keys render as layer gauges)."""
        with self._lock:
            return {
                "layer": "analytics",
                "requests": self.requests,
                "plan_hits": self.plan_hits,
                "tracked_signatures": len(self.signatures),
                "signatures": self.signatures.to_state(),
                "latency": [
                    {
                        "name": name,
                        "label": label_key,
                        "value": label_value,
                        "sketch": sketch.to_state(),
                    }
                    for (name, label_key, label_value), sketch in sorted(
                        self._latency.items()
                    )
                ],
                "rings": {key: ring.to_state() for key, ring in self._rings.items()},
            }

    def merge_state(self, state: Mapping) -> None:
        """Fold another process's ``state()`` into this instance."""
        with self._lock:
            self.requests += int(state.get("requests", 0))
            self.plan_hits += int(state.get("plan_hits", 0))
            if state.get("signatures"):
                self.signatures.merge(state["signatures"])
            for entry in state.get("latency") or ():
                key = (entry["name"], entry["label"], str(entry["value"]))
                sketch = self._latency.get(key)
                if sketch is None:
                    sketch = self._latency[key] = QuantileSketch(
                        alpha=float(entry["sketch"].get("alpha", self.alpha))
                    )
                sketch.merge(entry["sketch"])
            for key, ring_state in (state.get("rings") or {}).items():
                ring = self._rings.get(key)
                if ring is None:
                    ring = self._rings[key] = CounterRing.from_state(ring_state)
                else:
                    ring.merge(ring_state)

    def reset(self) -> None:
        """Drop every sketch (the analytics half of ``telemetry.reset``)."""
        with self._lock:
            self.signatures = SpaceSavingSketch(self.signatures.capacity)
            self._latency = {}
            self._rings = {}
            self.requests = 0
            self.plan_hits = 0


# ---------------------------------------------------------------------------
# Process globals and the enable gate.
# ---------------------------------------------------------------------------

#: Worker-side analytics: signatures + compile-phase latencies, recorded by
#: ``execute_request`` and shipped inside ``telemetry.snapshot()``.
_WORKLOAD = WorkloadAnalytics()

#: Front-end analytics: per-endpoint latencies and 429/validation rings,
#: recorded by the HTTP layer.  Kept separate from the worker-side instance
#: so the in-process executor (one process doing both jobs) never
#: double-counts when the two views are merged for ``/timeseries``.
_SERVICE = WorkloadAnalytics()

_ENABLED = True


def workload_analytics() -> WorkloadAnalytics:
    """The process-global worker-side analytics instance."""
    return _WORKLOAD


def service_analytics() -> WorkloadAnalytics:
    """The process-global HTTP front-end analytics instance."""
    return _SERVICE


def analytics_enabled() -> bool:
    """Whether recording is on (it is by default)."""
    return _ENABLED


def set_analytics_enabled(enabled: bool) -> bool:
    """Toggle recording process-wide; returns the previous setting."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(enabled)
    return previous


@contextmanager
def analytics_disabled():
    """``with analytics_disabled():`` -- the bench's analytics-off arm."""
    previous = set_analytics_enabled(False)
    try:
        yield
    finally:
        set_analytics_enabled(previous)


# ---------------------------------------------------------------------------
# Merging and reporting.
# ---------------------------------------------------------------------------

def merge_analytics_states(states: Iterable[Mapping]) -> Dict[str, Any]:
    """Pool several ``WorkloadAnalytics.state()`` dicts into one.

    The ``telemetry.aggregate`` hook for the ``analytics`` layer: sketches
    merge sketch-wise (never summed like plain counters).  An empty input
    yields an empty state, so a pool with no usable workers still reports
    the layer.
    """
    merged = WorkloadAnalytics()
    seeded = False
    for state in states:
        if not isinstance(state, Mapping):
            continue
        if not seeded and state.get("signatures"):
            # Adopt the first real state's shape parameters so capacities
            # and ring resolutions survive the round trip.
            merged.signatures = SpaceSavingSketch(
                int(state["signatures"].get("capacity", DEFAULT_TOP_CAPACITY))
            )
            seeded = True
        merged.merge_state(state)
    return merged.state()


def analytics_report(
    state: Optional[Mapping],
    service_state: Optional[Mapping] = None,
    top: int = 10,
) -> Dict[str, Any]:
    """The ``GET /analytics`` body: top-k signatures + latency summaries.

    *state* is the pooled worker-side layer (from ``executor.stats()``),
    *service_state* the front-end instance's view; the two hold disjoint
    metric names, so merging them is lossless.
    """
    merged = merge_analytics_states(
        [s for s in (state, service_state) if isinstance(s, Mapping)]
    )
    sketch = SpaceSavingSketch.from_state(merged.get("signatures") or {})
    requests = int(merged.get("requests", 0))
    plan_hits = int(merged.get("plan_hits", 0))
    latency: Dict[str, Dict[str, Dict[str, float]]] = {}
    for entry in merged.get("latency") or ():
        summary = QuantileSketch.from_state(entry["sketch"]).summary()
        latency.setdefault(entry["name"], {})[str(entry["value"])] = summary
    return {
        "requests": requests,
        "plan_hits": plan_hits,
        "plan_hit_rate": plan_hits / requests if requests else 0.0,
        "signatures": {
            "capacity": sketch.capacity,
            "tracked": len(sketch),
            "total": sketch.total,
            "top": sketch.top(top),
        },
        "latency": latency,
    }


def timeseries_report(state: Mapping) -> Dict[str, Any]:
    """The ``GET /timeseries`` body: per-counter ``[[t, value], ...]``."""
    rings = state.get("rings") or {}
    series: Dict[str, List[List[float]]] = {}
    resolution = DEFAULT_RING_RESOLUTION_S
    slots = DEFAULT_RING_SLOTS
    for key, ring_state in sorted(rings.items()):
        ring = CounterRing.from_state(ring_state)
        resolution = ring.resolution_s
        slots = ring.slots
        series[key] = ring.points()
    return {"resolution_s": resolution, "slots": slots, "series": series}


def render_quantile_lines(
    states: Sequence[Optional[Mapping]],
    prefix: str = "repro",
    quantiles: Sequence[float] = (0.5, 0.95, 0.99),
) -> str:
    """Prometheus summary-style quantile gauges for ``GET /metrics``.

    Merges the latency sketches of the given analytics states and renders
    one contiguous sample block per metric name::

        repro_endpoint_latency_seconds{endpoint="/compile",quantile="0.5"} 0.0021

    Returns ``""`` when no sketch has samples (so the caller can append
    the result to an exposition body unconditionally).
    """
    merged = merge_analytics_states([s for s in states if isinstance(s, Mapping)])
    by_name: Dict[str, List[Tuple[str, str, QuantileSketch]]] = {}
    for entry in merged.get("latency") or ():
        sketch = QuantileSketch.from_state(entry["sketch"])
        if sketch.count == 0:
            continue
        by_name.setdefault(entry["name"], []).append(
            (entry["label"], str(entry["value"]), sketch)
        )
    lines: List[str] = []
    for name in sorted(by_name):
        metric = f"{prefix}_{sanitize_metric_name(name)}"
        lines.append(f"# HELP {metric} mergeable streaming quantiles (DDSketch-style)")
        lines.append(f"# TYPE {metric} gauge")
        for label_key, label_value, sketch in sorted(
            by_name[name], key=lambda item: item[1]
        ):
            label = f'{sanitize_metric_name(label_key)}="{escape_label_value(label_value)}"'
            for q in quantiles:
                value = sketch.quantile(q)
                lines.append(
                    f'{metric}{{{label},quantile="{q:g}"}} {format_value(value)}'
                )
            lines.append(
                f'{metric}_count{{{label}}} {format_value(float(sketch.count))}'
            )
    return "\n".join(lines) + "\n" if lines else ""

"""Span-tree tracing for one compilation (stdlib only, opt-in).

A :class:`Tracer` records a tree of timed :class:`Span` values describing
where a compile spent its time: the compile root, one span per chain
segment (with cache-hit provenance attributes), one span per solver
invocation and -- inside a solve -- one span per DP anti-diagonal with the
cells-evaluated / cells-pruned deltas attached.

Tracing is strictly opt-in (``CompileOptions(trace=True)``); the disabled
hot path never constructs a tracer, so the only cost it pays is an
``is None`` test at phase boundaries (never per DP cell).  The bench gate
``scripts/bench_generation.py --check-trace-overhead`` asserts this stays
measurably free.

Exports:

* :meth:`Tracer.to_json` -- the raw nested span tree (one JSON object);
* :meth:`Tracer.to_chrome_trace` -- Chrome trace-event format (a list of
  complete ``"ph": "X"`` events), loadable in Perfetto / ``chrome://tracing``.

All timestamps come from :func:`time.perf_counter` and are reported
relative to the tracer's creation, in seconds (microseconds on the Chrome
export, per the trace-event spec).
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

__all__ = ["Span", "Tracer"]


class Span:
    """One timed phase: a name, a ``[start, end]`` window, attributes and
    child spans.  Times are seconds relative to the owning tracer's epoch."""

    __slots__ = ("name", "start", "end", "attrs", "children")

    def __init__(self, name: str, start: float, attrs: Dict[str, Any]) -> None:
        self.name = name
        self.start = start
        self.end: Optional[float] = None
        self.attrs = attrs
        self.children: List["Span"] = []

    @property
    def duration(self) -> float:
        """Elapsed seconds (0.0 while the span is still open)."""
        return 0.0 if self.end is None else self.end - self.start

    def find(self, name: str) -> List["Span"]:
        """All descendant spans (and self) named *name*, preorder."""
        found = [self] if self.name == name else []
        for child in self.children:
            found.extend(child.find(name))
        return found

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "name": self.name,
            "start_s": self.start,
            "end_s": self.end if self.end is not None else self.start,
            "duration_s": self.duration,
        }
        if self.attrs:
            payload["attrs"] = dict(self.attrs)
        if self.children:
            payload["children"] = [child.to_dict() for child in self.children]
        return payload

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, {self.duration * 1e3:.3f} ms, "
            f"{len(self.children)} children)"
        )


class Tracer:
    """Collects one compilation's span tree.

    Spans nest through an explicit stack: :meth:`begin` opens a span as a
    child of the innermost open span (or as a root), :meth:`end` closes the
    innermost open span.  The compiler and the solvers share one tracer, so
    a solver's ``solve`` span lands under the compiler's ``segment`` span
    without either layer knowing about the other.

    The stack discipline assumes begin/end pairs are strictly nested on one
    thread -- true for the compile pipeline (the parallel tier opens its
    per-diagonal spans on the orchestrating thread, not inside cell tasks).
    """

    def __init__(self) -> None:
        self._clock = time.perf_counter
        self.epoch = self._clock()
        self.roots: List[Span] = []
        self._stack: List[Span] = []
        #: The service request id this trace belongs to, when the compile
        #: ran behind the service (set by ``execute_request``); lands in
        #: both export formats so traces join with structured log lines
        #: and ``X-Request-Id`` response headers by id.
        self.request_id: Optional[str] = None

    # -------------------------------------------------------------- recording
    def begin(self, name: str, **attrs: Any) -> Span:
        """Open a span nested under the innermost open span."""
        span = Span(name, self._clock() - self.epoch, attrs)
        (self._stack[-1].children if self._stack else self.roots).append(span)
        self._stack.append(span)
        return span

    def end(self, **attrs: Any) -> Span:
        """Close the innermost open span (merging *attrs* into it)."""
        if not self._stack:
            raise RuntimeError("Tracer.end() without a matching begin()")
        span = self._stack.pop()
        span.end = self._clock() - self.epoch
        if attrs:
            span.attrs.update(attrs)
        return span

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        """``with tracer.span("phase"):`` -- begin/end as a context manager."""
        span = self.begin(name, **attrs)
        try:
            yield span
        finally:
            # Close this span (and anything left open beneath it, so an
            # exception mid-phase cannot corrupt the nesting for the caller).
            while self._stack and self._stack[-1] is not span:
                self.end()
            if self._stack:
                self.end()

    def add_phase(
        self, parent: Span, name: str, start: float, duration: float, **attrs: Any
    ) -> Span:
        """Attach an *aggregate* phase span under *parent*.

        Used for phases whose work is interleaved with other work (kernel
        matching and property inference run per DP cell): the span carries
        the phase's accumulated duration laid out sequentially inside the
        parent window, and is marked ``aggregated=True``.
        """
        span = Span(name, start, {"aggregated": True, **attrs})
        span.end = start + duration
        parent.children.append(span)
        return span

    def current(self) -> Optional[Span]:
        """The innermost open span (``None`` at the top level)."""
        return self._stack[-1] if self._stack else None

    def finish(self) -> List[Span]:
        """Close any spans left open and return the root spans."""
        while self._stack:
            self.end()
        return self.roots

    # -------------------------------------------------------------- exporting
    def find(self, name: str) -> List[Span]:
        """All spans named *name* across the whole tree, preorder."""
        found: List[Span] = []
        for root in self.roots:
            found.extend(root.find(name))
        return found

    def to_json(self) -> Dict[str, Any]:
        """The raw span tree as one JSON-compatible dict."""
        payload: Dict[str, Any] = {
            "format": "repro-trace",
            "version": 1,
            "unit": "seconds",
            "spans": [root.to_dict() for root in self.roots],
        }
        if self.request_id is not None:
            payload["request_id"] = self.request_id
        return payload

    def to_chrome_trace(self) -> List[Dict[str, Any]]:
        """Chrome trace-event JSON (Perfetto / ``chrome://tracing``).

        Every span becomes one complete event (``"ph": "X"``) with
        microsecond timestamps; nesting is recovered by the viewer from the
        containment of the time windows on one pid/tid track.
        """
        events: List[Dict[str, Any]] = []
        if self.request_id is not None:
            # A metadata event labels the (single) process track with the
            # request id, so Perfetto shows it without opening any slice.
            events.append(
                {
                    "name": "process_labels",
                    "ph": "M",
                    "pid": 1,
                    "tid": 1,
                    "args": {"labels": f"request {self.request_id}"},
                }
            )

        def emit(span: Span) -> None:
            events.append(
                {
                    "name": span.name,
                    "ph": "X",
                    "ts": span.start * 1e6,
                    "dur": max(span.duration, 0.0) * 1e6,
                    "pid": 1,
                    "tid": 1,
                    "cat": "repro",
                    "args": {k: _json_safe(v) for k, v in span.attrs.items()},
                }
            )
            for child in span.children:
                emit(child)

        for root in self.roots:
            emit(root)
        return events

    def write(self, path: str, fmt: str = "json") -> None:
        """Write the trace to *path*: ``fmt="json"`` (raw span tree) or
        ``fmt="chrome"`` (trace-event list)."""
        if fmt == "json":
            payload: object = self.to_json()
        elif fmt == "chrome":
            payload = {"traceEvents": self.to_chrome_trace(), "displayTimeUnit": "ms"}
            if self.request_id is not None:
                payload["metadata"] = {"request_id": self.request_id}
        else:
            raise ValueError(f"unknown trace format {fmt!r}; use 'json' or 'chrome'")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, default=str)
            handle.write("\n")


def _json_safe(value: Any) -> Any:
    """Chrome trace ``args`` values must be JSON-serializable."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)

"""Structured (JSON-lines) logging setup for the service (stdlib only).

The library logs through child loggers of the ``"repro"`` namespace
(:func:`get_logger`); nothing is printed unless the hosting process opts in
with :func:`configure_logging`, which attaches one stderr handler rendering
every record as a single JSON object per line::

    {"ts": 1723111845.2, "level": "warning", "logger": "repro.service.pool",
     "event": "worker restarted", "worker": 2, "restarts": 1}

Events carry their structured fields via the stdlib ``extra=`` mechanism;
:class:`JsonFormatter` folds every non-standard record attribute into the
JSON object.  ``python -m repro.frontend --serve`` calls
:func:`configure_logging` at boot (tunable via ``--log-level``), as do the
pool's worker processes, so service events from every process land on
stderr as machine-parseable lines while library use stays silent.
"""

from __future__ import annotations

import json
import logging
import sys
import threading
import time
from typing import IO, Dict, List, Optional, Tuple, Union

__all__ = [
    "JsonFormatter",
    "TokenBucketSuppressor",
    "configure_logging",
    "get_logger",
    "log_rate_limited",
]

#: Root of the library's logger namespace.
ROOT_LOGGER = "repro"

#: Attributes every LogRecord carries; anything else came in via ``extra=``.
_STANDARD_ATTRS = frozenset(
    vars(
        logging.LogRecord("x", logging.INFO, "x", 0, "x", None, None)
    )
) | {"message", "asctime", "taskName"}


class JsonFormatter(logging.Formatter):
    """Render each record as one JSON object per line.

    ``ts`` is the epoch timestamp (``record.created``; wall-clock is correct
    here -- log timestamps must be comparable across processes, unlike the
    latency measurements, which use ``time.perf_counter``).  Non-serializable
    extra values fall back to ``str``.
    """

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "event": record.getMessage(),
        }
        for key, value in record.__dict__.items():
            if key in _STANDARD_ATTRS or key in payload:
                continue
            payload[key] = value
        if record.exc_info and record.exc_info[0] is not None:
            payload["exc_type"] = record.exc_info[0].__name__
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, default=str)


def get_logger(name: str) -> logging.Logger:
    """A library logger under the ``"repro"`` namespace.

    ``get_logger("service.pool")`` and ``get_logger("repro.service.pool")``
    name the same logger; handlers attached by :func:`configure_logging` to
    the namespace root see every event.
    """
    if name != ROOT_LOGGER and not name.startswith(ROOT_LOGGER + "."):
        name = f"{ROOT_LOGGER}.{name}"
    return logging.getLogger(name)


def configure_logging(
    level: Union[int, str] = "INFO", stream: Optional[IO[str]] = None
) -> logging.Logger:
    """Attach one JSON-lines handler to the ``"repro"`` logger namespace.

    Idempotent: calling it again reconfigures the existing handler's level
    and stream instead of stacking duplicates.  Returns the namespace root
    logger.  Events do not propagate to the (application-owned) root
    logger, so opting in never double-prints.
    """
    if isinstance(level, str):
        resolved = logging.getLevelName(level.upper())
        if not isinstance(resolved, int):
            raise ValueError(f"unknown log level {level!r}")
        level = resolved
    logger = logging.getLogger(ROOT_LOGGER)
    handler = next(
        (h for h in logger.handlers if getattr(h, "_repro_json_handler", False)),
        None,
    )
    if handler is None:
        handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
        handler._repro_json_handler = True  # type: ignore[attr-defined]
        handler.setFormatter(JsonFormatter())
        logger.addHandler(handler)
    elif stream is not None:
        handler.setStream(stream)  # type: ignore[attr-defined]
    handler.setLevel(level)
    logger.setLevel(level)
    logger.propagate = False
    return logger


def timestamp() -> float:
    """Epoch seconds for log payloads (wall clock, cross-process comparable)."""
    return time.time()


class TokenBucketSuppressor:
    """Per-key token bucket deciding whether a repeated event may log.

    A degenerate input (say, a client replaying a numerically divergent
    ``/execute`` request in a tight loop) must not storm the structured
    log with one warning per request.  Each key holds *burst* tokens
    refilled at *rate* per second; an event with no token available is
    suppressed, and the next emitted event for that key carries the number
    of suppressions since the last emission as ``suppressed_count`` -- the
    information survives, the storm does not.

    Thread-safe (the HTTP server logs from its handler threads).  *clock*
    is injectable for tests and defaults to ``time.monotonic``.
    """

    def __init__(
        self, rate: float = 0.5, burst: int = 5, clock=time.monotonic
    ) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate!r}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst!r}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._lock = threading.Lock()
        #: key -> [tokens, last refill time, suppressed since last emit]
        self._states: Dict[str, List[float]] = {}

    def check(self, key: str) -> Tuple[bool, int]:
        """``(emit, suppressed_count)`` for one occurrence of *key*.

        ``suppressed_count`` is the number of occurrences swallowed since
        the last emitted one (0 when nothing was suppressed); it is only
        non-zero when ``emit`` is true, since it resets on emission.
        """
        now = self._clock()
        with self._lock:
            state = self._states.get(key)
            if state is None:
                state = self._states[key] = [self.burst, now, 0.0]
            tokens = min(self.burst, state[0] + (now - state[1]) * self.rate)
            state[1] = now
            if tokens >= 1.0:
                state[0] = tokens - 1.0
                suppressed = int(state[2])
                state[2] = 0.0
                return True, suppressed
            state[0] = tokens
            state[2] += 1.0
            return False, 0

    def reset(self) -> None:
        with self._lock:
            self._states.clear()


#: Process-wide default suppressor shared by :func:`log_rate_limited`.
_DEFAULT_SUPPRESSOR = TokenBucketSuppressor()


def log_rate_limited(
    logger: logging.Logger,
    level: Union[int, str],
    event: str,
    *,
    key: Optional[str] = None,
    suppressor: Optional[TokenBucketSuppressor] = None,
    **fields,
) -> bool:
    """Log *event* unless its token bucket is exhausted.

    Drop-in replacement for ``logger.warning(event, extra={...})`` on
    paths a misbehaving client can trigger per-request.  The emitted
    record carries ``suppressed_count`` -- how many identical events were
    swallowed since the last one that got through.  Returns whether the
    event was emitted.
    """
    if isinstance(level, str):
        resolved = logging.getLevelName(level.upper())
        if not isinstance(resolved, int):
            raise ValueError(f"unknown log level {level!r}")
        level = resolved
    bucket = suppressor if suppressor is not None else _DEFAULT_SUPPRESSOR
    emit, suppressed = bucket.check(key if key is not None else event)
    if emit:
        logger.log(level, event, extra={**fields, "suppressed_count": suppressed})
    return emit

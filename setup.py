"""Setuptools shim for environments without PEP 517/660 build frontends.

``pip install -e .`` is the preferred installation route; this file exists so
that ``python setup.py develop`` keeps working on minimal/offline setups
where the ``wheel`` package is unavailable.
"""

from setuptools import setup

setup()

#!/usr/bin/env python
"""The ensemble Kalman filter chain ``X^b S (Y^b)^T R^-1`` (paper Section 1).

The paper motivates the generalized matrix chain problem with expressions
from real applications; one of them is the Kalman-gain-style chain
``X^b_i S_i (Y^b_i)^T R_i^-1`` from the ensemble Kalman filter [Rao et al.,
SISC 2017].  This example compiles that chain, compares the GMC solution
against the naive and recommended Julia-style evaluations, and verifies all
three numerically.

Run with::

    python examples/ensemble_kalman_filter.py
"""

from __future__ import annotations

from repro import GMCAlgorithm, Matrix, Property
from repro.algebra import Times
from repro.baselines import JULIA_NAIVE, JULIA_RECOMMENDED
from repro.codegen import generate_numpy
from repro.runtime import allclose, execute_program, instantiate_expression, time_program


def build_chain(state_dim: int, ensemble: int, observations: int):
    """The Kalman chain with a state of ``state_dim`` variables, an ensemble
    of ``ensemble`` members and ``observations`` observed quantities."""
    xb = Matrix("Xb", state_dim, ensemble)                      # forecast anomalies
    s = Matrix("S", ensemble, ensemble, {Property.SPD})         # ensemble covariance
    yb = Matrix("Yb", observations, ensemble)                   # observation anomalies
    r = Matrix("R", observations, observations, {Property.SPD})  # observation covariance
    return Times(xb, s, yb.T, r.I)


def main() -> None:
    chain = build_chain(state_dim=400, ensemble=60, observations=300)
    print(f"Kalman gain chain: K := {chain}\n")

    gmc_program = GMCAlgorithm().generate(chain)
    naive_program = JULIA_NAIVE.build_program(chain)
    recommended_program = JULIA_RECOMMENDED.build_program(chain)

    print(f"{'strategy':<16} {'kernels':<40} {'MFLOPs':>10}")
    for label, program in [
        ("GMC", gmc_program),
        ("Julia naive", naive_program),
        ("Julia recomm.", recommended_program),
    ]:
        kernels = " -> ".join(program.kernel_names)
        print(f"{label:<16} {kernels:<40} {program.total_flops / 1e6:>10.2f}")
    print()

    print("GMC-generated NumPy code:")
    print(generate_numpy(gmc_program, function_name="kalman_gain"))
    print()

    environment = instantiate_expression(chain, seed=42)
    for label, program in [
        ("GMC", gmc_program),
        ("Julia naive", naive_program),
        ("Julia recomm.", recommended_program),
    ]:
        result = execute_program(program, environment)
        timing = time_program(program, environment, repetitions=3)
        correct = allclose(chain, environment, result, rtol=1e-6, atol=1e-6)
        print(f"{label:<16} measured {timing.best * 1e3:7.2f} ms   correct: {correct}")

    print()
    print(
        "The GMC solution applies the observation-covariance solve to the small\n"
        "ensemble-sized operand instead of inverting R explicitly, and exploits\n"
        "the SPD structure of S and R through POSV/SYMM kernels."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""The ensemble Kalman filter chain ``X^b S (Y^b)^T R^-1`` (paper Section 1).

The paper motivates the generalized matrix chain problem with expressions
from real applications; one of them is the Kalman-gain-style chain
``X^b_i S_i (Y^b_i)^T R_i^-1`` from the ensemble Kalman filter [Rao et al.,
SISC 2017].  This example compiles that chain, compares the GMC solution
against the naive and recommended Julia-style evaluations, and verifies all
three numerically.

It then recompiles the same computation as a **multi-assignment DAG
program** through the segment-decomposing front end: the gain is staged as
``W := S Yb^T R^-1`` followed by ``K := Xb W``, and an ensemble-space
precision ``Pe := S (Yb^T R^-1 Yb)^-1`` exercises the synthetic-segment
extraction (the inverse of a product of rectangular factors cannot be
distributed, so the inner product becomes its own chain segment).  Both
staged compilations are asserted kernel-for-kernel identical to
hand-decomposed per-chain solves.

Run with::

    python examples/ensemble_kalman_filter.py
"""

from __future__ import annotations

import numpy as np

from repro import GMCAlgorithm, Matrix, Property, infer_properties
from repro.algebra import Times
from repro.baselines import JULIA_NAIVE, JULIA_RECOMMENDED
from repro.codegen import generate_numpy
from repro.frontend import compile_source
from repro.runtime import allclose, execute_program, instantiate_expression, time_program


def build_chain(state_dim: int, ensemble: int, observations: int):
    """The Kalman chain with a state of ``state_dim`` variables, an ensemble
    of ``ensemble`` members and ``observations`` observed quantities."""
    xb = Matrix("Xb", state_dim, ensemble)                      # forecast anomalies
    s = Matrix("S", ensemble, ensemble, {Property.SPD})         # ensemble covariance
    yb = Matrix("Yb", observations, ensemble)                   # observation anomalies
    r = Matrix("R", observations, observations, {Property.SPD})  # observation covariance
    return Times(xb, s, yb.T, r.I)


def main() -> None:
    chain = build_chain(state_dim=400, ensemble=60, observations=300)
    print(f"Kalman gain chain: K := {chain}\n")

    gmc_program = GMCAlgorithm().generate(chain)
    naive_program = JULIA_NAIVE.build_program(chain)
    recommended_program = JULIA_RECOMMENDED.build_program(chain)

    print(f"{'strategy':<16} {'kernels':<40} {'MFLOPs':>10}")
    for label, program in [
        ("GMC", gmc_program),
        ("Julia naive", naive_program),
        ("Julia recomm.", recommended_program),
    ]:
        kernels = " -> ".join(program.kernel_names)
        print(f"{label:<16} {kernels:<40} {program.total_flops / 1e6:>10.2f}")
    print()

    print("GMC-generated NumPy code:")
    print(generate_numpy(gmc_program, function_name="kalman_gain"))
    print()

    environment = instantiate_expression(chain, seed=42)
    for label, program in [
        ("GMC", gmc_program),
        ("Julia naive", naive_program),
        ("Julia recomm.", recommended_program),
    ]:
        result = execute_program(program, environment)
        timing = time_program(program, environment, repetitions=3)
        correct = allclose(chain, environment, result, rtol=1e-6, atol=1e-6)
        print(f"{label:<16} measured {timing.best * 1e3:7.2f} ms   correct: {correct}")

    print()
    print(
        "The GMC solution applies the observation-covariance solve to the small\n"
        "ensemble-sized operand instead of inverting R explicitly, and exploits\n"
        "the SPD structure of S and R through POSV/SYMM kernels."
    )

    dag_section(state_dim=400, ensemble=60, observations=300)


def dag_section(state_dim: int, ensemble: int, observations: int) -> None:
    """Compile the filter as a DAG program and check it against
    hand-decomposed per-chain solves and a NumPy reference."""
    print()
    print("=== the same filter as a multi-assignment DAG program ===\n")

    source = f"""
Matrix Xb ({state_dim}, {ensemble}) <>
Matrix S ({ensemble}, {ensemble}) <spd>
Matrix Yb ({observations}, {ensemble}) <>
Matrix R ({observations}, {observations}) <spd>
W := S * Yb^T * R^-1
K := Xb * W
Pe := S * (Yb^T * R^-1 * Yb)^-1
"""
    print(source.strip())
    print()

    result = compile_source(source)
    for compiled in result.assignments:
        print(compiled.summary())

    # Hand decomposition of the same program: solve each stage as its own
    # chain, materializing the intermediate W with its inferred properties.
    xb = Matrix("Xb", state_dim, ensemble)
    s = Matrix("S", ensemble, ensemble, {Property.SPD})
    yb = Matrix("Yb", observations, ensemble)
    r = Matrix("R", observations, observations, {Property.SPD})
    gmc = GMCAlgorithm()

    w_chain = Times(s, yb.T, r.I)
    w = Matrix("W", ensemble, observations, infer_properties(w_chain))
    hand_w = gmc.solve(w_chain).kernel_sequence()
    hand_k = gmc.solve(Times(xb, w)).kernel_sequence()
    assert result.assignment("W").kernel_sequence == hand_w, (
        result.assignment("W").kernel_sequence, hand_w)
    assert result.assignment("K").kernel_sequence == hand_k, (
        result.assignment("K").kernel_sequence, hand_k)

    # Pe's inline inverse forces a synthetic segment for the (full-rank,
    # ensemble-sized) inner product Yb^T R^-1 Yb; hand-decompose it the
    # same way and compare kernel-for-kernel.
    inner_chain = Times(yb.T, r.I, yb)
    inner = Matrix("_inner", ensemble, ensemble, infer_properties(inner_chain))
    hand_inner = gmc.solve(inner_chain).kernel_sequence()
    hand_pe = gmc.solve(Times(s, inner.I)).kernel_sequence()
    synthetic = [c for c in result.assignments if c.synthetic]
    assert len(synthetic) == 1, [c.target for c in synthetic]
    assert synthetic[0].kernel_sequence == hand_inner, (
        synthetic[0].kernel_sequence, hand_inner)
    assert result.assignment("Pe").kernel_sequence == hand_pe, (
        result.assignment("Pe").kernel_sequence, hand_pe)
    print("hand-decomposed per-chain solves: kernel sequences identical\n")

    # Numerical check of the stitched program against plain NumPy.
    environment = instantiate_expression(
        Times(xb, s, yb.T, r.I), seed=42)
    stitched = result.stitched_program()
    print(f"stitched program output: {stitched.output} "
          f"({len(stitched.calls)} kernel calls)")
    pe = execute_program(stitched, environment)
    xb_v, s_v = environment["Xb"], environment["S"]
    yb_v, r_v = environment["Yb"], environment["R"]
    reference = s_v @ np.linalg.inv(yb_v.T @ np.linalg.solve(r_v, yb_v))
    error = np.max(np.abs(pe - reference))
    print(f"max |Pe - NumPy reference| = {error:.3e}")
    assert error < 1e-8
    print()
    print(
        "The DAG front end found the shared work itself: the W stage is\n"
        "compiled once and K consumes its result operand, while the inline\n"
        "inverse in Pe was extracted into a synthetic segment and solved\n"
        "with the same kernels a hand decomposition would choose."
    )


if __name__ == "__main__":
    main()

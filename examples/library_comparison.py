#!/usr/bin/env python
"""A miniature version of the paper's evaluation (Figures 8 and 9).

Generates a batch of random generalized matrix chains (the Section 4
distribution, scaled down so the example finishes in well under a minute),
runs the GMC algorithm and all nine baseline library simulators on each,
executes every generated program on random operands, and prints the
aggregated speedups and statistics next to the values the paper reports.

Run with::

    python examples/library_comparison.py [number-of-chains]
"""

from __future__ import annotations

import sys

from repro.experiments.figures import figure8, figure9
from repro.experiments.harness import HarnessConfig, run_experiment
from repro.experiments.workload import ChainGenerator


def main(count: int = 25) -> None:
    generator = ChainGenerator(
        min_length=3,
        max_length=8,
        size_choices=(25, 50, 75, 100, 125, 150),
        seed=2018,
    )
    problems = generator.generate_many(count)
    print(f"generated {count} random chains, e.g.:")
    for problem in problems[:3]:
        print(f"  {problem}")
    print()

    config = HarnessConfig(execute=True, validate=True, repetitions=1, seed=0)
    experiment = run_experiment(problems, config=config)

    print(figure8(experiment=experiment, execute=True).text)
    print()
    print(figure9(experiment=experiment, execute=True).text)
    print()

    correctness = experiment.correctness_summary()
    print("numerical validation (correct / checked):")
    for strategy, (correct, checked) in correctness.items():
        print(f"  {strategy:<24} {correct}/{checked}")
    print()
    stats = experiment.generation_time_statistics()
    print(
        f"GMC generation time: mean {stats['mean'] * 1e3:.2f} ms, "
        f"max {stats['max'] * 1e3:.2f} ms "
        "(paper: 30 ms average, < 70 ms max on chains of length 3-10)"
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 25)

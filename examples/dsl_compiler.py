#!/usr/bin/env python
"""Using the textual front-end: from a Linnea-style problem description to code.

The paper's compiler takes operand definitions (Fig. 2) and assignments
(Fig. 1) as input.  This example feeds the equivalent textual description
through the DSL parser, compiles every assignment with the GMC algorithm and
prints the generated Julia-style and NumPy code.

Run with::

    python examples/dsl_compiler.py
"""

from __future__ import annotations

from repro import parse_program
from repro.codegen import generate_julia, generate_numpy
from repro.core import GMCAlgorithm

SOURCE = """
# Generalized least squares:  b := (X^T M^-1 X)^-1 X^T M^-1 y
Matrix X (2000, 80) <FullRank>
Matrix M (2000, 2000) <SPD>
Vector y (2000)

# A blocked triangular-system update:  Z := L22^-1 L21 L11^-1 B
Matrix L11 (400, 400) <LowerTriangular, NonSingular>
Matrix L21 (400, 400) <>
Matrix L22 (400, 400) <LowerTriangular, NonSingular>
Matrix B (400, 160) <>

W := X^T * M^-1 * y
Z := L22^-1 * L21 * L11^-1 * B
"""


def main() -> None:
    program = parse_program(SOURCE)
    print("parsed operands:")
    for name, operand in program.operands.items():
        properties = ", ".join(sorted(p.name for p in operand.properties)) or "-"
        print(f"  {name:<4} {operand.rows:>5} x {operand.columns:<5} {properties}")
    print()

    gmc = GMCAlgorithm()
    for target, expression in program.assignments:
        print("=" * 72)
        print(f"{target} := {expression}")
        solution = gmc.solve(expression)
        print(f"  parenthesization: {solution.parenthesization()}")
        print(f"  kernels:          {' -> '.join(solution.kernel_sequence())}")
        print(f"  MFLOPs:           {solution.total_flops / 1e6:.2f}")
        print(f"  generation time:  {solution.generation_time * 1e3:.2f} ms")
        print()
        kernel_program = solution.program()
        print(generate_julia(kernel_program, function_name=f"compute_{target}"))
        print()
        print(generate_numpy(kernel_program, function_name=f"compute_{target.lower()}"))
        print()


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""The execution tier end to end: compile, emit, load, run, validate.

The GMC compiler answers *how* to compute a matrix program; this example
actually computes one.  It compiles a small Kalman-style DAG, emits it as a
standalone Python module (no ``repro`` import needed at runtime -- only
NumPy/SciPy, with an optional numba fast path probed at import), loads it
through the signature-keyed module cache, runs it on seeded
property-respecting random operands, and cross-checks the answer against
the interpreted executor and the sequential reference evaluator.

Run with::

    PYTHONPATH=src python examples/execute_module.py

The same round trip is one HTTP call against a running service
(``python -m repro.frontend --serve``)::

    curl -X POST http://127.0.0.1:8077/execute \\
         -d '{"source": "...", "execute": {"seed": 7, "engine": "both"}}'
"""

from __future__ import annotations

import numpy as np

from repro.exec import default_loader, plan_signature
from repro.exec.api import ExecuteRequest, run_execute_request
from repro.frontend import Compiler
from repro.runtime.executor import Executor
from repro.runtime.operands import random_environment

SOURCE = """
Matrix H (50, 90) <full_rank>
Matrix P (90, 90) <spd>
Matrix B (50, 40) <full_rank>
G := H * P * H^T
J := G^-1 * B
K := P * H^T * (H * P^-1 * H^T)^-1
"""


def main() -> int:
    compiler = Compiler()
    result = compiler.compile(SOURCE)

    # ------------------------------------------------ emit a standalone module
    source = result.emit_stitched("module")
    lines = source.splitlines()
    print(f"emitted module: {len(lines)} lines, plan {plan_signature(result)[:12]}")
    for line in lines:
        if line.startswith(("ENTRYPOINT", "ARGUMENTS", "RESULT", "IMPLEMENTATION")):
            print(f"  {line}")

    # ------------------------------------------- load (cached) and run directly
    loader = default_loader()
    loaded = loader.load(source, plan_signature(result))
    environment = dict(random_environment(result, seed=7))
    value = loaded.run(environment)
    print(
        f"module run [{loaded.implementation}]: K is "
        f"{value.shape[0]} x {value.shape[1]}, |K|_F = {np.linalg.norm(value):.6f}"
    )

    # ------------------------------------- cross-check the interpreted executor
    interpreted = Executor().execute(result.stitched_program(), dict(environment))
    print(f"interpreter agrees: {np.allclose(value, interpreted)}")

    # ------------------------- the same round trip through the request pipeline
    response = run_execute_request(
        ExecuteRequest.from_dict(
            {"source": SOURCE, "execute": {"seed": 7, "engine": "both"}}
        ),
        compiler=compiler,
    )
    print(
        f"run_execute_request: ok={response.ok} validated={response.validated} "
        f"engines_match={response.engines_match} "
        f"max_rel_error={response.max_rel_error:.2e} "
        f"module_cache_hit={response.module_cache_hit}"
    )
    timing = ", ".join(
        f"{key[:-2]} {seconds * 1e3:.2f} ms"
        for key, seconds in response.timing.items()
        if key.endswith("_s")
    )
    print(f"phases: {timing}")
    return 0 if response.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python
"""Property propagation on the generalized-eigenproblem reduction ``L^-1 A L^-T``.

Section 3.2 of the paper uses this expression to argue for *symbolic*
property inference: when ``A' := L^-1 A L^-T`` is computed in floating-point
arithmetic by solving two triangular systems, the symmetry of the result is
destroyed by round-off, a runtime property check fails, and the downstream
eigensolver has to fall back to the (about three times more expensive)
non-symmetric algorithm.  Symbolic inference knows the result is symmetric
regardless of how it is computed.

This example demonstrates exactly that: the symbolic engine infers symmetry,
the numerical result is *not* exactly symmetric, and the GMC algorithm still
maps the chain onto two TRSM calls.

Run with::

    python examples/generalized_eigenproblem.py
"""

from __future__ import annotations

import numpy as np

from repro import GMCAlgorithm, Matrix, Property, infer_properties
from repro.algebra import Times
from repro.runtime import execute_program, instantiate_expression


def main() -> None:
    n = 300
    lower = Matrix("L", n, n, {Property.LOWER_TRIANGULAR, Property.NON_SINGULAR})
    a = Matrix("A", n, n, {Property.SYMMETRIC})
    reduction = Times(lower.I, a, lower.invT)
    print(f"reduction: A' := {reduction}\n")

    # Symbolic inference: the result is symmetric by construction.
    inferred = infer_properties(reduction)
    print("symbolically inferred properties of A':")
    for prop in sorted(p.name for p in inferred):
        print(f"  - {prop}")
    assert Property.SYMMETRIC in inferred
    print()

    # Compile and execute.
    gmc = GMCAlgorithm()
    solution = gmc.solve(reduction)
    print(f"parenthesization: {solution.parenthesization()}")
    print(f"kernels:          {' -> '.join(solution.kernel_sequence())}")
    print(f"MFLOPs:           {solution.total_flops / 1e6:.1f}\n")

    environment = instantiate_expression(reduction, seed=1)
    result = execute_program(solution.program(), environment)

    asymmetry = np.max(np.abs(result - result.T))
    print(f"max |A' - A'^T| of the computed result: {asymmetry:.3e}")
    print("  -> tiny but non-zero: a runtime check for exact symmetry fails,")
    print("     while the symbolic inference above is exact and free.\n")

    # What the downstream eigensolver choice costs (Section 3.2): a symmetric
    # eigensolver needs about 4/3 n^3 FLOPs for the tridiagonal reduction, a
    # non-symmetric one about 10 n^3 for the Hessenberg + QR iteration.
    symmetric_eig = 4.0 / 3.0 * n ** 3
    nonsymmetric_eig = 10.0 * n ** 3
    print("downstream consequence for the eigensolver:")
    print(f"  symmetric eigensolver     ~ {symmetric_eig / 1e6:8.1f} MFLOPs")
    print(f"  non-symmetric eigensolver ~ {nonsymmetric_eig / 1e6:8.1f} MFLOPs")
    print(f"  ratio                     ~ {nonsymmetric_eig / symmetric_eig:.1f}x")
    print()
    print(
        "Because the GMC framework tracks symmetry symbolically, a compiler\n"
        "built on it (Linnea) can keep using the symmetric eigensolver."
    )


if __name__ == "__main__":
    main()

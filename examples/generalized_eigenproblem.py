#!/usr/bin/env python
"""Property propagation on the generalized-eigenproblem reduction ``L^-1 A L^-T``.

Section 3.2 of the paper uses this expression to argue for *symbolic*
property inference: when ``A' := L^-1 A L^-T`` is computed in floating-point
arithmetic by solving two triangular systems, the symmetry of the result is
destroyed by round-off, a runtime property check fails, and the downstream
eigensolver has to fall back to the (about three times more expensive)
non-symmetric algorithm.  Symbolic inference knows the result is symmetric
regardless of how it is computed.

This example demonstrates exactly that: the symbolic engine infers symmetry,
the numerical result is *not* exactly symmetric, and the GMC algorithm still
maps the chain onto two TRSM calls.

Run with::

    python examples/generalized_eigenproblem.py
"""

from __future__ import annotations

import numpy as np

from repro import GMCAlgorithm, Matrix, Property, infer_properties
from repro.algebra import Times
from repro.frontend import compile_source
from repro.runtime import execute_program, instantiate_expression


def main() -> None:
    n = 300
    lower = Matrix("L", n, n, {Property.LOWER_TRIANGULAR, Property.NON_SINGULAR})
    a = Matrix("A", n, n, {Property.SYMMETRIC})
    reduction = Times(lower.I, a, lower.invT)
    print(f"reduction: A' := {reduction}\n")

    # Symbolic inference: the result is symmetric by construction.
    inferred = infer_properties(reduction)
    print("symbolically inferred properties of A':")
    for prop in sorted(p.name for p in inferred):
        print(f"  - {prop}")
    assert Property.SYMMETRIC in inferred
    print()

    # Compile and execute.
    gmc = GMCAlgorithm()
    solution = gmc.solve(reduction)
    print(f"parenthesization: {solution.parenthesization()}")
    print(f"kernels:          {' -> '.join(solution.kernel_sequence())}")
    print(f"MFLOPs:           {solution.total_flops / 1e6:.1f}\n")

    environment = instantiate_expression(reduction, seed=1)
    result = execute_program(solution.program(), environment)

    asymmetry = np.max(np.abs(result - result.T))
    print(f"max |A' - A'^T| of the computed result: {asymmetry:.3e}")
    print("  -> tiny but non-zero: a runtime check for exact symmetry fails,")
    print("     while the symbolic inference above is exact and free.\n")

    # What the downstream eigensolver choice costs (Section 3.2): a symmetric
    # eigensolver needs about 4/3 n^3 FLOPs for the tridiagonal reduction, a
    # non-symmetric one about 10 n^3 for the Hessenberg + QR iteration.
    symmetric_eig = 4.0 / 3.0 * n ** 3
    nonsymmetric_eig = 10.0 * n ** 3
    print("downstream consequence for the eigensolver:")
    print(f"  symmetric eigensolver     ~ {symmetric_eig / 1e6:8.1f} MFLOPs")
    print(f"  non-symmetric eigensolver ~ {nonsymmetric_eig / 1e6:8.1f} MFLOPs")
    print(f"  ratio                     ~ {nonsymmetric_eig / symmetric_eig:.1f}x")
    print()
    print(
        "Because the GMC framework tracks symmetry symbolically, a compiler\n"
        "built on it (Linnea) can keep using the symmetric eigensolver."
    )

    dag_section(n)


def dag_section(n: int) -> None:
    """Compile the reduction through the DAG front end, both as one chain
    and staged by hand, and compare against per-chain solves."""
    print()
    print("=== the reduction through the DAG front end ===\n")

    lower = Matrix("L", n, n, {Property.LOWER_TRIANGULAR, Property.NON_SINGULAR})
    a = Matrix("A", n, n, {Property.SYMMETRIC})
    gmc = GMCAlgorithm()

    # One-shot: the whole expression as a single assignment -- the DSL
    # program must compile to exactly the kernels of the direct solve.
    one_shot = compile_source(f"""
Matrix L ({n}, {n}) <lower_triangular, non_singular>
Matrix A ({n}, {n}) <symmetric>
Ap := L^-1 * A * L^-T
""")
    direct = gmc.solve(Times(lower.I, a, lower.invT)).kernel_sequence()
    assert one_shot.assignment("Ap").kernel_sequence == direct, (
        one_shot.assignment("Ap").kernel_sequence, direct)
    print(f"one-shot   Ap := L^-1 * A * L^-T   kernels: "
          f"{' -> '.join(direct)}")

    # Staged: the two triangular solves written as separate assignments,
    # the second referencing the first's result.
    staged = compile_source(f"""
Matrix L ({n}, {n}) <lower_triangular, non_singular>
Matrix A ({n}, {n}) <symmetric>
C := L^-1 * A
Ap := C * L^-T
""")
    c_chain = Times(lower.I, a)
    c = Matrix("C", n, n, infer_properties(c_chain))
    hand_c = gmc.solve(c_chain).kernel_sequence()
    hand_ap = gmc.solve(Times(c, lower.invT)).kernel_sequence()
    assert staged.assignment("C").kernel_sequence == hand_c, (
        staged.assignment("C").kernel_sequence, hand_c)
    assert staged.assignment("Ap").kernel_sequence == hand_ap, (
        staged.assignment("Ap").kernel_sequence, hand_ap)
    print(f"staged     C := L^-1 * A; Ap := C * L^-T   kernels: "
          f"{' -> '.join(hand_c)} | {' -> '.join(hand_ap)}")
    print("hand-decomposed per-chain solves: kernel sequences identical\n")

    # Both variants compute the same matrix.  (A *random* triangular
    # matrix of this size is catastrophically ill-conditioned, so build a
    # diagonally dominant L for the numerical comparison.)
    rng = np.random.default_rng(1)
    l_value = np.tril(rng.standard_normal((n, n)))
    np.fill_diagonal(l_value, np.sum(np.abs(l_value), axis=1) + 1.0)
    a_value = rng.standard_normal((n, n))
    a_value = (a_value + a_value.T) / 2.0
    environment = {"L": l_value, "A": a_value}
    one_shot_value = execute_program(one_shot.stitched_program(), environment)
    staged_value = execute_program(staged.stitched_program(), environment)
    reference = np.linalg.solve(l_value, a_value) @ np.linalg.inv(l_value).T
    assert np.max(np.abs(one_shot_value - staged_value)) < 1e-10
    assert np.max(np.abs(one_shot_value - reference)) < 1e-10

    # ... but only the one-shot compile *knows* the result is symmetric:
    # the staged program's C is just a general temporary, so symmetry of
    # Ap is no longer symbolically inferable.  Section 3.2's argument for
    # compiling whole expressions applies to hand-staging too.
    inferred_staged = infer_properties(Times(c, lower.invT))
    print("symbolic symmetry of Ap:")
    print(f"  one-shot expression: "
          f"{Property.SYMMETRIC in infer_properties(Times(lower.I, a, lower.invT))}")
    print(f"  hand-staged via C:   {Property.SYMMETRIC in inferred_staged}")
    print()
    print(
        "Staging by hand loses the symmetry inference -- another reason to\n"
        "hand whole expression DAGs to the compiler and let it decompose."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Batch compilation through the warm-cache compilation service.

A client of the paper's compiler rarely asks one question: it submits many
structurally similar problems (the same solver pipeline instantiated over
different data sizes and operand sets).  This example builds a batch of 20
such chains -- identical structure, fresh operand names each time -- and
submits it through the service's worker pool, then prints the kernel
sequences and the pooled cache telemetry that ``GET /stats`` would serve
over HTTP.

Run with::

    PYTHONPATH=src python examples/service_batch.py              # 2 workers
    PYTHONPATH=src python examples/service_batch.py --in-process # no procs

The same batch can be driven over HTTP against
``python -m repro.frontend --serve``::

    curl -X POST http://127.0.0.1:8077/batch \\
         -d '{"requests": [{"source": "Matrix A (100,100) <spd>\\n..."}]}'
"""

from __future__ import annotations

import argparse

from repro.service import CompileOptions, CompileRequest, create_executor

TEMPLATE = """
Matrix A{t} (300, 300) <spd>
Matrix B{t} (300, 150) <>
Matrix C{t} (150, 150) <lower_triangular, non_singular>
Matrix D{t} (150, 90) <>
X := A{t}^-1 * B{t} * C{t}^-1 * D{t}
"""


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--batch", type=int, default=20)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument(
        "--in-process",
        action="store_true",
        help="run synchronously in this process instead of a worker pool",
    )
    args = parser.parse_args()

    options = CompileOptions(emit=("julia",))
    requests = [
        CompileRequest(source=TEMPLATE.replace("{t}", str(index)), options=options)
        for index in range(args.batch)
    ]

    with create_executor(workers=args.workers, in_process=args.in_process) as executor:
        responses = executor.compile_batch(requests)
        stats = executor.stats()

    print(f"compiled {len(responses)} structurally similar chains "
          f"({stats['mode']}, {stats['workers']} workers)\n")
    for index, response in enumerate(responses):
        result = response.assignment("X")
        worker = "-" if response.worker is None else response.worker
        print(
            f"  [{index:2d}] worker {worker}  "
            f"{' -> '.join(result.kernels):30s} {result.flops:12.4g} FLOPs  "
            f"{result.generation_time_s * 1e3:6.2f} ms"
        )

    print("\nfirst generated kernel program (Julia):\n")
    print(responses[0].assignment("X").code["julia"])

    print("pooled cache telemetry (what GET /stats serves):")
    for layer, entry in stats["caches"].items():
        if not isinstance(entry, dict):
            continue
        print(
            f"  {layer:12s} hit rate {entry.get('hit_rate', 0.0):5.3f}  "
            f"hits {entry.get('hits', 0):6d}  misses {entry.get('misses', 0):5d}  "
            f"size {entry.get('size', 0):6d}  evictions {entry.get('evictions', 0)}"
        )
    print(f"  pool counters: {stats['pool']}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

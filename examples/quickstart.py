#!/usr/bin/env python
"""Quickstart: compile a generalized matrix chain into a kernel program.

This walks through the core workflow of the library on the running example
of the paper (Table 2): computing ``X := A^-1 B C^T`` where ``A`` is
symmetric positive definite and ``C`` is lower triangular.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import GMCAlgorithm, Matrix, Property
from repro.codegen import generate_julia, generate_numpy
from repro.runtime import allclose, execute_program, instantiate_expression


def main() -> None:
    # 1. Declare the operands: name, shape and structural properties.
    n, m = 1000, 800
    a = Matrix("A", n, n, {Property.SPD})
    b = Matrix("B", n, m)
    c = Matrix("C", m, m, {Property.LOWER_TRIANGULAR, Property.NON_SINGULAR})

    # 2. Write the expression.  ``.I`` is the inverse, ``.T`` the transpose.
    expression = a.I * b * c.T
    print(f"expression: X := {expression}\n")

    # 3. Run the Generalized Matrix Chain algorithm.
    gmc = GMCAlgorithm()                     # FLOP-count metric by default
    solution = gmc.solve(expression)
    print(solution)
    print(f"  generation time:  {solution.generation_time * 1e3:.2f} ms\n")

    # 4. Materialize the kernel program and look at the generated code.
    program = solution.program()
    print("kernel program:")
    print(program)
    print()
    print("Julia-style code (cf. Table 2 of the paper):")
    print(generate_julia(program))
    print()
    print("NumPy code:")
    print(generate_numpy(program))
    print()

    # 5. Execute the program on (smaller) random operands and validate it
    #    against a direct evaluation of the expression.
    small_a = Matrix("A", 200, 200, {Property.SPD})
    small_b = Matrix("B", 200, 150)
    small_c = Matrix("C", 150, 150, {Property.LOWER_TRIANGULAR, Property.NON_SINGULAR})
    small_expression = small_a.I * small_b * small_c.T
    small_program = gmc.generate(small_expression)
    environment = instantiate_expression(small_expression, seed=0)
    result = execute_program(small_program, environment)
    print(f"executed on 200x200 operands, result shape {result.shape}")
    print(f"matches the direct evaluation: {allclose(small_expression, environment, result)}")

    # 6. The same with a different cost metric: estimated execution time.
    timed = GMCAlgorithm(metric="time").solve(expression)
    print()
    print(f"time-metric parenthesization: {timed.parenthesization()}")
    print(f"estimated execution time:     {timed.optimal_cost * 1e3:.2f} ms (modeled)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Quickstart: compile a generalized matrix chain into a kernel program.

This walks through the core workflow of the library on the running example
of the paper (Table 2): computing ``X := A^-1 B C^T`` where ``A`` is
symmetric positive definite and ``C`` is lower triangular.

The front door is the :class:`repro.Compiler` session configured by one
:class:`repro.CompileOptions` value -- the same objects behind the CLI
(``python -m repro.frontend``) and the HTTP compilation service.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import CompileOptions, Compiler, Matrix, Property
from repro.runtime import allclose, execute_program, instantiate_expression


def main() -> None:
    # 1. Declare the operands: name, shape and structural properties.
    n, m = 1000, 800
    a = Matrix("A", n, n, {Property.SPD})
    b = Matrix("B", n, m)
    c = Matrix("C", m, m, {Property.LOWER_TRIANGULAR, Property.NON_SINGULAR})

    # 2. Write the expression.  ``.I`` is the inverse, ``.T`` the transpose.
    expression = a.I * b * c.T
    print(f"expression: X := {expression}\n")

    # 3. Build a compilation session and compile the expression.  The
    #    session owns the kernel catalog and every warm cache; the options
    #    value is the single place behavior is configured.
    compiler = Compiler(CompileOptions(metric="flops"))
    result = compiler.compile(expression)
    compiled = result.assignment("X")
    print(compiled.solution)
    print(f"  generation time:  {compiled.solution.generation_time * 1e3:.2f} ms\n")

    # 4. Look at the kernel program and the generated code.  Emitters are
    #    looked up by name in the codegen registry; result.emit("julia")
    #    and result.emit("numpy") use the two built-in back-ends.
    print("kernel program:")
    print(compiled.program)
    print()
    print("Julia-style code (cf. Table 2 of the paper):")
    print(result.emit("julia"))
    print()
    print("NumPy code:")
    print(result.emit("numpy"))
    print()

    # 5. Execute the program on (smaller) random operands and validate it
    #    against a direct evaluation of the expression.
    small_a = Matrix("A", 200, 200, {Property.SPD})
    small_b = Matrix("B", 200, 150)
    small_c = Matrix("C", 150, 150, {Property.LOWER_TRIANGULAR, Property.NON_SINGULAR})
    small_expression = small_a.I * small_b * small_c.T
    small_program = compiler.compile(small_expression).assignment("X").program
    environment = instantiate_expression(small_expression, seed=0)
    result_array = execute_program(small_program, environment)
    print(f"executed on 200x200 operands, result shape {result_array.shape}")
    print(
        f"matches the direct evaluation: "
        f"{allclose(small_expression, environment, result_array)}"
    )

    # 6. The same session with a different cost metric: per-call options
    #    override the session options (the catalog and caches stay shared).
    timed = compiler.solve(expression, metric="time")
    print()
    print(f"time-metric parenthesization: {timed.parenthesization()}")
    print(f"estimated execution time:     {timed.optimal_cost * 1e3:.2f} ms (modeled)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""The blocked triangular-inversion chain ``L22^-1 L21 L11^-1 L10``.

Section 1 of the paper lists this chain -- part of a blocked algorithm for
inverting a triangular matrix [Bientinesi, Gunter, van de Geijn 2008] -- as a
typical generalized matrix chain: short, with two inverted triangular
operands.  This example shows how the GMC algorithm maps it onto two TRSM
calls and one GEMM, and how the choice changes when the triangular structure
is hidden.

Run with::

    python examples/triangular_matrix_inversion.py
"""

from __future__ import annotations

from repro import CompileOptions, GMCAlgorithm, Matrix, Property
from repro.algebra import Times
from repro.codegen import generate_julia
from repro.kernels import default_catalog
from repro.runtime import allclose, execute_program, instantiate_expression


def build_chain(block: int, panel: int, structured: bool = True):
    properties = (
        {Property.LOWER_TRIANGULAR, Property.NON_SINGULAR}
        if structured
        else {Property.NON_SINGULAR}
    )
    l22 = Matrix("L22", block, block, properties)
    l21 = Matrix("L21", block, block)
    l11 = Matrix("L11", block, block, properties)
    l10 = Matrix("L10", block, panel)
    return Times(l22.I, l21, l11.I, l10)


def main() -> None:
    block, panel = 500, 200

    structured = build_chain(block, panel, structured=True)
    plain = build_chain(block, panel, structured=False)

    gmc = GMCAlgorithm()
    structured_solution = gmc.solve(structured)
    plain_solution = gmc.solve(plain)

    print(f"chain: {structured}\n")
    print("with triangular structure declared:")
    print(f"  parenthesization: {structured_solution.parenthesization()}")
    print(f"  kernels:          {' -> '.join(structured_solution.kernel_sequence())}")
    print(f"  MFLOPs:           {structured_solution.total_flops / 1e6:.1f}")
    print()
    print("with the structure hidden (operands treated as general):")
    print(f"  parenthesization: {plain_solution.parenthesization()}")
    print(f"  kernels:          {' -> '.join(plain_solution.kernel_sequence())}")
    print(f"  MFLOPs:           {plain_solution.total_flops / 1e6:.1f}")
    print()
    ratio = plain_solution.total_flops / structured_solution.total_flops
    print(f"declaring the structure saves a factor of {ratio:.2f} in FLOPs\n")

    print("generated code (structured version):")
    print(generate_julia(structured_solution.program(), function_name="block_inverse"))
    print()

    # An ablation: what does the solution look like if the catalog has no
    # property-specialized kernels at all (Section 3.2 motivation)?
    generic_solution = GMCAlgorithm(
        CompileOptions(catalog=default_catalog(include_specialized=False))
    ).solve(structured)
    print(
        "without specialized kernels in the catalog the same chain needs "
        f"{generic_solution.total_flops / 1e6:.1f} MFLOPs "
        f"({' -> '.join(generic_solution.kernel_sequence())})"
    )
    print()

    # Validate numerically on a smaller instance.
    small = build_chain(80, 40, structured=True)
    environment = instantiate_expression(small, seed=3)
    program = gmc.generate(small)
    result = execute_program(program, environment)
    print(f"numerical check on an 80x80 instance: {allclose(small, environment, result)}")


if __name__ == "__main__":
    main()

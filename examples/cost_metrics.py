#!/usr/bin/env python
"""Choosing solutions with different cost metrics (paper Section 3.3).

The GMC algorithm minimizes an arbitrary, user-selected cost metric.  This
example compiles the same two chains under several metrics -- FLOP count,
a roofline execution-time model, memory traffic, a numerical-accuracy
penalty and a lexicographic (FLOPs, accuracy) vector metric -- and shows how
the chosen kernels and parenthesizations react.

Run with::

    python examples/cost_metrics.py
"""

from __future__ import annotations

from repro import CompileOptions, GMCAlgorithm, Matrix, Property
from repro.algebra import Times
from repro.cost import (
    AccuracyMetric,
    FlopCount,
    MemoryMetric,
    PerformanceMetric,
    VectorMetric,
)


def report(title: str, expression, metrics) -> None:
    print(title)
    print(f"  expression: {expression}")
    print(f"  {'metric':<22} {'parenthesization':<42} {'kernels':<28} {'cost'}")
    for name, metric in metrics:
        solution = GMCAlgorithm(CompileOptions(metric=metric)).solve(expression)
        kernels = " -> ".join(solution.kernel_sequence())
        cost = solution.optimal_cost
        cost_text = (
            f"({cost[0]:.3g}, {cost[1]:.3g})" if isinstance(cost, tuple) else f"{cost:.4g}"
        )
        print(f"  {name:<22} {solution.parenthesization():<42} {kernels:<28} {cost_text}")
    print()


def main() -> None:
    metrics = [
        ("flops", FlopCount()),
        ("time (roofline)", PerformanceMetric()),
        ("memory traffic", MemoryMetric()),
        ("accuracy penalty", AccuracyMetric()),
        ("(flops, accuracy)", VectorMetric([FlopCount(), AccuracyMetric()])),
    ]

    # The Section 3.3 chain: ABCDE with sizes 130, 700, 383, 1340, 193, 900.
    sizes = [130, 700, 383, 1340, 193, 900]
    chain = Times(*[Matrix(name, sizes[i], sizes[i + 1]) for i, name in enumerate("ABCDE")])
    report("Section 3.3 example: ABCDE", chain, metrics)

    # A chain with an inverse: the accuracy-aware metrics prefer POSV over the
    # LU-based or explicitly-inverting alternatives.
    a = Matrix("A", 600, 600, {Property.SPD})
    b = Matrix("B", 600, 300)
    c = Matrix("C", 300, 300, {Property.UPPER_TRIANGULAR, Property.NON_SINGULAR})
    report("SPD solve chain: A^-1 B C^T", Times(a.I, b, c.T), metrics)

    # A matrix-vector chain: under the time metric the memory-bound GEMV
    # kernels dominate the estimate, under FLOPs they look almost free.
    m1 = Matrix("M1", 1500, 1200)
    m2 = Matrix("M2", 1200, 900)
    v = Matrix("v", 900, 1)
    report("matrix-vector chain: M1 M2 v", Times(m1, m2, v), metrics)


if __name__ == "__main__":
    main()

"""Benchmark / reproduction of Figure 9: per-problem execution times.

Paper: over 100 random chains, the GMC-generated code is the fastest in 86%
of the cases, never more than a factor 1.66 slower than the best solution,
and for at least 10% of the problems some baseline is more than 10x slower.

The modeled-time reproduction makes GMC win essentially always (all
strategies share one cost model); the measured-time run re-introduces real
execution effects.  The bench checks the paper's three statistics in the
direction that must hold for the reproduction to be faithful.
"""

from __future__ import annotations

import math

from repro.experiments.figures import figure9
from repro.experiments.harness import GMC_NAME


def test_figure9_modeled_statistics(benchmark, modeled_experiment):
    result = benchmark.pedantic(
        lambda: figure9(experiment=modeled_experiment),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    data = result.data

    # GMC is fastest on a large majority of problems (paper: 86%).
    assert data["fraction_gmc_fastest"] >= 0.85
    # When it is not the fastest, it is never far behind (paper: <= 1.66).
    assert data["worst_case_ratio"] <= 1.66
    # On a sizable fraction of problems some baseline is >10x slower
    # (paper: at least 10% of the test cases).
    assert data["fraction_baseline_10x_slower"] >= 0.10

    # The Fig. 9 rows are sorted by the GMC time and contain every strategy.
    rows = data["rows"]
    gmc_times = [row[GMC_NAME] for row in rows]
    assert gmc_times == sorted(gmc_times)
    assert all(len(row) >= 11 for row in rows)  # problem id + 10 strategies


def test_figure9_measured_statistics(benchmark, measured_experiment):
    result = benchmark.pedantic(
        lambda: figure9(experiment=measured_experiment, execute=True),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    data = result.data
    # Measured wall-clock at laptop scale does not reproduce the paper's win
    # rate: NumPy/SciPy kernel overheads at these operand sizes differ a lot
    # from MKL's behaviour at sizes up to 2000 (see EXPERIMENTS.md).  The
    # qualitative claim that survives the backend change is the bounded
    # worst case: the GMC program is never far from the best strategy.
    assert math.isfinite(data["worst_case_ratio"])
    assert data["worst_case_ratio"] < 3.0
    assert 0.0 <= data["fraction_gmc_fastest"] <= 1.0
    # And GMC clearly beats the structure-blind naive strategies on average.
    from repro.experiments.figures import figure8

    speedups = figure8(experiment=measured_experiment, execute=True).data["speedups"]
    for name in ("julia_naive", "eigen_naive", "matlab_naive", "blaze_naive"):
        assert speedups[name] > 1.2, name


def test_every_generated_program_is_numerically_correct(benchmark, measured_experiment):
    """The evaluation is only meaningful if every strategy's program computes
    the right value on every problem."""
    summary = benchmark(measured_experiment.correctness_summary)
    for strategy, (correct, checked) in summary.items():
        assert checked > 0
        assert correct == checked, f"{strategy}: {correct}/{checked}"

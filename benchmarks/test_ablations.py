"""Ablation benchmarks for the design choices called out in DESIGN.md.

These go beyond the paper's own figures: they quantify how much each GMC
ingredient contributes on the benchmark workload.

* property-specialized kernels on/off (Section 3.2 motivation);
* the cost metric: FLOPs vs. roofline time vs. kernel count;
* the composite ``A^-1 B^-1`` kernel on/off (Sections 3.4 / 5);
* the Armadillo-style heuristic vs. the full DP (value of exact search).
"""

from __future__ import annotations

import statistics

from repro.core import GMCAlgorithm
from repro.cost import FlopCount, KernelCountMetric, PerformanceMetric
from repro.kernels import default_catalog


def _solve_all(problems, **kwargs):
    gmc = GMCAlgorithm(**kwargs)
    return [gmc.solve(problem.expression) for problem in problems]


def test_ablation_specialized_kernels(benchmark, bench_problems):
    """Without TRMM/SYMM/SYRK/TRSM/POSV/... the same chains need more FLOPs."""

    def run():
        full = _solve_all(bench_problems)
        generic = _solve_all(
            bench_problems, catalog=default_catalog(include_specialized=False)
        )
        return full, generic

    full, generic = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    ratios = []
    for with_props, without_props in zip(full, generic):
        assert with_props.computable and without_props.computable
        assert with_props.total_flops <= without_props.total_flops + 1e-6
        ratios.append(without_props.total_flops / max(with_props.total_flops, 1.0))
    # On a property-rich workload the specialized kernels save a noticeable
    # fraction of the work on average.
    assert statistics.mean(ratios) > 1.05
    assert max(ratios) > 1.3


def test_ablation_cost_metric(benchmark, bench_problems):
    """Different metrics can pick different solutions; the FLOP-optimal one is
    never beaten in FLOPs and the time-optimal one never beaten in time."""
    performance = PerformanceMetric()

    def run():
        by_flops = _solve_all(bench_problems, metric=FlopCount())
        by_time = _solve_all(bench_problems, metric=performance)
        by_count = _solve_all(bench_problems, metric=KernelCountMetric())
        return by_flops, by_time, by_count

    by_flops, by_time, by_count = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    for flops_solution, time_solution, count_solution in zip(by_flops, by_time, by_count):
        assert flops_solution.total_flops <= time_solution.total_flops + 1e-6
        assert time_solution.optimal_cost <= _modeled_time(flops_solution, performance) + 1e-12
        assert count_solution.optimal_cost <= len(list(flops_solution.construct_solution()))


def _modeled_time(solution, performance):
    return sum(
        performance.kernel_cost(call.kernel, call.substitution)
        for call in solution.construct_solution()
    )


def test_ablation_combined_inverse_kernel(benchmark, bench_problems):
    """Removing the composite A^-1 B^-1 kernel must never make a computable
    chain cheaper, and every benchmark chain must stay computable (adjacent
    inverted operands can always be split differently)."""

    def run():
        with_kernel = _solve_all(bench_problems)
        without_kernel = _solve_all(
            bench_problems, catalog=default_catalog(include_combined_inverse=False)
        )
        return with_kernel, without_kernel

    with_kernel, without_kernel = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    for full, restricted in zip(with_kernel, without_kernel):
        assert full.computable
        assert restricted.computable
        assert full.total_flops <= restricted.total_flops + 1e-6


def test_ablation_exact_dp_vs_armadillo_heuristic(benchmark, bench_problems):
    """How much of GMC's advantage comes from exact search: compare the DP
    optimum against the Armadillo-style heuristic on the same (property-
    aware) kernel selection."""
    from repro.baselines import ARMADILLO_RECOMMENDED

    def run():
        gmc = _solve_all(bench_problems)
        heuristic = [
            ARMADILLO_RECOMMENDED.build_program(problem.expression)
            for problem in bench_problems
        ]
        return gmc, heuristic

    gmc, heuristic = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    wins = 0
    for solution, program in zip(gmc, heuristic):
        assert solution.total_flops <= program.total_flops + 1e-6
        if solution.total_flops < program.total_flops * 0.999:
            wins += 1
    # The exact DP strictly improves on the heuristic for a fair share of the
    # workload (the rest are chains where the heuristic happens to be optimal).
    assert wins >= len(gmc) * 0.2

"""Benchmark / reproduction of Figure 8: average speedup of GMC over baselines.

Paper: the average speedup of the GMC-generated code over the other
libraries and languages is between 6 and 15 ("about 9" overall); Armadillo
is the strongest baseline (thanks to its chain heuristic) and the naive
Eigen/Matlab variants are the slowest.

The benchmark-scale reproduction uses a smaller random workload (see
``conftest.BENCH_CHAIN_COUNT``) and the modeled execution time, so the
absolute speedups differ, but the qualitative shape must hold:

* GMC is better than every baseline on average;
* each recommended variant beats (or ties) its naive counterpart;
* Armadillo is the closest competitor;
* the structure-blind naive variants (Eigen n, Matlab n) are the worst.
"""

from __future__ import annotations

import statistics

from repro.experiments.figures import figure8


def test_figure8_shape(benchmark, modeled_experiment):
    result = benchmark.pedantic(
        lambda: figure8(experiment=modeled_experiment),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    speedups = result.data["speedups"]

    # GMC is at least as good as every baseline on average.
    assert all(value >= 1.0 for value in speedups.values())
    # The overall average speedup is substantial (paper: ~9x at full scale).
    assert result.data["overall_average"] > 1.5

    # Recommended variants are at least as close to GMC as naive variants.
    assert speedups["julia_recommended"] <= speedups["julia_naive"] + 1e-9
    assert speedups["eigen_recommended"] <= speedups["eigen_naive"] + 1e-9
    assert speedups["matlab_recommended"] <= speedups["matlab_naive"] + 1e-9
    assert speedups["armadillo_recommended"] <= speedups["armadillo_naive"] + 1e-9

    # Armadillo (chain heuristic) is the strongest baseline family.
    armadillo_best = min(speedups["armadillo_naive"], speedups["armadillo_recommended"])
    others_best = min(
        value
        for name, value in speedups.items()
        if not name.startswith("armadillo")
    )
    assert armadillo_best <= others_best + 1e-9

    # The structure-blind naive variants are the slowest.
    worst = max(speedups, key=speedups.get)
    assert worst in ("eigen_naive", "matlab_naive")


def test_figure8_measured_speedups_are_consistent(benchmark, measured_experiment):
    """With measured NumPy execution the ordering may get noisy, but GMC must
    still be clearly ahead of the naive strategies on average."""
    result = benchmark.pedantic(
        lambda: figure8(experiment=measured_experiment, execute=True),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    speedups = result.data["speedups"]
    naive_average = statistics.mean(
        speedups[name] for name in ("julia_naive", "eigen_naive", "matlab_naive", "blaze_naive")
    )
    assert naive_average > 1.0

"""Benchmark / reproduction of Table 2: implementations of ``A^-1 B C^T``.

The paper lists, for A SPD and C lower triangular, the source every library
variant uses; this bench regenerates the kernel sequences that this
reproduction assigns to each variant and checks their ordering: the GMC
solution (TRMM + POSV) needs the fewest FLOPs, recommended variants beat
naive variants, and the structure-blind naive variants (Eigen, Matlab) are
the most expensive.
"""

from __future__ import annotations

from repro.experiments.tables import table2


def test_table2_reproduction(benchmark):
    result = benchmark.pedantic(table2, rounds=1, iterations=1, warmup_rounds=0)
    rows = {row["name"]: row for row in result.rows}

    assert rows["GMC"]["kernel_families"] == "TRMM -> POSV"
    gmc_flops = rows["GMC"]["flops"]

    # GMC needs the fewest FLOPs of all ten implementations.
    assert all(rows[name]["flops"] >= gmc_flops for name in rows)

    # The recommended variants match or beat their naive counterparts.
    assert rows["Jl r"]["flops"] <= rows["Jl n"]["flops"]
    assert rows["Arma r"]["flops"] <= rows["Arma n"]["flops"]
    assert rows["Eig r"]["flops"] <= rows["Eig n"]["flops"]
    assert rows["Mat r"]["flops"] <= rows["Mat n"]["flops"]

    # Structure-blind naive implementations (Eigen n, Matlab n) are the worst.
    worst = max(rows.values(), key=lambda row: row["flops"])
    assert worst["name"] in ("Eig n", "Mat n")

    # The typed recommended variants recover the GMC kernel choice here.
    assert rows["Jl r"]["kernel_families"] in ("POSV -> TRMM", "TRMM -> POSV")
    assert rows["Eig r"]["kernel_families"] in ("POSV -> TRMM", "TRMM -> POSV")

    # Every row carries the literal implementation string from the paper.
    assert rows["Jl n"]["paper_implementation"] == "inv(A)*B*C'"
    assert rows["Bl n"]["paper_implementation"].startswith("blaze::inv")

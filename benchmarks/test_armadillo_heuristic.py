"""Benchmark / reproduction of the Armadillo discussion in Section 4.

The paper explains Armadillo's simplified chain heuristic: chains of length
three and four are split by comparing the sizes of candidate sub-products,
longer chains are broken into groups of at most four, the parenthesization
``(AB)(CD)`` can never be found, and the produced orderings have good
cache behaviour (every product consumes the previous result).  Thanks to the
heuristic, Armadillo is the strongest baseline in the paper's evaluation.
"""

from __future__ import annotations

import random

from repro.algebra import Matrix, Times
from repro.baselines import ARMADILLO_NAIVE, JULIA_NAIVE, build_gmc_program
from repro.baselines.parenthesizers import armadillo, left_to_right, tree_products
from repro.core.mcp import MatrixChainDP, parenthesization_cost


def _random_sizes(rng, length):
    return [rng.randrange(50, 501, 50) for _ in range(length + 1)]


def test_armadillo_heuristic_quality(benchmark):
    """The heuristic is consistently between the DP optimum and plain
    left-to-right evaluation, and often matches the optimum."""
    rng = random.Random(4)
    instances = [_random_sizes(rng, rng.randint(3, 8)) for _ in range(60)]

    def evaluate_all():
        rows = []
        for sizes in instances:
            shapes = [(sizes[i], sizes[i + 1]) for i in range(len(sizes) - 1)]
            optimal = MatrixChainDP(sizes).optimal_cost
            heuristic = parenthesization_cost(armadillo(shapes), sizes)
            naive = parenthesization_cost(left_to_right(shapes), sizes)
            rows.append((optimal, heuristic, naive))
        return rows

    rows = benchmark(evaluate_all)
    matches_optimum = 0
    for optimal, heuristic, naive in rows:
        assert optimal - 1e-6 <= heuristic
        if heuristic <= optimal * 1.0001:
            matches_optimum += 1
    # The heuristic finds the true optimum on a decent fraction of chains and
    # is no worse than left-to-right on average.
    assert matches_optimum >= len(rows) * 0.2
    assert sum(h for _, h, _ in rows) <= sum(n for _, _, n in rows) * 1.0001


def test_armadillo_never_produces_balanced_four_way_split(benchmark):
    rng = random.Random(5)

    def run():
        trees = []
        for _ in range(200):
            sizes = _random_sizes(rng, 4)
            shapes = [(sizes[i], sizes[i + 1]) for i in range(4)]
            trees.append(armadillo(shapes))
        return trees

    for tree in benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0):
        assert tree != ((0, 1), (2, 3))


def test_armadillo_orderings_are_cache_friendly(benchmark):
    """Every product of an Armadillo ordering (for chains of <= 4 factors)
    consumes the result of the previous product -- the property the paper
    credits for its good cache behaviour."""
    rng = random.Random(6)

    def run():
        orderings = []
        for _ in range(100):
            length = rng.randint(3, 4)
            sizes = _random_sizes(rng, length)
            shapes = [(sizes[i], sizes[i + 1]) for i in range(length)]
            orderings.append(tree_products(armadillo(shapes)))
        return orderings

    for products in benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0):
        for previous, current in zip(products, products[1:]):
            assert previous in (current[0], current[1])


def test_armadillo_is_the_strongest_baseline_on_plain_chains(benchmark):
    """On property-free chains the only differentiator is parenthesization,
    so Armadillo (heuristic) must be at least as close to GMC as the
    left-to-right libraries."""
    rng = random.Random(7)
    chains = []
    for _ in range(20):
        length = rng.randint(3, 8)
        sizes = _random_sizes(rng, length)
        matrices = [Matrix(f"M{i}", sizes[i], sizes[i + 1]) for i in range(length)]
        chains.append(Times(*matrices))

    def run():
        gmc_total = sum(build_gmc_program(chain).total_flops for chain in chains)
        armadillo_total = sum(
            ARMADILLO_NAIVE.build_program(chain).total_flops for chain in chains
        )
        julia_total = sum(JULIA_NAIVE.build_program(chain).total_flops for chain in chains)
        return gmc_total, armadillo_total, julia_total

    gmc_total, armadillo_total, julia_total = benchmark.pedantic(
        run, rounds=1, iterations=1, warmup_rounds=0
    )
    assert gmc_total <= armadillo_total + 1e-6
    assert armadillo_total <= julia_total + 1e-6

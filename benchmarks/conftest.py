"""Shared fixtures for the benchmark suite.

Each benchmark regenerates one table or figure of the paper (see DESIGN.md
for the experiment index).  The random-chain experiments share one cached
experiment run per session so that the Fig. 8 and Fig. 9 benches do not
repeat the same work.
"""

from __future__ import annotations

import pytest

from repro.experiments.harness import HarnessConfig, run_experiment
from repro.experiments.workload import ChainGenerator

#: Number of random chains used by the benchmark-scale experiments.  The
#: paper uses 100 chains with sizes up to 2000; the benchmark default uses a
#: smaller batch on a smaller grid so the whole suite runs in a few minutes.
BENCH_CHAIN_COUNT = 20

#: Size grid for the benchmark-scale experiments.
BENCH_SIZES = (40, 80, 120, 160, 200)


def bench_generator(seed: int = 2018) -> ChainGenerator:
    return ChainGenerator(
        min_length=3,
        max_length=10,
        size_choices=BENCH_SIZES,
        vector_probability=0.10,
        square_probability=0.40,
        transpose_probability=0.25,
        inverse_probability=0.25,
        property_probability=0.60,
        seed=seed,
    )


@pytest.fixture(scope="session")
def bench_problems():
    return bench_generator().generate_many(BENCH_CHAIN_COUNT)


@pytest.fixture(scope="session")
def modeled_experiment(bench_problems):
    """Experiment run with modeled (cost-model) times only."""
    config = HarnessConfig(execute=False, validate=False, seed=0)
    return run_experiment(bench_problems, config=config)


#: Number of chains for the measured (NumPy-executed) experiment.  Fewer but
#: larger problems than the modeled experiment: at tiny operand sizes the
#: per-call Python/SciPy overhead would drown out the kernel time and the
#: measured comparison would be pure noise.
MEASURED_CHAIN_COUNT = 12

MEASURED_SIZES = (100, 200, 300, 400)


@pytest.fixture(scope="session")
def measured_problems():
    generator = ChainGenerator(
        min_length=3,
        max_length=7,
        size_choices=MEASURED_SIZES,
        vector_probability=0.10,
        square_probability=0.40,
        transpose_probability=0.25,
        inverse_probability=0.25,
        property_probability=0.60,
        seed=77,
    )
    return generator.generate_many(MEASURED_CHAIN_COUNT)


@pytest.fixture(scope="session")
def measured_experiment(measured_problems):
    """Experiment run with NumPy execution and numerical validation."""
    config = HarnessConfig(execute=True, validate=True, repetitions=3, seed=0)
    return run_experiment(measured_problems, config=config)

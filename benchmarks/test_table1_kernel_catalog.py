"""Benchmark / reproduction of Table 1: kernel patterns, constraints, costs.

Also benchmarks the many-to-one matcher, whose O(1)-per-expression behaviour
(independent of the number of kernels and of the matrix sizes) is the basis
of the complexity claim in Section 3.4.
"""

from __future__ import annotations

import pytest

from repro.algebra import Matrix, Property, Times
from repro.experiments.tables import table1
from repro.kernels import default_catalog
from repro.matching import Substitution


def test_table1_reproduction(benchmark):
    result = benchmark(table1)
    names = [row["name"] for row in result.rows]
    assert names == ["GEMM", "TRMM", "SYMM", "TRSM", "SYRK"]
    # Costs follow the paper's conventions: the structured kernels perform
    # half the scalar operations of GEMM.
    catalog = default_catalog()
    m, n, k = 1000, 800, 600
    x = Matrix("X", m, k)
    y = Matrix("Y", k, n)
    substitution = Substitution({"X": x, "Y": y})
    gemm = catalog.by_id("gemm_nn").flops(substitution)
    assert gemm == 2.0 * m * n * k
    square_x = Matrix("X", m, m, {Property.LOWER_TRIANGULAR})
    rhs = Matrix("Y", m, n)
    trmm = catalog.by_id("trmm_l_lower_nn").flops(Substitution({"X": square_x, "Y": rhs}))
    assert trmm == pytest.approx(m * m * n)


def test_matching_cost_is_independent_of_matrix_size(benchmark):
    """Matching an expression against the whole catalog is O(1): the time
    does not grow with the operand sizes (Section 3.4)."""
    catalog = default_catalog()
    small = Times(Matrix("A", 10, 10, {Property.SPD}).I, Matrix("B", 10, 10))
    large = Times(Matrix("A", 4000, 4000, {Property.SPD}).I, Matrix("B", 4000, 4000))

    def match_both():
        return len(catalog.match(small)), len(catalog.match(large))

    small_matches, large_matches = benchmark(match_both)
    assert small_matches == large_matches
    assert small_matches >= 3


def test_catalog_is_complete_for_all_wrapper_combinations(benchmark):
    """Every combination of transposed/inverted operands in a binary product
    is covered by at least one kernel -- the computability assumption of the
    paper (Section 1)."""
    from repro.algebra.simplify import wrap_leaf

    catalog = default_catalog()
    left = Matrix("A", 60, 60, {Property.NON_SINGULAR})
    right = Matrix("B", 60, 60, {Property.NON_SINGULAR})

    def match_all_combinations():
        results = {}
        for left_transposed in (False, True):
            for left_inverted in (False, True):
                for right_transposed in (False, True):
                    for right_inverted in (False, True):
                        expr = Times(
                            wrap_leaf(left, left_transposed, left_inverted),
                            wrap_leaf(right, right_transposed, right_inverted),
                        )
                        results[str(expr)] = len(catalog.match(expr))
        return results

    results = benchmark(match_all_combinations)
    assert len(results) == 16
    for expr_text, count in results.items():
        assert count > 0, expr_text

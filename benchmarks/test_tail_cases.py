"""Benchmark / reproduction of the Section 4 tail-case analysis.

The paper inspects the (14% of) cases where GMC-generated code is not the
fastest and finds two families: chains ``M1 ... Mk v1 v2^T`` where the
vector-aware baselines produce the same kernel sequence as GMC, and chains
where left-to-right evaluation is already (nearly) FLOP-optimal so all
implementations coincide.  The benches check both structural claims.
"""

from __future__ import annotations

import pytest

from repro.experiments.tail_cases import (
    left_to_right_analysis,
    vector_tail_analysis,
)


def test_vector_tail_family(benchmark):
    analysis = benchmark.pedantic(
        lambda: vector_tail_analysis(count=6, seed=1), rounds=1, iterations=1, warmup_rounds=0
    )
    for row in analysis.rows:
        # Armadillo's heuristic and Blaze's vector-aware association find the
        # same matrix-vector + outer-product sequence as GMC.
        assert row["Arma n"] == pytest.approx(row["GMC"])
        assert row["Arma r"] == pytest.approx(row["GMC"])
        assert row["Bl n"] == pytest.approx(row["GMC"])
        # The strictly left-to-right libraries pay for a matrix-matrix product.
        assert row["Jl n"] > row["GMC"] * 1.5
        assert row["Mat n"] > row["GMC"] * 1.5
    # GMC maps the whole family onto matrix-vector and outer-product kernels.
    for row in analysis.rows:
        assert set(row["GMC_kernels"].split(" -> ")) <= {"GEMV", "GER", "DOT"}


def test_left_to_right_optimal_family(benchmark):
    analysis = benchmark.pedantic(
        lambda: left_to_right_analysis(count=6, seed=2), rounds=1, iterations=1, warmup_rounds=0
    )
    for row in analysis.rows:
        for label in ("Jl n", "Jl r", "Eig n", "Eig r", "Bl n", "Mat n", "Mat r", "Arma n", "Arma r"):
            # Everybody is within a small factor of GMC: the chains are
            # constructed so that left-to-right evaluation is (nearly) optimal.
            assert row[label] <= 1.25 * row["GMC"]

"""Benchmark of the GMC solution-generation time (Section 4).

Paper claims: 0.03 s on average, always below 0.07 s, independent of the
matrix sizes (the DP cost depends only on the chain length and the number of
properties).  The absolute numbers here are much smaller (the paper's Python
prototype runs inside the full Linnea compiler); the bench checks the paper's
qualitative claims -- millisecond scale, size independence -- and records the
generation time as the pytest-benchmark measurement.
"""

from __future__ import annotations

import statistics

from repro.algebra import Matrix, Times
from repro.core import GMCAlgorithm
from repro.experiments.figures import generation_time
from repro.experiments.workload import paper_generator


def test_single_chain_generation_time(benchmark):
    """Benchmark one representative chain of length 10 (the paper's maximum)."""
    generator = paper_generator(seed=7)
    problem = None
    for candidate in generator.generate_many(50):
        if candidate.length == 10:
            problem = candidate
            break
    assert problem is not None
    gmc = GMCAlgorithm()
    solution = benchmark(gmc.solve, problem.expression)
    assert solution.computable


def test_generation_time_statistics(benchmark):
    result = benchmark.pedantic(
        lambda: generation_time(count=30, seed=0, full_scale=True),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    data = result.data
    # Milliseconds, not seconds: comfortably below the paper's 70 ms bound.
    assert data["max"] < 0.5
    assert data["mean"] < 0.1


def test_generation_time_is_independent_of_matrix_sizes(benchmark):
    """Solving the same-length chain with 50x larger operands must not take
    noticeably longer (Section 4: 'the generation time does not depend on
    matrix sizes')."""
    gmc = GMCAlgorithm()

    def times_for(scale):
        samples = []
        for _ in range(5):
            matrices = [Matrix(f"M{i}", 37 * scale, 37 * scale) for i in range(8)]
            samples.append(gmc.solve(Times(*matrices)).generation_time)
        return statistics.median(samples)

    def run():
        return times_for(1), times_for(50)

    small, large = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    assert large < 20 * max(small, 1e-4)

"""Benchmark / reproduction of the Section 3.3 example: FLOPs vs. time on ABCDE.

Paper numbers (sizes 130, 700, 383, 1340, 193, 900):

* FLOP-optimal parenthesization ``(((AB)C)D)E``: 3.16e8 FLOPs
* time-optimal parenthesization ``((AB)(CD))E``:  3.32e8 FLOPs, ~10% faster
  in the paper's measurements.

The FLOP-side numbers are reproduced exactly.  The time-side preference
depends on inter-kernel cache effects that the roofline model deliberately
does not capture (performance is not composable, Section 3.3); the bench
therefore checks the measured-time gap between the two candidate
parenthesizations stays small rather than asserting a winner.
"""

from __future__ import annotations

import pytest

from repro.experiments.worked_examples import SECTION33_SIZES, section33_cost_function_example


def test_section33_flop_counts(benchmark):
    example = benchmark(section33_cost_function_example)
    data = example.data

    assert data["sizes"] == SECTION33_SIZES
    assert data["flop_optimal_cost"] == pytest.approx(3.16e8, rel=0.01)
    assert data["time_optimal_flops"] == pytest.approx(3.32e8, rel=0.01)
    assert data["flop_optimal_parenthesization"] == "((((A * B) * C) * D) * E)"
    assert data["gmc_flops_metric_parenthesization"] == "((((M0 * M1) * M2) * M3) * M4)"
    # Both candidate parenthesizations are within ~5% of each other in FLOPs,
    # which is what makes the example interesting.
    assert data["time_optimal_flops"] / data["flop_optimal_cost"] < 1.06


def test_section33_measured_times_are_close(benchmark):
    """Execute both parenthesizations (at reduced sizes) and check that their
    measured times are within a factor of two -- the paper's point is that
    they differ by only ~10% despite the FLOP difference."""
    import time

    import numpy as np

    from repro.core.mcp import parenthesization_cost

    rng = np.random.default_rng(0)
    scale = 4  # reduce the paper's sizes by 4x to keep the bench fast
    sizes = [max(2, s // scale) for s in SECTION33_SIZES]
    matrices = [rng.standard_normal((sizes[i], sizes[i + 1])) for i in range(5)]

    def evaluate(node):
        if isinstance(node, int):
            return matrices[node]
        left, right = node
        return evaluate(left) @ evaluate(right)

    flop_optimal_tree = ((((0, 1), 2), 3), 4)
    time_optimal_tree = (((0, 1), (2, 3)), 4)

    def measure_both():
        timings = {}
        for name, tree in (("flops", flop_optimal_tree), ("time", time_optimal_tree)):
            best = float("inf")
            for _ in range(5):
                start = time.perf_counter()
                evaluate(tree)
                best = min(best, time.perf_counter() - start)
            timings[name] = best
        return timings

    timings = benchmark.pedantic(measure_both, rounds=1, iterations=1, warmup_rounds=0)
    assert timings["time"] < 2.0 * timings["flops"]
    assert timings["flops"] < 2.0 * timings["time"]
    # Sanity: the FLOP counts at the reduced sizes keep their ordering.
    assert parenthesization_cost(flop_optimal_tree, sizes) <= parenthesization_cost(
        time_optimal_tree, sizes
    )

"""Benchmark / reproduction of the Section 3.4 completeness discussion.

Without a kernel for ``X^-1 Y^-1`` the chain ``A^-1 B^-1 C`` must still be
solvable (two linear solves, right to left), while the two-factor chain
``A^-1 B^-1`` becomes uncomputable; with the composite kernel the paper
assumes in Section 5 it is computable again.
"""

from __future__ import annotations

from repro.experiments.worked_examples import completeness_example


def test_completeness_behaviour(benchmark):
    example = benchmark(completeness_example)
    data = example.data
    assert data["three_factor_computable"] is True
    assert data["three_factor_parenthesization"] == "(A^-1 * (B^-1 * C))"
    assert data["three_factor_kernels"] == ["GESV", "GESV"]
    assert data["two_factor_computable"] is False
    assert data["two_factor_with_gesv2_computable"] is True

"""Benchmark / reproduction of the Section 3.2 worked example: ``X := A^T A B``.

Paper numbers (A 20x20, B 20x15):

* ``A^T (A B)`` with two general products:         24000 FLOPs
* ``(A^T A) B`` with two general products:         28000 FLOPs
* ``(A^T A) B`` exploiting the symmetry (SYMM):    22000 FLOPs
* using SYRK for ``A^T A`` as well (paper's note): 14000 FLOPs

The point of the example: properties change not only the kernel selection
but also the optimal parenthesization.
"""

from __future__ import annotations

import pytest

from repro.experiments.worked_examples import section32_property_example


def test_section32_flop_counts(benchmark):
    example = benchmark(section32_property_example)
    data = example.data

    assert data["right_first_general"] == pytest.approx(24000)
    assert data["left_first_general"] == pytest.approx(28000)
    assert data["left_first_symm"] == pytest.approx(22000)
    assert data["left_first_syrk"] == pytest.approx(14000)

    # With the full catalog the GMC algorithm finds the SYRK + SYMM solution
    # (the paper's note) and therefore the left-first parenthesization.
    assert data["gmc_parenthesization"] == "((A^T * A) * B)"
    assert data["gmc_kernels"] == ["SYRK", "SYMM"]
    assert data["gmc_flops"] == pytest.approx(14000)

    # Without property-specialized kernels the other parenthesization wins.
    assert data["gmc_generic_parenthesization"] == "(A^T * (A * B))"
    assert data["gmc_generic_flops"] == pytest.approx(24000)

    # Properties therefore change the chosen parenthesization -- the claim of
    # Section 3.2.
    assert data["gmc_parenthesization"] != data["gmc_generic_parenthesization"]

#!/usr/bin/env python
"""CI gate on the public API surface and on internal deprecation hygiene.

Two checks, both wired into the ``api-check`` CI job:

1. **Surface stability** -- imports ``repro`` (and the sub-packages that
   define the compiler's public face), asserts that every ``__all__`` name
   resolves, and compares the surfaces against the checked-in manifest
   ``scripts/api_surface.json``.  An intentional API change must update the
   manifest in the same commit (``--update`` regenerates it), which turns
   silent surface drift into an explicit, reviewable diff.

2. **Internal deprecation hygiene** -- runs the tier-1 suite with
   ``DeprecationWarning`` escalated to an error for every warning attributed
   to a ``repro.*`` module (``filterwarnings=error::DeprecationWarning:repro\\..*``).
   The legacy call-shape shims (``compile_source(metric=...)``,
   ``GMCAlgorithm(catalog=...)``, flat ``CompileRequest`` wire fields) warn
   with a ``stacklevel`` that attributes the warning to *their caller*, so
   this escalation means: external callers (including the tests that cover
   the shims) merely see a warning, while the library calling one of its own
   deprecated paths fails the build.

Usage::

    PYTHONPATH=src python scripts/ci_api_check.py            # check
    PYTHONPATH=src python scripts/ci_api_check.py --update   # rewrite manifest
    PYTHONPATH=src python scripts/ci_api_check.py --no-tests # surface only
"""

from __future__ import annotations

import argparse
import importlib
import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

MANIFEST = REPO_ROOT / "scripts" / "api_surface.json"

#: Modules whose ``__all__`` constitutes the supported public surface.
SURFACE_MODULES = (
    "repro",
    "repro.options",
    "repro.frontend",
    "repro.core",
    "repro.codegen",
    "repro.exec",
    "repro.service",
    "repro.telemetry",
    "repro.persist",
    "repro.obs",
)


def collect_surface() -> dict:
    surface = {}
    for module_name in SURFACE_MODULES:
        module = importlib.import_module(module_name)
        names = sorted(getattr(module, "__all__", ()))
        missing = [name for name in names if not hasattr(module, name)]
        if missing:
            raise AssertionError(f"{module_name}.__all__ names do not resolve: {missing}")
        surface[module_name] = names
    return surface


def check_surface() -> int:
    surface = collect_surface()
    if not MANIFEST.exists():
        print(f"API CHECK FAILED: manifest {MANIFEST} missing (run --update)", file=sys.stderr)
        return 1
    expected = json.loads(MANIFEST.read_text())
    failures = []
    for module_name in sorted(set(expected) | set(surface)):
        have = surface.get(module_name)
        want = expected.get(module_name)
        if have == want:
            continue
        added = sorted(set(have or ()) - set(want or ()))
        removed = sorted(set(want or ()) - set(have or ()))
        failures.append(
            f"  {module_name}: added {added or '[]'}, removed {removed or '[]'}"
        )
    if failures:
        print(
            "API CHECK FAILED: public surface drifted from scripts/api_surface.json\n"
            + "\n".join(failures)
            + "\n(intentional? rerun with --update and commit the manifest)",
            file=sys.stderr,
        )
        return 1
    total = sum(len(names) for names in surface.values())
    print(f"api surface OK: {len(surface)} modules, {total} public names")
    return 0


def run_tier1_with_deprecation_gate() -> int:
    command = [
        sys.executable,
        "-m",
        "pytest",
        "-q",
        "-x",
        "-p",
        "no:cacheprovider",
        # pytest ini-style filters take regexes; pytest's -W would escape the
        # module pattern, so the override spelling is load-bearing here.
        "-o",
        r"filterwarnings=error::DeprecationWarning:repro\..*",
        "tests/",
    ]
    print("running tier-1 suite with internal DeprecationWarnings as errors ...")
    completed = subprocess.run(command, cwd=REPO_ROOT)
    if completed.returncode != 0:
        print(
            "API CHECK FAILED: tier-1 suite failed with DeprecationWarning "
            "escalated for repro.* internals (an internal code path is "
            "calling a deprecated shim)",
            file=sys.stderr,
        )
    return completed.returncode


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--update", action="store_true", help="rewrite the surface manifest"
    )
    parser.add_argument(
        "--no-tests",
        action="store_true",
        help="only check the surface manifest (skip the tier-1 run)",
    )
    args = parser.parse_args(argv)

    if args.update:
        MANIFEST.write_text(json.dumps(collect_surface(), indent=2) + "\n")
        print(f"wrote {MANIFEST}")
        return 0

    status = check_surface()
    if status != 0:
        return status
    if args.no_tests:
        return 0
    return run_tier1_with_deprecation_gate()


if __name__ == "__main__":
    raise SystemExit(main())

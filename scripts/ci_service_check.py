#!/usr/bin/env python
"""End-to-end CI check of the HTTP compilation service.

Boots ``python -m repro.frontend --serve`` as a subprocess (warm-cache
worker pool), then drives the acceptance workload against it:

1. ``GET /healthz`` must return 200 with every worker alive;
2. a **cold half** of structurally similar chains goes through
   ``POST /compile`` and ``POST /batch``;
3. a **warm half** (the same structures under fresh operand names) goes
   through ``POST /batch``;
4. every kernel sequence must equal a direct in-process
   ``compile_source`` call, every response must be 200, and ``GET /stats``
   must report a pooled plan-cache hit rate of at least ``--min-hit-rate``
   (default 0.5) over the warm half (the whole-plan cache of
   :mod:`repro.persist` answers warm signature-equal traffic above the
   solvers, so it -- not the match cache -- carries the warm hits);
5. a **multi-assignment DAG** program (forward reference to an earlier
   target plus an inline inverse-of-product that forces a synthetic
   extraction segment) goes through ``POST /compile``; the response's
   per-segment assignments -- targets, kernel sequences, and the
   ``synthetic`` marker -- must match the in-process reference;
6. the **execution tier**: ``POST /execute`` must compile-and-run (a) a
   seeded random-operand chain with the emitted module cross-checked
   against the interpreter engine, (b) an explicit-payload chain whose
   result summary is verified against a local NumPy reference, and (c)
   the multi-assignment DAG program -- each validated against the
   reference evaluation server-side (``validated: true``), failing the
   check on any reference mismatch;
7. **observability**: ``GET /metrics`` must return well-formed Prometheus
   text exposition carrying every cache-telemetry layer
   (:data:`repro.telemetry.CACHE_LAYERS`), the pool gauges and the
   per-endpoint latency histograms (monotone cumulative buckets ending in
   ``le="+Inf"``), and every response must echo the client's
   ``X-Request-Id`` header (which also lands as the response body's
   ``request_id`` after riding through a pool worker);
8. **workload analytics**: after the skewed traffic above, ``GET
   /analytics`` must rank the template structure's signature first (the
   key equal to an in-process :func:`repro.service.api.affinity_key`
   computation, proving cross-process key stability), ``GET /metrics``
   must carry a positive ``repro_compile_phase_latency_seconds`` p99
   quantile series and ``GET /timeseries`` must have recorded the
   requests on its counter rings.

With ``--snapshot``, a second phase exercises **snapshot-backed warm
boot**: the server is restarted against a shared ``--snapshot-dir`` after
``POST /snapshot``, and the restarted server's *first* batch of
signature-equal requests must be answered with a plan-cache hit rate of at
least ``--min-plan-hit-rate`` (default 0.5) -- proving a rebooted worker
pool starts warm from disk, with identical kernel sequences.

Exit status is non-zero on any violation.  Usage (CI runs exactly this)::

    PYTHONPATH=src python scripts/ci_service_check.py --workers 2 --batch 24
    PYTHONPATH=src python scripts/ci_service_check.py --workers 2 --batch 8 --snapshot
"""

from __future__ import annotations

import argparse
import json
import re
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.frontend import compile_source  # noqa: E402
from repro.telemetry import CACHE_LAYERS  # noqa: E402

#: One moderately rich chain structure; tagged copies are structurally
#: similar (signature-equal), the workload the warm pool amortizes.
TEMPLATE = """
Matrix A{t} (200, 200) <spd>
Matrix B{t} (200, 100) <>
Matrix C{t} (100, 100) <lower_triangular, non_singular>
Matrix D{t} (100, 100) <upper_triangular, non_singular>
Matrix E{t} (100, 80) <>
X := A{t}^-1 * B{t} * C{t}^T * D{t}^-1 * E{t}
"""


#: Multi-assignment DAG program: ``G`` is referenced by a later line, and
#: the inline ``(H P^-1 H^T)^-1`` cannot distribute over its rectangular
#: factors, so the compiler extracts a synthetic segment for the inner
#: product before inverting its (square, full-rank) result.  (The inner
#: product deliberately differs from ``G``'s definition -- an identical
#: subtree would be CSE'd onto the ``G`` segment and no synthetic segment
#: would appear.)
DAG_SOURCE = """
Matrix Hd (50, 90) <>
Matrix Pd (90, 90) <spd>
Matrix Bd (50, 40) <>
G := Hd * Pd * Hd^T
J := G^-1 * Bd
K := Pd * Hd^T * (Hd * Pd^-1 * Hd^T)^-1
"""


def tagged_source(tag: str) -> str:
    return TEMPLATE.replace("{t}", tag)


def dag_check(base: str) -> int:
    """Phase: POST the multi-assignment DAG program and compare the
    per-segment wire payload against an in-process compile."""
    expected = [
        (entry.target, list(entry.kernel_sequence), bool(entry.synthetic))
        for entry in compile_source(DAG_SOURCE).assignments
    ]
    if not any(synthetic for _, _, synthetic in expected):
        return fail("DAG reference produced no synthetic segment")
    status, body = http_json("POST", f"{base}/compile", {"source": DAG_SOURCE})
    if status != 200:
        return fail(f"DAG /compile returned {status}")
    if not body.get("ok"):
        return fail(f"DAG request failed: {body.get('error')}")
    served = [
        (entry["target"], list(entry["kernels"]), bool(entry.get("synthetic")))
        for entry in body["assignments"]
    ]
    if served != expected:
        return fail(f"DAG response diverged: {served} != {expected}")
    print(
        f"DAG program: {len(served)} segments "
        f"({sum(1 for _, _, s in served if s)} synthetic), kernel "
        f"sequences match the in-process reference"
    )
    return 0


def execute_check(base: str) -> int:
    """Phase: ``POST /execute`` -- compile-and-run with validation."""
    import numpy as np

    # (a) Seeded random operands; emitted module cross-checked against the
    # interpreter engine, both validated against the reference evaluation.
    status, body = http_json(
        "POST",
        f"{base}/execute",
        {"source": tagged_source("ex"), "execute": {"seed": 7, "engine": "both"}},
    )
    if status != 200 or not body.get("ok"):
        return fail(
            f"/execute (seeded) returned {status}: {body.get('error')} "
            f"(phase {body.get('phase')})"
        )
    if body.get("validated") is not True:
        return fail(f"seeded /execute did not validate: {body.get('error')}")
    if body.get("engines_match") is not True:
        return fail("module and interpreter engines diverged on /execute")
    seeded_error = body.get("max_rel_error")

    # (b) Explicit payloads, verified against a local NumPy reference.
    rng = np.random.default_rng(11)
    A = rng.standard_normal((40, 40))
    A = A @ A.T + 40 * np.eye(40)
    B = rng.standard_normal((40, 25))
    source = "Matrix Ae (40, 40) <spd>\nMatrix Be (40, 25) <>\nXe := Ae^-1 * Be\n"
    status, body = http_json(
        "POST",
        f"{base}/execute",
        {
            "source": source,
            "execute": {"payloads": {"Ae": A.tolist(), "Be": B.tolist()}},
        },
    )
    if status != 200 or not body.get("ok") or body.get("validated") is not True:
        return fail(
            f"/execute (payloads) returned {status}: {body.get('error')} "
            f"(phase {body.get('phase')})"
        )
    expected = float(np.linalg.norm(np.linalg.solve(A, B)))
    served = body["results"][0]["fro_norm"]
    if abs(served - expected) > 1e-6 * max(1.0, expected):
        return fail(
            f"payload /execute result diverged from the local reference: "
            f"|fro| {served} != {expected}"
        )

    # (c) The multi-assignment DAG program through the execution tier.
    status, body = http_json(
        "POST", f"{base}/execute", {"source": DAG_SOURCE, "execute": {"seed": 3}}
    )
    if status != 200 or not body.get("ok") or body.get("validated") is not True:
        return fail(
            f"/execute (DAG) returned {status}: {body.get('error')} "
            f"(phase {body.get('phase')})"
        )
    if body["results"][0]["target"] != "K":
        return fail(f"DAG /execute computed {body['results'][0]['target']!r}, not 'K'")

    # The per-phase latency histogram must now be on /metrics.
    status, _, text = http_raw("GET", f"{base}/metrics")
    if status != 200 or "repro_execute_phase_seconds" not in text:
        return fail("/metrics is missing repro_execute_phase_seconds after /execute")
    if "repro_execute_validation_failures 0" not in text:
        return fail("/metrics is missing a zero validation-failure counter")
    print(
        f"execute tier: seeded (max rel error {seeded_error:.3g}), "
        f"explicit-payload and DAG runs all validated server-side"
    )
    return 0


def http_json(method: str, url: str, payload=None, timeout: float = 120.0):
    data = None if payload is None else json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        url, data=data, method=method, headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return response.status, json.loads(response.read())


def http_raw(method: str, url: str, payload=None, headers=None, timeout: float = 120.0):
    """Like :func:`http_json` but also returns the response headers (and the
    body as text) -- the observability phase inspects ``X-Request-Id`` and
    the non-JSON ``/metrics`` exposition."""
    data = None if payload is None else json.dumps(payload).encode("utf-8")
    all_headers = {"Content-Type": "application/json"}
    all_headers.update(headers or {})
    request = urllib.request.Request(url, data=data, method=method, headers=all_headers)
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return response.status, dict(response.headers), response.read().decode("utf-8")


#: Legal Prometheus text-exposition (0.0.4) line shapes: comments, bare
#: samples and labelled samples (numeric or +/-Inf/NaN values).
_EXPOSITION_LINE = re.compile(
    r"^(#( (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* ?.*)?"
    r"|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? [0-9eE\.\+\-]+"
    r"|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? (\+|-)?(Inf|NaN))$"
)


def observability_check(base: str) -> int:
    """Phase: request-id propagation plus the ``GET /metrics`` exposition."""
    marker = "ci-service-check-req-1"
    status, headers, body = http_raw(
        "POST",
        f"{base}/compile",
        {"source": tagged_source("obs")},
        headers={"X-Request-Id": marker},
    )
    if status != 200:
        return fail(f"observability /compile returned {status}")
    if headers.get("X-Request-Id") != marker:
        return fail(
            f"X-Request-Id not echoed: sent {marker!r}, "
            f"got {headers.get('X-Request-Id')!r}"
        )
    if json.loads(body).get("request_id") != marker:
        return fail(
            f"request id did not ride through the pool worker into the "
            f"response body: {json.loads(body).get('request_id')!r}"
        )

    status, headers, text = http_raw("GET", f"{base}/metrics")
    if status != 200:
        return fail(f"GET /metrics returned {status}")
    if not headers.get("Content-Type", "").startswith("text/plain"):
        return fail(f"/metrics Content-Type is {headers.get('Content-Type')!r}")
    if not text.endswith("\n"):
        return fail("/metrics exposition does not end with a newline")
    for line in text.rstrip("\n").splitlines():
        if not _EXPOSITION_LINE.match(line):
            return fail(f"malformed exposition line: {line!r}")
    for layer in CACHE_LAYERS:
        if f'layer="{layer}"' not in text:
            return fail(f"/metrics is missing telemetry layer {layer!r}")
    for required in (
        "repro_service_workers",
        "repro_pool_requests",
        "# TYPE repro_request_latency_seconds histogram",
        'le="+Inf"',
    ):
        if required not in text:
            return fail(f"/metrics is missing {required!r}")
    buckets = [
        int(line.rsplit(" ", 1)[1])
        for line in text.splitlines()
        if line.startswith("repro_request_latency_seconds_bucket")
        and 'endpoint="/compile"' in line
    ]
    if not buckets or buckets != sorted(buckets):
        return fail(f"non-monotone /compile latency buckets: {buckets}")
    lines = len(text.rstrip("\n").splitlines())
    print(
        f"observability: request id echoed end to end, /metrics exposition "
        f"well-formed ({lines} lines, {len(CACHE_LAYERS)} telemetry layers, "
        f"monotone latency buckets)"
    )
    return 0


def analytics_check(base: str) -> int:
    """Phase: skewed traffic must surface in the workload analytics.

    By this point the driver has sent many signature-equal ``TEMPLATE``
    requests and exactly a handful of other structures, so ``GET
    /analytics`` must rank the template signature first (with the key
    matching an in-process :func:`repro.service.api.affinity_key`
    computation -- proving the heavy-hitter keys are stable across the
    client/worker process boundary), ``GET /metrics`` must carry nonzero
    latency quantile series, and ``GET /timeseries`` must show the
    request counters.
    """
    from repro.service.api import CompileRequest, affinity_key

    # A little extra skew, so the phase also passes standalone.
    for index in range(3):
        status, body = http_json(
            "POST", f"{base}/compile", {"source": tagged_source(f"an{index}")}
        )
        if status != 200 or not body.get("ok"):
            return fail(f"analytics warmup /compile returned {status}")

    status, report = http_json("GET", f"{base}/analytics")
    if status != 200:
        return fail(f"GET /analytics returned {status}")
    top = (report.get("signatures") or {}).get("top") or []
    if not top:
        return fail("/analytics reports no tracked signatures")
    expected_key = affinity_key(CompileRequest(source=tagged_source("probe")))
    if top[0]["signature"] != expected_key:
        return fail(
            f"/analytics top-1 signature is not the template structure: "
            f"{top[0]['signature'][:80]!r}..."
        )
    if top[0]["count"] < 3 or top[0]["count"] > report.get("requests", 0):
        return fail(f"implausible top-1 count {top[0]['count']}")
    if len(top) < 2 or any(
        top[i]["count"] < top[i + 1]["count"] for i in range(len(top) - 1)
    ):
        return fail(f"/analytics top-k not sorted by count: {top}")
    if not 0.0 < top[0]["plan_hit_rate"] <= 1.0:
        return fail(
            f"template signature plan-hit rate {top[0]['plan_hit_rate']} "
            f"not in (0, 1] despite warm traffic"
        )

    status, _, text = http_raw("GET", f"{base}/metrics")
    if status != 200:
        return fail(f"GET /metrics returned {status}")
    quantile_line = re.compile(
        r'repro_compile_phase_latency_seconds\{phase="solve",quantile="0.99"\} '
        r"([0-9eE\.\+\-]+)"
    )
    match = quantile_line.search(text)
    if not match:
        return fail("/metrics is missing the solve p99 quantile series")
    if not float(match.group(1)) > 0.0:
        return fail(f"solve p99 is not positive: {match.group(0)!r}")

    status, series = http_json("GET", f"{base}/timeseries")
    if status != 200:
        return fail(f"GET /timeseries returned {status}")
    requests_series = (series.get("series") or {}).get("requests") or []
    recorded = sum(value for _, value in requests_series)
    if recorded < 3:
        return fail(f"/timeseries requests series only recorded {recorded}")

    print(
        f"analytics: top-1 signature matches the in-process affinity key "
        f"(count {top[0]['count']}, plan-hit rate "
        f"{top[0]['plan_hit_rate']:.3f}), solve p99 "
        f"{float(match.group(1)) * 1e3:.3f} ms, {recorded:.0f} requests on "
        f"the time series"
    )
    return 0


def fail(message: str) -> int:
    print(f"SERVICE CHECK FAILED: {message}", file=sys.stderr)
    return 1


def boot_server(workers: int, boot_timeout: float, snapshot_dir=None):
    """Start ``python -m repro.frontend --serve`` and wait for /healthz.

    Returns ``(process, base_url)``; raises ``RuntimeError`` on boot
    failure (the caller terminates the process either way).
    """
    command = [
        sys.executable,
        "-u",
        "-m",
        "repro.frontend",
        "--serve",
        "--port",
        "0",
        "--workers",
        str(workers),
    ]
    if snapshot_dir is not None:
        command += ["--snapshot-dir", str(snapshot_dir)]
    process = subprocess.Popen(
        command,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        cwd=REPO_ROOT,
    )
    try:
        banner = process.stdout.readline()
        print(f"server: {banner.strip()}")
        match = re.search(r"http://([\d.]+):(\d+)", banner)
        if not match:
            raise RuntimeError(f"no address in server banner: {banner!r}")
        base = f"http://{match.group(1)}:{match.group(2)}"
        deadline = time.perf_counter() + boot_timeout
        while True:
            try:
                status, health = http_json("GET", f"{base}/healthz", timeout=10.0)
                break
            except (urllib.error.URLError, OSError):
                if time.perf_counter() > deadline:
                    raise RuntimeError("server never answered /healthz")
                time.sleep(0.25)
        if status != 200 or health.get("status") != "ok":
            raise RuntimeError(f"/healthz returned {status}: {health}")
        print(f"healthz: {health}")
        return process, base
    except BaseException:
        process.terminate()
        raise


def stop_server(process) -> None:
    process.terminate()
    try:
        process.wait(timeout=15)
    except subprocess.TimeoutExpired:
        process.kill()


def snapshot_check(args, reference) -> int:
    """Phase 2: restart the server against a shared snapshot dir."""
    import shutil
    import tempfile

    snapshot_dir = tempfile.mkdtemp(prefix="repro-ci-snapshot-")
    tags = [f"s{index}" for index in range(max(4, args.batch // 2))]
    try:
        process, base = boot_server(
            args.workers, args.boot_timeout, snapshot_dir=snapshot_dir
        )
        try:
            status, body = http_json(
                "POST",
                f"{base}/batch",
                {"requests": [{"source": tagged_source(tag)} for tag in tags]},
            )
            if status != 200 or body["failed"]:
                return fail(
                    f"snapshot warm-up /batch returned {status}, "
                    f"failed={body.get('failed')}"
                )
            status, meta = http_json("POST", f"{base}/snapshot")
            if status != 200:
                return fail(f"POST /snapshot returned {status}: {meta}")
            print(f"snapshot written: {meta}")
            if not meta.get("plan_entries"):
                return fail(f"snapshot holds no plan entries: {meta}")
        finally:
            stop_server(process)

        # Reboot against the same directory: the first batch of renamed
        # (signature-equal) chains must be served from the loaded plan cache.
        process, base = boot_server(
            args.workers, args.boot_timeout, snapshot_dir=snapshot_dir
        )
        try:
            status, stats_boot = http_json("GET", f"{base}/stats")
            if status != 200:
                return fail(f"/stats after reboot returned {status}")
            loaded = stats_boot.get("snapshot", {}).get("workers_loaded", 0)
            if loaded < args.workers:
                return fail(
                    f"only {loaded}/{args.workers} rebooted workers loaded "
                    f"the snapshot: {stats_boot.get('snapshot')}"
                )
            status, body = http_json(
                "POST",
                f"{base}/batch",
                {
                    "requests": [
                        {"source": tagged_source(f"r{tag}")} for tag in tags
                    ]
                },
            )
            if status != 200 or body["failed"]:
                return fail(
                    f"post-reboot /batch returned {status}, "
                    f"failed={body.get('failed')}"
                )
            for tag, entry in zip(tags, body["responses"]):
                if entry["assignments"][0]["kernels"] != reference:
                    return fail(
                        f"post-reboot request r{tag} diverged: "
                        f"{entry['assignments'][0]['kernels']} != {reference}"
                    )
            status, stats_warm = http_json("GET", f"{base}/stats")
            if status != 200:
                return fail(f"/stats returned {status}")
            boot_cache = stats_boot["caches"]["plan_cache"]
            warm_cache = stats_warm["caches"]["plan_cache"]
            hits = warm_cache["hits"] - boot_cache["hits"]
            lookups = hits + warm_cache["misses"] - boot_cache["misses"]
            hit_rate = hits / lookups if lookups > 0 else 0.0
            print(
                f"warm boot: {len(tags)} requests, plan-cache hit rate "
                f"{hit_rate:.3f} ({hits}/{lookups}) on the restarted pool's "
                f"first batch"
            )
            if hit_rate < args.min_plan_hit_rate:
                return fail(
                    f"warm-boot plan-cache hit rate {hit_rate:.3f} < "
                    f"{args.min_plan_hit_rate:.3f}"
                )
        finally:
            stop_server(process)
    finally:
        shutil.rmtree(snapshot_dir, ignore_errors=True)
    print("SNAPSHOT CHECK PASSED")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--batch", type=int, default=24, help="total chains (>= 4)")
    parser.add_argument("--min-hit-rate", type=float, default=0.5)
    parser.add_argument("--boot-timeout", type=float, default=120.0)
    parser.add_argument(
        "--snapshot",
        action="store_true",
        help="also run the snapshot/restart warm-boot phase",
    )
    parser.add_argument(
        "--min-plan-hit-rate",
        type=float,
        default=0.5,
        help=(
            "minimum plan-cache hit rate on the restarted server's first "
            "batch (--snapshot phase; default 0.5)"
        ),
    )
    args = parser.parse_args(argv)
    if args.batch < 4:
        parser.error("--batch must be >= 4")

    reference = compile_source(tagged_source("ref")).assignment("X").kernel_sequence
    print(f"reference kernel sequence: {reference}")

    try:
        process, base = boot_server(args.workers, args.boot_timeout)
    except RuntimeError as exc:
        return fail(str(exc))
    try:

        half = args.batch // 2
        cold_tags = [f"c{index}" for index in range(half)]
        warm_tags = [f"w{index}" for index in range(args.batch - half)]

        def check_response(body, tag):
            if not body.get("ok"):
                return f"request {tag} failed: {body.get('error')}"
            kernels = body["assignments"][0]["kernels"]
            if kernels != reference:
                return f"request {tag}: kernels {kernels} != reference {reference}"
            return None

        # Cold half: a couple of single /compile calls, the rest via /batch.
        singles = cold_tags[:2]
        for tag in singles:
            status, body = http_json(
                "POST", f"{base}/compile", {"source": tagged_source(tag)}
            )
            if status != 200:
                return fail(f"/compile returned {status}")
            problem = check_response(body, tag)
            if problem:
                return fail(problem)
        status, body = http_json(
            "POST",
            f"{base}/batch",
            {"requests": [{"source": tagged_source(tag)} for tag in cold_tags[2:]]},
        )
        if status != 200 or body["failed"]:
            return fail(f"cold /batch returned {status}, failed={body.get('failed')}")
        for tag, entry in zip(cold_tags[2:], body["responses"]):
            problem = check_response(entry, tag)
            if problem:
                return fail(problem)

        status, stats_cold = http_json("GET", f"{base}/stats")
        if status != 200:
            return fail(f"/stats returned {status}")

        # Warm half: same structure, fresh names -> signature-cache hits.
        status, body = http_json(
            "POST",
            f"{base}/batch",
            {"requests": [{"source": tagged_source(tag)} for tag in warm_tags]},
        )
        if status != 200 or body["failed"]:
            return fail(f"warm /batch returned {status}, failed={body.get('failed')}")
        for tag, entry in zip(warm_tags, body["responses"]):
            problem = check_response(entry, tag)
            if problem:
                return fail(problem)

        status, stats_warm = http_json("GET", f"{base}/stats")
        if status != 200:
            return fail(f"/stats returned {status}")

        # Options parity: a request with a nested CompileOptions wire object
        # (top-down solver, pruning and match cache off) must produce the
        # same kernel sequence as the default bottom-up pipeline.
        status, body = http_json(
            "POST",
            f"{base}/compile",
            {
                "source": tagged_source("opt"),
                "options": {"solver": "topdown", "prune": False, "match_cache": False},
            },
        )
        if status != 200:
            return fail(f"/compile with nested options returned {status}")
        problem = check_response(body, "opt")
        if problem:
            return fail(f"nested-options request diverged: {problem}")

        # The plan cache (the layer above the solvers) answers the warm
        # half; the match cache underneath only sees cold solves.
        cold_cache = stats_cold["caches"]["plan_cache"]
        warm_cache = stats_warm["caches"]["plan_cache"]
        hits = warm_cache["hits"] - cold_cache["hits"]
        lookups = hits + warm_cache["misses"] - cold_cache["misses"]
        hit_rate = hits / lookups if lookups > 0 else 0.0
        print(
            f"warm half: {len(warm_tags)} requests, pooled plan-cache hit rate "
            f"{hit_rate:.3f} ({hits}/{lookups}), pool counters "
            f"{stats_warm['pool']}"
        )
        if hit_rate < args.min_hit_rate:
            return fail(
                f"warm pooled hit rate {hit_rate:.3f} < {args.min_hit_rate:.3f}"
            )

        problem = dag_check(base)
        if problem:
            return problem

        problem = execute_check(base)
        if problem:
            return problem

        problem = observability_check(base)
        if problem:
            return problem

        problem = analytics_check(base)
        if problem:
            return problem

        print("SERVICE CHECK PASSED")
    finally:
        stop_server(process)

    if args.snapshot:
        return snapshot_check(args, reference)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
